//! Known-answer tests for the fixed-width modular arithmetic,
//! cross-checked against an independent big-integer implementation
//! (CPython). These pin the Montgomery code to external ground truth —
//! the property tests check *laws*, these check *values*.

use sintra_crypto::field::{Fp, Scalar};
use sintra_crypto::group::GroupElement;
use sintra_crypto::u256::U256;

const A_HEX: &str = "123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef";
const B_HEX: &str = "0fedcba987654321123456789abcdef0a5a5a5a55a5a5a5a1122334455667788";

fn fp(hex: &str) -> Fp {
    Fp::from_u256(&U256::from_hex(hex).expect("valid hex"))
}

fn scalar(hex: &str) -> Scalar {
    Scalar::from_u256(&U256::from_hex(hex).expect("valid hex"))
}

#[test]
fn fp_multiplication_matches_python() {
    assert_eq!(
        fp(A_HEX) * fp(B_HEX),
        fp("73e80de5852c4ccb6096606c5e271f51869990448af0d7e9820cd0c6c4edbbfd")
    );
}

#[test]
fn fp_addition_matches_python() {
    assert_eq!(
        fp(A_HEX) + fp(B_HEX),
        fp("222222222222221211111111111111018453649525591518124578abdf124577")
    );
}

#[test]
fn fp_inversion_matches_python() {
    assert_eq!(
        fp(A_HEX).invert().unwrap(),
        fp("6a6cfb434b96835f986ee5385cb86d32122593a43cf0bc68557b1bbde0a62598")
    );
}

#[test]
fn scalar_multiplication_matches_python() {
    assert_eq!(
        scalar(A_HEX) * scalar(B_HEX),
        scalar("1986b4b7bf0e4f76bd506dfb7effddd316e5c56e140c23fa3704bd7a86dcef6b")
    );
}

#[test]
fn scalar_inversion_matches_python() {
    assert_eq!(
        scalar(A_HEX).invert().unwrap(),
        scalar("2fd5e4f4976e0bc3146a9fe8c1f70b925adaa52e5be34d6fdb4a238812fd7a2b")
    );
}

#[test]
fn fp_exponentiation_matches_python() {
    let exp = U256::from_hex(B_HEX).unwrap();
    assert_eq!(
        fp(A_HEX).pow(&exp),
        fp("1e3d8db800a650f91eb1ddcbd6d5ed375208097323f62c3ce4df391bf52cbe30")
    );
}

#[test]
fn generator_exponentiation_matches_python() {
    let g = GroupElement::generator();
    let x = scalar(A_HEX);
    let expected = fp("13fcc5181021c22cd1f46de9bfd8574ffc9d70f8fce4d520fff4a6533da1cb0b");
    assert_eq!(*g.exp(&x).as_fp(), expected);
}

#[test]
fn boundary_values() {
    // (p-1) * (p-1) mod p == 1; (p-1) + (p-1) == p - 2.
    let p_minus_1 = Fp::ZERO - Fp::ONE;
    assert_eq!(p_minus_1 * p_minus_1, Fp::ONE);
    assert_eq!(p_minus_1 + p_minus_1, Fp::ZERO - Fp::from_u64(2));
    let q_minus_1 = Scalar::ZERO - Scalar::ONE;
    assert_eq!(q_minus_1 * q_minus_1, Scalar::ONE);
}
