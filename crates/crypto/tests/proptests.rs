//! Property-based tests for the cryptographic substrate: field axioms,
//! hash behaviour, secret sharing correctness, and signature/proof
//! soundness under random inputs.

use proptest::prelude::*;
use sintra_adversary::formula::{Gate, MonotoneFormula};
use sintra_adversary::party::PartySet;
use sintra_crypto::dleq::DleqProof;
use sintra_crypto::field::{Fp, Scalar};
use sintra_crypto::group::GroupElement;
use sintra_crypto::hash::{Hasher, Sha256};
use sintra_crypto::lsss::SharingScheme;
use sintra_crypto::rng::SeededRng;
use sintra_crypto::schnorr::SigningKey;
use sintra_crypto::shamir::{lagrange_at_zero, Polynomial};
use sintra_crypto::u256::U256;

fn u256_strategy() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u256_add_sub_roundtrip(a in u256_strategy(), b in u256_strategy()) {
        let (sum, _) = a.overflowing_add(&b);
        let (back, _) = sum.overflowing_sub(&b);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn u256_byte_roundtrip(a in u256_strategy()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn u256_mul_commutes(a in u256_strategy(), b in u256_strategy()) {
        prop_assert_eq!(a.widening_mul(&b), b.widening_mul(&a));
    }

    #[test]
    fn field_ring_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (Fp::from_u64(a), Fp::from_u64(b), Fp::from_u64(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn scalar_inversion(a in 1u64..) {
        let s = Scalar::from_u64(a);
        prop_assert_eq!(s * s.invert().unwrap(), Scalar::ONE);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..500), split in any::<prop::sample::Index>()) {
        let at = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut h = Sha256::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hasher_framing_injective(a in proptest::collection::vec(any::<u8>(), 0..40), b in proptest::collection::vec(any::<u8>(), 0..40)) {
        prop_assume!(a != b);
        let ha = Hasher::new("pt").field(&a).finish();
        let hb = Hasher::new("pt").field(&b).finish();
        prop_assert_ne!(ha, hb);
    }

    #[test]
    fn group_exponent_homomorphism(a in any::<u64>(), b in any::<u64>()) {
        let g = GroupElement::generator();
        let (sa, sb) = (Scalar::from_u64(a), Scalar::from_u64(b));
        prop_assert_eq!(g.exp(&sa).mul(&g.exp(&sb)), g.exp(&(sa + sb)));
    }

    #[test]
    fn shamir_any_k_subset_reconstructs(seed in any::<u64>(), degree in 1usize..5) {
        let mut rng = SeededRng::new(seed);
        let secret = rng.next_scalar();
        let poly = Polynomial::random(secret, degree, &mut rng);
        let n = degree + 3;
        // Pick k = degree+1 distinct points from 1..=n deterministically
        // from the seed.
        let mut points: Vec<u64> = (1..=n as u64).collect();
        for i in (1..points.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            points.swap(i, j);
        }
        let chosen = &points[..degree + 1];
        let shares: Vec<(u64, Scalar)> = chosen.iter().map(|&x| (x, poly.eval_at(x))).collect();
        prop_assert_eq!(sintra_crypto::shamir::reconstruct(&shares), secret);
    }

    #[test]
    fn lagrange_partition_of_unity(k in 2usize..6) {
        let points: Vec<u64> = (1..=k as u64).collect();
        let sum: Scalar = lagrange_at_zero(&points).into_iter().sum();
        prop_assert_eq!(sum, Scalar::ONE);
    }

    #[test]
    fn lsss_threshold_reconstruction(seed in any::<u64>(), n in 3usize..8, bits in any::<u32>()) {
        let k = 2 + (seed as usize % (n - 1)).min(n - 2);
        let scheme = SharingScheme::new(MonotoneFormula::threshold(n, k).unwrap());
        let mut rng = SeededRng::new(seed);
        let secret = rng.next_scalar();
        let shares = scheme.share(secret, &mut rng);
        let set: PartySet = (0..n).filter(|p| (bits >> p) & 1 == 1).collect();
        let result = scheme.reconstruct(&set, &shares);
        if set.len() >= k {
            prop_assert_eq!(result, Some(secret));
        } else {
            prop_assert_eq!(result, None);
        }
    }

    #[test]
    fn lsss_nested_formula_respects_qualification(seed in any::<u64>(), bits in 0u32..64) {
        // ((0 AND 1) OR (2 AND 3 AND 4)) over 6 parties with party 5
        // irrelevant.
        let formula = MonotoneFormula::new(
            6,
            Gate::or(vec![
                Gate::and(vec![Gate::leaf(0), Gate::leaf(1)]),
                Gate::and(vec![Gate::leaf(2), Gate::leaf(3), Gate::leaf(4)]),
            ]),
        )
        .unwrap();
        let qualified = formula.eval(&(0..6).filter(|p| (bits >> p) & 1 == 1).collect());
        let scheme = SharingScheme::new(formula);
        let mut rng = SeededRng::new(seed);
        let secret = rng.next_scalar();
        let shares = scheme.share(secret, &mut rng);
        let set: PartySet = (0..6).filter(|p| (bits >> p) & 1 == 1).collect();
        match scheme.reconstruct(&set, &shares) {
            Some(got) => {
                prop_assert!(qualified);
                prop_assert_eq!(got, secret);
            }
            None => prop_assert!(!qualified),
        }
    }

    #[test]
    fn schnorr_rejects_wrong_message(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 1..50), other in proptest::collection::vec(any::<u8>(), 1..50)) {
        prop_assume!(msg != other);
        let mut rng = SeededRng::new(seed);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(&msg, &mut rng);
        prop_assert!(key.public_key().verify(&msg, &sig));
        prop_assert!(!key.public_key().verify(&other, &sig));
    }

    #[test]
    fn dleq_sound_for_random_exponents(seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let g = GroupElement::generator();
        let h = GroupElement::hash_to_group("pt", b"h");
        let x = rng.next_scalar();
        let proof = DleqProof::prove("pt", &g, &g.exp(&x), &h, &h.exp(&x), &x, &mut rng);
        prop_assert!(proof.verify("pt", &g, &g.exp(&x), &h, &h.exp(&x)));
        // A different statement with the same proof fails.
        let y = x + Scalar::ONE;
        prop_assert!(!proof.verify("pt", &g, &g.exp(&y), &h, &h.exp(&y)));
    }
}
