//! Golden transcript tests: byte-exact protocol outputs pinned from a
//! fixed seed.
//!
//! The crypto engine promises that every execution mode — scalar
//! sliding-window, fixed-base tables at any budgeted width, and the
//! 4-lane SIMD kernels behind the `avx2` feature — produces
//! *bit-identical* group elements, proofs, and signatures. The unit
//! tests check the modes against each other on whatever hardware runs
//! them; these tests pin the actual bytes, so a scalar-only CI runner
//! and an AVX2 machine both compare against the same constants and any
//! cross-mode divergence (or accidental transcript format change —
//! challenge width, hash domain, serialization order) fails loudly.
//!
//! If a test here fails after an *intentional* transcript change
//! (e.g. a new Fiat-Shamir challenge width), regenerate the constants
//! with the printed actual values — and say so in the commit, because
//! every pinned value is a wire-format break.

use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::Dealer;
use sintra_crypto::rng::SeededRng;
use sintra_crypto::tsig::QuorumRule;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Coin transcript: one share's full wire encoding (elements + DLEQ
/// proofs, so this pins the 128-bit challenge derivation and the
/// exp_many share path) and the combined coin value.
#[test]
fn coin_share_and_value_bytes_are_pinned() {
    let ts = TrustStructure::threshold(4, 1).expect("valid structure");
    let mut rng = SeededRng::new(0xD15C);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let name = b"golden/coin/epoch-7";
    let shares: Vec<_> = bundles
        .iter()
        .map(|b| b.coin_key().share(name, &mut rng))
        .collect();
    for share in &shares {
        assert!(public.coin().verify_share(name, share));
    }
    assert_eq!(
        hex(&shares[0].to_bytes()),
        "0000000000000001000000005d285bf1ffc10e2668f370e7a58b9ac65fbf6cd69ac27a46709aa94ea75c06d49c0f94d8052e2982e6eda24d2f0a9626c47614430d4c240d5cb9720d9aaab4a10a0bdbf486f1811e32000e8e015cd7573247f71bfe496d722905b6d01d476ee41b59c40bd91c1bfab538145a22c36d5271236c87335112a33f860463942a6f2e",
        "coin share 0 wire bytes"
    );
    let value = public
        .coin()
        .combine(name, &shares)
        .expect("quorum combines");
    assert_eq!(
        hex(value.bytes()),
        "73d100c878e6a8bb52129842f59523e7b23d370ab9de29915bbcd4ae2aa494fa",
        "combined coin value"
    );
}

/// Signature transcript: one signature share and the combined
/// threshold signature.
#[test]
fn signature_bytes_are_pinned() {
    let ts = TrustStructure::threshold(4, 1).expect("valid structure");
    let mut rng = SeededRng::new(0x51ced);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let message = b"golden/message";
    let shares: Vec<_> = bundles
        .iter()
        .map(|b| b.signing_key().sign_share(message, &mut rng))
        .collect();
    assert_eq!(
        hex(&shares[0].to_bytes()),
        "000000003e6c82ce9158c9f24a21dd202d495506f48bdf5755257677337d4cefba210cdc4b1df2a10ca1cd7869ea2c9fcb454c5babe721488d48d375eaede04b87aa9b7b",
        "signature share 0 wire bytes"
    );
    let sig = public
        .signing()
        .combine(message, &shares, QuorumRule::Qualified)
        .expect("quorum combines");
    assert!(public
        .signing()
        .verify(message, &sig, QuorumRule::Qualified));
    assert_eq!(
        hex(&sig.to_bytes()),
        "0000000000000000000000000000000f3e6c82ce9158c9f24a21dd202d495506f48bdf5755257677337d4cefba210cdc4b1df2a10ca1cd7869ea2c9fcb454c5babe721488d48d375eaede04b87aa9b7b03b3ed28ec549a0119496e7164803637a2f085e9bc47e590581b78f417e7736d1796c38ad898e71fb61626367ba276578fafe5bbee767081556a99ddb1f5a78828a9ec06171ee17154489a1d940288386709e8927aaaf4d62b4cec69012d74a302f4c19db7c8b4366ce769d929dcc5e1a562a76a9785fae3bf8ad2ed2d4cbf33b1a4f49f7633e3118b9c1019b6f38821fc22fbde3153d20714c6160f3bee9f3737bdc930f520c75de090da3107efdf8a77a77e6892a4a4a87d07c59de5cd5242",
        "combined signature bytes"
    );
}

/// Generator exponentiation through the budget-sized fixed-base table
/// pinned against an independently computed value — the table width
/// may change with the budget, the bytes may not.
#[test]
fn generator_table_exp_bytes_are_pinned() {
    use sintra_crypto::field::Scalar;
    use sintra_crypto::group::GroupElement;
    use sintra_crypto::u256::U256;

    let e = Scalar::from_u256(
        &U256::from_hex("123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef")
            .expect("valid hex"),
    );
    // Same exponent as known_answers.rs's python-checked value.
    assert_eq!(
        hex(&GroupElement::generator().exp(&e).to_bytes()),
        "13fcc5181021c22cd1f46de9bfd8574ffc9d70f8fce4d520fff4a6533da1cb0b"
    );
}
