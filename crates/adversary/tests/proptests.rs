//! Property-based tests for adversary structures: monotonicity, dual
//! involution, threshold/general agreement, and the Q³ quorum
//! interlock that the protocol proofs rest on.

use proptest::prelude::*;
use sintra_adversary::formula::{Gate, MonotoneFormula};
use sintra_adversary::party::{subsets_of_size, PartySet};
use sintra_adversary::structure::TrustStructure;

/// A small random monotone formula over `n` parties.
fn formula_strategy(n: usize) -> impl Strategy<Value = Gate> {
    let leaf = (0..n).prop_map(Gate::leaf);
    leaf.prop_recursive(3, 16, 4, move |inner| {
        (proptest::collection::vec(inner, 1..4), any::<u8>()).prop_map(|(children, kraw)| {
            let k = 1 + (kraw as usize) % children.len();
            Gate::threshold(k, children)
        })
    })
}

fn set_from_bits(n: usize, bits: u32) -> PartySet {
    (0..n).filter(|p| (bits >> p) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_formulas_are_monotone(root in formula_strategy(6), bits in 0u32..64, extra in 0usize..6) {
        let f = MonotoneFormula::new(6, root).unwrap();
        let s = set_from_bits(6, bits);
        if f.eval(&s) {
            let mut bigger = s;
            bigger.insert(extra);
            prop_assert!(f.eval(&bigger), "monotonicity violated");
        }
    }

    #[test]
    fn dual_is_involution_and_correct(root in formula_strategy(5), bits in 0u32..32) {
        let f = MonotoneFormula::new(5, root).unwrap();
        let d = f.dual();
        let s = set_from_bits(5, bits);
        prop_assert_eq!(d.eval(&s), !f.eval(&s.complement(5)));
        prop_assert_eq!(d.dual().eval(&s), f.eval(&s));
    }

    #[test]
    fn threshold_and_general_structures_agree(n in 4usize..8, t_raw in any::<u8>(), bits in any::<u32>()) {
        let t = (t_raw as usize) % ((n - 1) / 2).max(1);
        let native = TrustStructure::threshold(n, t).unwrap();
        let general = TrustStructure::general_from_access(
            MonotoneFormula::threshold(n, t + 1).unwrap(),
        ).unwrap();
        let s = set_from_bits(n, bits & ((1 << n) - 1));
        prop_assert_eq!(native.is_corruptible(&s), general.is_corruptible(&s));
        prop_assert_eq!(native.is_core(&s), general.is_core(&s));
        prop_assert_eq!(native.is_strong(&s), general.is_strong(&s));
        prop_assert_eq!(native.satisfies_q3(), general.satisfies_q3());
        prop_assert_eq!(native.satisfies_q2(), general.satisfies_q2());
    }

    #[test]
    fn q3_interlock_for_random_structures(root in formula_strategy(6), bits in 0u32..64) {
        // For any general structure that satisfies Q3: every core set is
        // strong, and a strong set minus any corruptible set is still
        // qualified.
        let f = match MonotoneFormula::new(6, root) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let ts = match TrustStructure::general_from_access(f) {
            Ok(ts) => ts,
            Err(_) => return Ok(()), // degenerate / liveness-violating
        };
        prop_assume!(ts.satisfies_q3());
        let s = set_from_bits(6, bits);
        if ts.is_core(&s) {
            prop_assert!(ts.is_strong(&s), "core must be strong under Q3");
        }
        if ts.is_strong(&s) {
            for m in ts.maximal_adversary_sets() {
                prop_assert!(
                    ts.is_qualified(&s.difference(&m)),
                    "strong minus corruptible must stay qualified"
                );
            }
        }
    }

    #[test]
    fn two_core_sets_intersect_qualified(n in 4usize..8, t_raw in any::<u8>(), r1 in any::<u32>(), r2 in any::<u32>()) {
        let t = 1 + (t_raw as usize) % ((n - 1) / 3).max(1); // keep Q3: n > 3t
        prop_assume!(n > 3 * t);
        let ts = TrustStructure::threshold(n, t).unwrap();
        // Build core sets directly: remove at most t parties.
        let removal = |r: u32| -> PartySet {
            let mut removed = PartySet::new();
            let mut r = r;
            for _ in 0..t {
                removed.insert((r as usize) % n);
                r = r.rotate_right(7) ^ 0x9e37;
            }
            removed
        };
        let s1 = removal(r1).complement(n);
        let s2 = removal(r2).complement(n);
        prop_assert!(ts.is_core(&s1) && ts.is_core(&s2));
        prop_assert!(
            ts.is_qualified(&s1.intersection(&s2)),
            "two cores must share an honest party"
        );
    }

    #[test]
    fn maximal_sets_form_antichain(root in formula_strategy(6)) {
        let f = match MonotoneFormula::new(6, root) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let ts = match TrustStructure::general_from_access(f) {
            Ok(ts) => ts,
            Err(_) => return Ok(()),
        };
        let maximal = ts.maximal_adversary_sets();
        for (i, a) in maximal.iter().enumerate() {
            for (j, b) in maximal.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset_of(b), "antichain violated");
                }
            }
        }
        // Every maximal set is corruptible; every proper superset is not.
        for m in &maximal {
            prop_assert!(ts.is_corruptible(m));
            for p in m.complement(6).iter() {
                let mut bigger = *m;
                bigger.insert(p);
                prop_assert!(!ts.is_corruptible(&bigger));
            }
        }
    }

    #[test]
    fn subsets_of_size_is_exhaustive(n in 1usize..8, k_raw in any::<u8>()) {
        let k = (k_raw as usize) % (n + 1);
        let subsets = subsets_of_size(n, k);
        // Count = C(n, k).
        let mut expect = 1u64;
        for i in 0..k {
            expect = expect * (n - i) as u64 / (i + 1) as u64;
        }
        prop_assert_eq!(subsets.len() as u64, expect);
        for s in &subsets {
            prop_assert_eq!(s.len(), k);
        }
    }
}
