//! Adversary structures, access structures, and generalized quorum rules.
//!
//! A [`TrustStructure`] packages the paper's two views of who may fail:
//!
//! * the **adversary structure** `A` — the monotone-closed family of
//!   corruptible subsets, represented by its maximal sets `A*`, and
//! * the **sharing access structure** `Γ` — the monotone formula handed
//!   to the Benaloh-Leichter linear secret sharing scheme.
//!
//! For simple structures (thresholds, the paper's Example 1) `A` is
//! exactly the complement of `Γ`. In general they may differ: in the
//! paper's Example 2 the corruptible sets are the sixteen location∪OS
//! unions, while the grid sharing scheme leaves some *additional* sets
//! (which the adversary is assumed never to corrupt) unqualified. The
//! required compatibility is one-sided:
//!
//! * **secrecy** — every corruptible set is unqualified for sharing, and
//! * **liveness** — the complement of every corruptible set is qualified.
//!
//! The §4.2 quorum translation used by every protocol:
//!
//! | classical | generalized predicate |
//! |-----------|----------------------|
//! | `n - t` values | [`TrustStructure::is_core`]: the complement of the received set is corruptible |
//! | `2t + 1` values | [`TrustStructure::is_strong`]: the received set is not coverable by **two** corruptible sets |
//! | `t + 1` values | [`TrustStructure::is_qualified`]: the received set is not corruptible |
//!
//! The paper states the `2t+1` rule syntactically ("take `S∪T∪{i}` for
//! disjoint `S,T ∈ A*`"); that rule implies two-cover-freeness and
//! coincides with it for thresholds, but is *vacuous* for structures
//! whose maximal sets pairwise intersect (Example 2!), so the protocols
//! here use the semantic predicate. [`TrustStructure::paper_strong_rule`]
//! exposes the literal rule for comparison; the `figure` benches report
//! where the two differ.
//!
//! Under the `Q³` condition (no three corruptible sets cover `P`,
//! [`TrustStructure::satisfies_q3`]) the predicates interlock the way the
//! protocol proofs need: two core sets intersect in a non-corruptible
//! set, a strong set stays non-corruptible after removing any corruptible
//! set, and every core set is strong.

// The quorum predicates deliberately mirror the paper's arithmetic
// (`>= 2t + 1`, `>= b + c + 1`) instead of clippy's preferred `> 2t`.
#![allow(clippy::int_plus_one)]

use crate::formula::{FormulaError, MonotoneFormula};
use crate::party::{PartySet, MAX_PARTIES};
use serde::{Deserialize, Serialize};

/// Largest `n` for which general structures enumerate maximal adversary
/// sets from a formula eagerly (the enumeration is `O(2^n)`).
pub const MAX_GENERAL_PARTIES: usize = 24;

/// Errors from structure construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructureError {
    /// `n` exceeds the supported party count.
    TooManyParties {
        /// Requested party count.
        n: usize,
        /// The applicable limit.
        limit: usize,
    },
    /// Threshold parameters are inconsistent (`t >= n`).
    BadThreshold {
        /// Party count.
        n: usize,
        /// Corruption bound.
        t: usize,
    },
    /// The sharing formula failed validation.
    Formula(FormulaError),
    /// The structure is degenerate: the full set must be qualified and
    /// corrupting everything must be impossible.
    Degenerate,
    /// A corruptible set is qualified for sharing (secrecy violation).
    SecrecyViolation {
        /// The offending corruptible-but-qualified set.
        set: PartySet,
    },
    /// The complement of a corruptible set cannot reconstruct
    /// (liveness violation).
    LivenessViolation {
        /// The corruptible set whose complement is unqualified.
        set: PartySet,
    },
}

impl core::fmt::Display for StructureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StructureError::TooManyParties { n, limit } => {
                write!(f, "party count {n} exceeds limit {limit}")
            }
            StructureError::BadThreshold { n, t } => {
                write!(f, "invalid threshold parameters n={n}, t={t}")
            }
            StructureError::Formula(e) => write!(f, "invalid sharing formula: {e}"),
            StructureError::Degenerate => write!(f, "degenerate structure"),
            StructureError::SecrecyViolation { set } => {
                write!(f, "corruptible set {set} is qualified for sharing")
            }
            StructureError::LivenessViolation { set } => {
                write!(f, "complement of corruptible set {set} cannot reconstruct")
            }
        }
    }
}

impl std::error::Error for StructureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StructureError::Formula(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormulaError> for StructureError {
    fn from(e: FormulaError) -> Self {
        StructureError::Formula(e)
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Kind {
    Threshold {
        t: usize,
    },
    /// §6 hybrid failure extension: up to `b` Byzantine corruptions plus
    /// up to `c` additional crashes, requiring `n > 3b + 2c`. Crashes
    /// count against liveness (quorums shrink) but not against safety
    /// (only Byzantine parties equivocate).
    HybridThreshold {
        b: usize,
        c: usize,
    },
    General {
        /// Maximal corruptible sets `A*` (antichain).
        maximal: Vec<PartySet>,
        /// The LSSS access formula `Γ`.
        sharing: MonotoneFormula,
        /// Maximal unions `M_i ∪ M_j` over pairs of `A*` (pruned to the
        /// antichain); a set is strong iff contained in none of these.
        cover2: Vec<PartySet>,
    },
}

/// A trust structure: adversary structure, sharing access structure, and
/// the generalized quorum predicates of §4.2.
///
/// # Examples
///
/// ```
/// use sintra_adversary::structure::TrustStructure;
/// use sintra_adversary::party::PartySet;
///
/// // Classical n=4, t=1.
/// let ts = TrustStructure::threshold(4, 1).unwrap();
/// assert!(ts.satisfies_q3());
/// let two: PartySet = [0, 1].into_iter().collect();
/// assert!(ts.is_qualified(&two));       // "t+1" rule
/// assert!(!ts.is_corruptible(&two));
/// assert!(ts.is_core(&[0, 1, 2].into_iter().collect())); // "n−t" rule
/// assert!(ts.is_strong(&[0, 1, 2].into_iter().collect())); // "2t+1" rule
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrustStructure {
    n: usize,
    kind: Kind,
}

impl TrustStructure {
    /// The classical threshold structure: any set of at most `t` parties
    /// is corruptible.
    ///
    /// # Errors
    ///
    /// Returns an error if `t >= n` or `n` exceeds [`MAX_PARTIES`].
    pub fn threshold(n: usize, t: usize) -> Result<Self, StructureError> {
        if n == 0 || n > MAX_PARTIES {
            return Err(StructureError::TooManyParties {
                n,
                limit: MAX_PARTIES,
            });
        }
        if t >= n {
            return Err(StructureError::BadThreshold { n, t });
        }
        Ok(TrustStructure {
            n,
            kind: Kind::Threshold { t },
        })
    }

    /// The §6 hybrid failure structure: up to `b` Byzantine corruptions
    /// *plus* up to `c` crashes among `n` servers. Liveness quorums
    /// account for `b + c` silent parties; safety quorums only have to
    /// outvote the `b` Byzantine ones, so the resilience condition is
    /// `n > 3b + 2c` — cheaper than treating crashes as corruptions
    /// (which would demand `n > 3(b + c)`).
    ///
    /// # Errors
    ///
    /// Returns an error if `n <= 3b + 2c` or `n` exceeds
    /// [`MAX_PARTIES`].
    pub fn hybrid_threshold(n: usize, b: usize, c: usize) -> Result<Self, StructureError> {
        if n == 0 || n > MAX_PARTIES {
            return Err(StructureError::TooManyParties {
                n,
                limit: MAX_PARTIES,
            });
        }
        if n <= 3 * b + 2 * c {
            return Err(StructureError::BadThreshold { n, t: b + c });
        }
        Ok(TrustStructure {
            n,
            kind: Kind::HybridThreshold { b, c },
        })
    }

    /// For hybrid structures, the `(byzantine, crash)` budgets.
    pub fn hybrid_budgets(&self) -> Option<(usize, usize)> {
        match &self.kind {
            Kind::HybridThreshold { b, c } => Some((*b, *c)),
            _ => None,
        }
    }

    /// A general structure whose adversary structure is exactly the
    /// complement of the access formula: corruptible iff unqualified.
    /// This covers the paper's Example 1 and most hand-written structures.
    ///
    /// # Errors
    ///
    /// Returns an error for oversized or degenerate formulas.
    pub fn general_from_access(access: MonotoneFormula) -> Result<Self, StructureError> {
        let n = access.n();
        if n == 0 || n > MAX_GENERAL_PARTIES {
            return Err(StructureError::TooManyParties {
                n,
                limit: MAX_GENERAL_PARTIES,
            });
        }
        if !access.eval(&PartySet::full(n)) || access.eval(&PartySet::EMPTY) {
            return Err(StructureError::Degenerate);
        }
        let maximal = enumerate_maximal_unqualified(&access);
        Self::from_parts(n, maximal, access)
    }

    /// A general structure with an explicitly listed adversary structure
    /// (given by any generating family; reduced to its maximal antichain)
    /// and a possibly *coarser* sharing formula. This is what the paper's
    /// Example 2 needs: `A*` is the sixteen location∪OS unions while the
    /// grid sharing scheme leaves additional, never-corrupted sets
    /// unqualified.
    ///
    /// # Errors
    ///
    /// Returns an error if a corruptible set is qualified for sharing
    /// (secrecy) or the complement of a corruptible set is unqualified
    /// (liveness), or parameters are out of range.
    pub fn general(
        corruptible: Vec<PartySet>,
        sharing: MonotoneFormula,
    ) -> Result<Self, StructureError> {
        let n = sharing.n();
        if n == 0 || n > MAX_GENERAL_PARTIES {
            return Err(StructureError::TooManyParties {
                n,
                limit: MAX_GENERAL_PARTIES,
            });
        }
        if !sharing.eval(&PartySet::full(n)) || sharing.eval(&PartySet::EMPTY) {
            return Err(StructureError::Degenerate);
        }
        let maximal = prune_to_antichain(corruptible);
        Self::from_parts(n, maximal, sharing)
    }

    fn from_parts(
        n: usize,
        maximal: Vec<PartySet>,
        sharing: MonotoneFormula,
    ) -> Result<Self, StructureError> {
        let full = PartySet::full(n);
        for m in &maximal {
            if *m == full {
                return Err(StructureError::Degenerate);
            }
            if sharing.eval(m) {
                return Err(StructureError::SecrecyViolation { set: *m });
            }
            if !sharing.eval(&m.complement(n)) {
                return Err(StructureError::LivenessViolation { set: *m });
            }
        }
        let cover2 = maximal_pair_unions(&maximal);
        Ok(TrustStructure {
            n,
            kind: Kind::General {
                maximal,
                sharing,
                cover2,
            },
        })
    }

    /// Number of parties `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// For threshold structures, the corruption bound `t`.
    pub fn threshold_t(&self) -> Option<usize> {
        match &self.kind {
            Kind::Threshold { t } => Some(*t),
            Kind::HybridThreshold { .. } | Kind::General { .. } => None,
        }
    }

    /// Tests `S ∈ A` (the adversary may corrupt this entire set).
    pub fn is_corruptible(&self, set: &PartySet) -> bool {
        match &self.kind {
            Kind::Threshold { t } => set.len() <= *t,
            Kind::HybridThreshold { b, .. } => set.len() <= *b,
            Kind::General { maximal, .. } => {
                set.is_empty() || maximal.iter().any(|m| set.is_subset_of(m))
            }
        }
    }

    /// Tests `S ∉ A` — the generalized "`t+1` values" rule: any such set
    /// is guaranteed to contain at least one honest party.
    pub fn is_qualified(&self, set: &PartySet) -> bool {
        !self.is_corruptible(set)
    }

    /// The generalized "`n−t` values" rule: `S ⊇ P∖F` for some `F ∈ A`,
    /// i.e. the *complement* of `S` is corruptible. Protocols may wait
    /// for message sets satisfying this predicate without losing liveness.
    pub fn is_core(&self, set: &PartySet) -> bool {
        match &self.kind {
            // Hybrid: liveness quorums must be reachable with the
            // Byzantine AND crash budgets silent.
            Kind::HybridThreshold { b, c } => set.len() >= self.n - b - c,
            _ => self.is_corruptible(&set.complement(self.n)),
        }
    }

    /// The generalized "`2t+1` values" rule: `S` is not coverable by two
    /// corruptible sets (and is nonempty). Under `Q³` this guarantees
    /// both that `S` minus any corruptible set stays non-corruptible and
    /// that every core set is strong.
    pub fn is_strong(&self, set: &PartySet) -> bool {
        match &self.kind {
            Kind::Threshold { t } => set.len() >= 2 * t + 1,
            Kind::HybridThreshold { b, c } => {
                // Strong = intersects any other strong set beyond b, and
                // survives removal of a corruptible set while staying
                // qualified; max of the Byzantine-quorum bound and b+c+1.
                set.len() >= (self.n + b + 2) / 2 && set.len() >= b + c + 1
            }
            Kind::General { cover2, .. } => {
                !set.is_empty() && !cover2.iter().any(|u| set.is_subset_of(u))
            }
        }
    }

    /// The paper's *literal* §4.2 rule for "`2t+1` values": `S` contains
    /// `S'∪T'∪{i}` for disjoint `S',T' ∈ A*` and `i ∉ S'∪T'`. Equivalent
    /// to [`is_strong`](Self::is_strong) for thresholds; strictly weaker
    /// in general (vacuously false when no two maximal sets are disjoint,
    /// as in the paper's Example 2). Protocols use `is_strong`.
    pub fn paper_strong_rule(&self, set: &PartySet) -> bool {
        match &self.kind {
            Kind::Threshold { t } => set.len() >= 2 * t + 1,
            Kind::HybridThreshold { .. } => self.is_strong(set),
            Kind::General { maximal, .. } => {
                for (i, a) in maximal.iter().enumerate() {
                    for b in &maximal[i + 1..] {
                        if !a.is_disjoint(b) {
                            continue;
                        }
                        let st = a.union(b);
                        if st.is_subset_of(set) && !set.difference(&st).is_empty() {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Checks the `Q³` condition: no three corruptible sets cover `P`
    /// (`n > 3t` in the threshold case) — the resilience condition all
    /// protocols in the architecture require.
    pub fn satisfies_q3(&self) -> bool {
        match &self.kind {
            Kind::Threshold { t } => self.n > 3 * t,
            Kind::HybridThreshold { b, c } => self.n > 3 * b + 2 * c,
            Kind::General { cover2, .. } => cover2
                .iter()
                .all(|u| self.is_qualified(&u.complement(self.n))),
        }
    }

    /// Checks the weaker `Q²` condition: no two corruptible sets cover `P`.
    pub fn satisfies_q2(&self) -> bool {
        match &self.kind {
            Kind::Threshold { t } => self.n > 2 * t,
            Kind::HybridThreshold { b, c } => self.n > 2 * b + c,
            Kind::General { cover2, .. } => {
                let full = PartySet::full(self.n);
                cover2.iter().all(|u| *u != full)
            }
        }
    }

    /// The maximal corruptible sets `A*`.
    ///
    /// For general structures this is precomputed. For threshold
    /// structures it enumerates all `C(n, t)` subsets — intended for tests
    /// and benchmarks on small systems.
    pub fn maximal_adversary_sets(&self) -> Vec<PartySet> {
        match &self.kind {
            Kind::Threshold { t } => crate::party::subsets_of_size(self.n, *t),
            Kind::HybridThreshold { b, .. } => crate::party::subsets_of_size(self.n, *b),
            Kind::General { maximal, .. } => maximal.clone(),
        }
    }

    /// The access formula handed to the linear secret sharing scheme
    /// (`Θ_{t+1}^n` for thresholds).
    pub fn sharing_formula(&self) -> MonotoneFormula {
        match &self.kind {
            Kind::Threshold { t } => MonotoneFormula::threshold(self.n, t + 1)
                .expect("threshold parameters validated at construction"),
            Kind::HybridThreshold { b, .. } => MonotoneFormula::threshold(self.n, b + 1)
                .expect("hybrid parameters validated at construction"),
            Kind::General { sharing, .. } => sharing.clone(),
        }
    }

    /// Tests whether `set` is qualified *for secret sharing* (this can be
    /// stricter than [`is_qualified`](Self::is_qualified), which is the
    /// protocol-level "not corruptible" predicate).
    pub fn can_reconstruct(&self, set: &PartySet) -> bool {
        match &self.kind {
            Kind::Threshold { t } => set.len() >= t + 1,
            Kind::HybridThreshold { b, .. } => set.len() >= b + 1,
            Kind::General { sharing, .. } => sharing.eval(set),
        }
    }

    /// The largest corruptible-set size (`t` in the threshold case).
    pub fn max_corruptible_size(&self) -> usize {
        match &self.kind {
            Kind::Threshold { t } => *t,
            Kind::HybridThreshold { b, .. } => *b,
            Kind::General { maximal, .. } => maximal.iter().map(|s| s.len()).max().unwrap_or(0),
        }
    }
}

/// Enumerates maximal sets `S` with `access(S) = false` by scanning all
/// `2^n` subsets; a set is maximal iff it is unqualified and every
/// single-party extension is qualified.
fn enumerate_maximal_unqualified(access: &MonotoneFormula) -> Vec<PartySet> {
    let n = access.n();
    let mut out = Vec::new();
    for bits in 0u64..(1u64 << n) {
        let set: PartySet = (0..n).filter(|p| (bits >> p) & 1 == 1).collect();
        if access.eval(&set) {
            continue;
        }
        let maximal = (0..n).filter(|p| !set.contains(*p)).all(|p| {
            let mut bigger = set;
            bigger.insert(p);
            access.eval(&bigger)
        });
        if maximal {
            out.push(set);
        }
    }
    out
}

/// Reduces a family of sets to its maximal antichain (drop any set
/// contained in another; deduplicate).
fn prune_to_antichain(mut sets: Vec<PartySet>) -> Vec<PartySet> {
    sets.sort_by_key(|s| core::cmp::Reverse(s.len()));
    let mut out: Vec<PartySet> = Vec::new();
    for s in sets {
        if !out.iter().any(|kept| s.is_subset_of(kept)) {
            out.push(s);
        }
    }
    out
}

/// Computes the antichain of pairwise unions `M_i ∪ M_j` (including
/// `i = j`); a set avoids two-coverage iff it is contained in none of
/// these.
fn maximal_pair_unions(maximal: &[PartySet]) -> Vec<PartySet> {
    let mut unions = Vec::with_capacity(maximal.len() * (maximal.len() + 1) / 2);
    for (i, a) in maximal.iter().enumerate() {
        for b in &maximal[i..] {
            unions.push(a.union(b));
        }
    }
    unions.sort();
    unions.dedup();
    prune_to_antichain(unions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Gate;

    fn set(parties: &[usize]) -> PartySet {
        parties.iter().copied().collect()
    }

    #[test]
    fn threshold_predicates() {
        let ts = TrustStructure::threshold(7, 2).unwrap();
        assert_eq!(ts.n(), 7);
        assert_eq!(ts.threshold_t(), Some(2));
        assert!(ts.is_corruptible(&set(&[0, 1])));
        assert!(!ts.is_corruptible(&set(&[0, 1, 2])));
        assert!(ts.is_qualified(&set(&[0, 1, 2])));
        assert!(ts.is_core(&set(&[0, 1, 2, 3, 4])));
        assert!(!ts.is_core(&set(&[0, 1, 2, 3])));
        assert!(ts.is_strong(&set(&[0, 1, 2, 3, 4])));
        assert!(!ts.is_strong(&set(&[0, 1, 2, 3])));
        assert!(ts.satisfies_q3());
        assert!(ts.satisfies_q2());
        assert!(ts.can_reconstruct(&set(&[0, 1, 2])));
        assert!(!ts.can_reconstruct(&set(&[0, 1])));
    }

    #[test]
    fn threshold_q3_boundary() {
        assert!(TrustStructure::threshold(4, 1).unwrap().satisfies_q3());
        assert!(!TrustStructure::threshold(3, 1).unwrap().satisfies_q3());
        assert!(TrustStructure::threshold(3, 1).unwrap().satisfies_q2());
        assert!(!TrustStructure::threshold(2, 1).unwrap().satisfies_q2());
    }

    #[test]
    fn invalid_parameters() {
        assert!(TrustStructure::threshold(0, 0).is_err());
        assert!(TrustStructure::threshold(3, 3).is_err());
        assert!(TrustStructure::threshold(200, 1).is_err());
    }

    #[test]
    fn general_matches_threshold() {
        // A general structure built from the threshold formula must agree
        // with the native threshold structure on every predicate.
        let native = TrustStructure::threshold(5, 1).unwrap();
        let general =
            TrustStructure::general_from_access(MonotoneFormula::threshold(5, 2).unwrap()).unwrap();
        for bits in 0u64..32 {
            let s: PartySet = (0..5).filter(|p| (bits >> p) & 1 == 1).collect();
            assert_eq!(
                native.is_corruptible(&s),
                general.is_corruptible(&s),
                "{s:?}"
            );
            assert_eq!(native.is_core(&s), general.is_core(&s), "{s:?}");
            assert_eq!(native.is_strong(&s), general.is_strong(&s), "{s:?}");
            assert_eq!(
                native.paper_strong_rule(&s),
                general.paper_strong_rule(&s),
                "{s:?}"
            );
            assert_eq!(
                native.can_reconstruct(&s),
                general.can_reconstruct(&s),
                "{s:?}"
            );
        }
        assert!(general.satisfies_q3());
        assert_eq!(general.max_corruptible_size(), 1);
    }

    #[test]
    fn general_maximal_sets_for_threshold_formula() {
        let general =
            TrustStructure::general_from_access(MonotoneFormula::threshold(4, 2).unwrap()).unwrap();
        // Corruptible = sets of size <= 1; maximal = the four singletons.
        let mut maximal = general.maximal_adversary_sets();
        maximal.sort();
        assert_eq!(maximal.len(), 4);
        assert!(maximal.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn oversized_general_rejected() {
        let err = TrustStructure::general_from_access(
            MonotoneFormula::threshold(MAX_GENERAL_PARTIES + 1, 2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, StructureError::TooManyParties { .. }));
    }

    #[test]
    fn explicit_adversary_secrecy_violation_rejected() {
        // Sharing = 2-out-of-4, but the declared adversary can corrupt a
        // pair — which could then reconstruct: must be rejected.
        let err = TrustStructure::general(
            vec![set(&[0, 1])],
            MonotoneFormula::threshold(4, 2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, StructureError::SecrecyViolation { .. }));
    }

    #[test]
    fn explicit_adversary_liveness_violation_rejected() {
        // Sharing = 4-out-of-4, adversary corrupts one party: the three
        // survivors cannot reconstruct.
        let err =
            TrustStructure::general(vec![set(&[0])], MonotoneFormula::threshold(4, 4).unwrap())
                .unwrap_err();
        assert!(matches!(err, StructureError::LivenessViolation { .. }));
    }

    #[test]
    fn antichain_pruning() {
        let ts = TrustStructure::general(
            vec![set(&[0]), set(&[0, 1]), set(&[0, 1]), set(&[2])],
            MonotoneFormula::threshold(5, 3).unwrap(),
        )
        .unwrap();
        let mut maximal = ts.maximal_adversary_sets();
        maximal.sort();
        assert_eq!(maximal, vec![set(&[0, 1]), set(&[2])]);
    }

    #[test]
    fn maximal_sets_of_nontrivial_structure() {
        // Majority-of-3: corruptible = singletons; satisfies Q2 (liveness
        // and secrecy hold) but NOT Q3 (three singletons cover P).
        let ts =
            TrustStructure::general_from_access(MonotoneFormula::threshold(3, 2).unwrap()).unwrap();
        let mut maximal = ts.maximal_adversary_sets();
        maximal.sort();
        assert_eq!(maximal, vec![set(&[0]), set(&[1]), set(&[2])]);
        assert!(ts.satisfies_q2());
        assert!(!ts.satisfies_q3());
        // The full set is strong (not coverable by two singletons)…
        assert!(ts.is_strong(&PartySet::full(3)));
        // …but any pair is coverable by two singletons.
        assert!(!ts.is_strong(&set(&[0, 1])));
    }

    #[test]
    fn liveness_violating_formula_rejected() {
        // Access = (0 AND 1) OR (2 AND 3): the complement of the maximal
        // corruptible set {0,2} is {1,3}, which cannot reconstruct.
        let access = MonotoneFormula::new(
            4,
            Gate::or(vec![
                Gate::and(vec![Gate::leaf(0), Gate::leaf(1)]),
                Gate::and(vec![Gate::leaf(2), Gate::leaf(3)]),
            ]),
        )
        .unwrap();
        let err = TrustStructure::general_from_access(access).unwrap_err();
        assert!(matches!(err, StructureError::LivenessViolation { .. }));
    }

    #[test]
    fn is_strong_semantics_threshold_formula() {
        let ts =
            TrustStructure::general_from_access(MonotoneFormula::threshold(7, 3).unwrap()).unwrap();
        // t = 2 equivalent: strong sets are exactly those of size >= 5.
        assert!(ts.is_strong(&set(&[0, 1, 2, 3, 4])));
        assert!(!ts.is_strong(&set(&[0, 1, 2, 3])));
        assert!(!ts.is_strong(&PartySet::EMPTY));
    }

    #[test]
    fn strong_equals_paper_rule_on_threshold_formulas() {
        for (n, k) in [(4usize, 2usize), (5, 3), (6, 3), (7, 3)] {
            let ts = TrustStructure::general_from_access(MonotoneFormula::threshold(n, k).unwrap())
                .unwrap();
            for bits in 0u64..(1 << n) {
                let s: PartySet = (0..n).filter(|p| (bits >> p) & 1 == 1).collect();
                assert_eq!(
                    ts.is_strong(&s),
                    ts.paper_strong_rule(&s),
                    "n={n} k={k} {s:?}"
                );
            }
        }
    }

    #[test]
    fn q3_quorum_interlock() {
        // Under Q3: every core set is strong; strong minus corruptible is
        // still qualified; two cores intersect in a qualified set.
        let structures = vec![
            TrustStructure::threshold(4, 1).unwrap(),
            TrustStructure::threshold(7, 2).unwrap(),
            TrustStructure::general_from_access(MonotoneFormula::threshold(7, 3).unwrap()).unwrap(),
        ];
        for ts in structures {
            let n = ts.n();
            assert!(ts.satisfies_q3());
            for bits in 0u64..(1 << n) {
                let s: PartySet = (0..n).filter(|p| (bits >> p) & 1 == 1).collect();
                if ts.is_core(&s) {
                    assert!(ts.is_strong(&s), "core must be strong: {s:?}");
                }
                if ts.is_strong(&s) {
                    for m in ts.maximal_adversary_sets() {
                        assert!(
                            ts.is_qualified(&s.difference(&m)),
                            "strong minus corruptible must stay qualified: {s:?} - {m:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharing_formula_roundtrip() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let f = ts.sharing_formula();
        assert!(f.eval(&set(&[0, 1])));
        assert!(!f.eval(&set(&[0])));
    }

    #[test]
    fn hybrid_threshold_predicates() {
        // n = 6, b = 1, c = 1 (6 > 3·1 + 2·1).
        let ts = TrustStructure::hybrid_threshold(6, 1, 1).unwrap();
        assert_eq!(ts.hybrid_budgets(), Some((1, 1)));
        assert_eq!(ts.threshold_t(), None);
        assert!(ts.satisfies_q3());
        // Safety: only single parties are corruptible.
        assert!(ts.is_corruptible(&set(&[3])));
        assert!(!ts.is_corruptible(&set(&[3, 4])));
        // Liveness: core = n - b - c = 4.
        assert!(ts.is_core(&set(&[0, 1, 2, 3])));
        assert!(!ts.is_core(&set(&[0, 1, 2])));
        // Strong: max(⌈(n+b+1)/2⌉, b+c+1) = max(4, 3) = 4.
        assert!(ts.is_strong(&set(&[0, 1, 2, 3])));
        assert!(!ts.is_strong(&set(&[0, 1, 2])));
        assert!(ts.paper_strong_rule(&set(&[0, 1, 2, 3])));
        // Sharing: b+1 = 2 reconstruct.
        assert!(ts.can_reconstruct(&set(&[0, 5])));
        assert!(!ts.can_reconstruct(&set(&[0])));
        assert_eq!(ts.max_corruptible_size(), 1);
        assert_eq!(ts.maximal_adversary_sets().len(), 6);
    }

    #[test]
    fn hybrid_threshold_interlock() {
        // The quorum interlock must hold: cores intersect beyond b;
        // strong minus corruptible stays qualified; core implies strong.
        for (n, b, c) in [(6usize, 1usize, 1usize), (8, 1, 2), (10, 2, 1)] {
            let ts = TrustStructure::hybrid_threshold(n, b, c).unwrap();
            for bits in 0u64..(1 << n) {
                let s: PartySet = (0..n).filter(|p| (bits >> p) & 1 == 1).collect();
                if ts.is_core(&s) {
                    assert!(
                        ts.is_strong(&s),
                        "core implies strong: n={n} b={b} c={c} {s:?}"
                    );
                }
                if ts.is_strong(&s) {
                    // Removing any Byzantine-corruptible set leaves a
                    // qualified set.
                    for m in ts.maximal_adversary_sets() {
                        assert!(ts.is_qualified(&s.difference(&m)));
                    }
                }
            }
            // Two cores intersect in a qualified (non-corruptible) set.
            let core_size = n - b - c;
            let s1: PartySet = (0..core_size).collect();
            let s2: PartySet = (n - core_size..n).collect();
            assert!(ts.is_qualified(&s1.intersection(&s2)), "n={n} b={b} c={c}");
        }
    }

    #[test]
    fn hybrid_resilience_condition() {
        assert!(TrustStructure::hybrid_threshold(6, 1, 1).is_ok());
        assert!(TrustStructure::hybrid_threshold(5, 1, 1).is_err());
        assert!(TrustStructure::hybrid_threshold(4, 1, 0).is_ok());
        assert!(TrustStructure::hybrid_threshold(3, 0, 1).is_ok());
        // Hybrid beats treating crashes as corruptions: 6 servers can
        // take 1 Byzantine + 1 crash, while threshold t=2 would need 7.
        assert!(!TrustStructure::threshold(6, 2).unwrap().satisfies_q3());
    }

    #[test]
    fn error_display_and_source() {
        let e = StructureError::BadThreshold { n: 3, t: 3 };
        assert!(format!("{e}").contains("n=3"));
        let e: StructureError = FormulaError::EmptyGate.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = StructureError::SecrecyViolation { set: set(&[1, 2]) };
        assert!(format!("{e}").contains("{1,2}"));
    }
}
