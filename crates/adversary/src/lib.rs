#![warn(missing_docs)]
//! # sintra-adversary
//!
//! Generalized adversary structures for **SINTRA-RS** (Cachin,
//! *"Distributing Trust on the Internet"*, DSN 2001, §4).
//!
//! The classical fault model — "at most `t` of `n` servers fail" —
//! assumes faults strike servers independently and uniformly. Against a
//! malicious Internet adversary that assumption is fragile: one exploit
//! can take out every server running the same operating system at once.
//! The paper's answer is to describe *which subsets may fail together*
//! explicitly, as a monotone **adversary structure** `A`, and to require
//! only the `Q³` condition (no three sets of `A` cover the server set)
//! instead of `n > 3t`.
//!
//! This crate provides:
//!
//! * [`party`] — party identifiers and compact subset bitmasks,
//! * [`formula`] — monotone Boolean formulas over threshold gates
//!   `Θ_k^n`, the language in which structures are written,
//! * [`structure`] — [`structure::TrustStructure`], packaging the
//!   adversary/access structure pair, the `Q³`/`Q²` checks, and the
//!   generalized quorum predicates of §4.2 used by every protocol,
//! * [`attributes`] — server classification by attributes and faithful
//!   constructions of the paper's Examples 1 and 2,
//! * [`hybrid`] — the §6 extension treating crash failures separately
//!   from Byzantine corruptions.
//!
//! ## Example: the paper's 16-server grid
//!
//! ```
//! use sintra_adversary::attributes::{example2, example2_locations, example2_operating_systems};
//!
//! let ts = example2()?;
//! let corrupted = example2_locations().members(0)
//!     .union(&example2_operating_systems().members(1));
//! assert_eq!(corrupted.len(), 7);
//! assert!(ts.is_corruptible(&corrupted), "one site plus one OS is tolerated");
//! assert!(ts.satisfies_q3());
//! # Ok::<(), sintra_adversary::structure::StructureError>(())
//! ```

pub mod attributes;
pub mod formula;
pub mod hybrid;
pub mod party;
pub mod structure;

pub use formula::{Gate, MonotoneFormula};
pub use party::{PartyId, PartySet};
pub use structure::{StructureError, TrustStructure};
