//! Party identifiers and compact party sets.
//!
//! The paper's server index set `P = {1, ..., n}` is represented 0-based
//! as `0..n`. Subsets of `P` — corruptible sets, quorums, echo sets — are
//! [`PartySet`] bitmasks supporting up to 128 parties, far beyond any
//! deployment the paper contemplates (its examples use 9 and 16 servers).

use serde::{Deserialize, Serialize};

/// Index of a server/replica, in `0..n`.
pub type PartyId = usize;

/// Maximum number of parties a [`PartySet`] can hold.
pub const MAX_PARTIES: usize = 128;

/// A subset of the parties `{0, .., n-1}`, stored as a 128-bit mask.
///
/// # Examples
///
/// ```
/// use sintra_adversary::party::PartySet;
///
/// let s: PartySet = [0, 2, 3].into_iter().collect();
/// assert!(s.contains(2));
/// assert!(!s.contains(1));
/// assert_eq!(s.len(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct PartySet {
    bits: u128,
}

impl PartySet {
    /// The empty set.
    pub const EMPTY: PartySet = PartySet { bits: 0 };

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates the singleton set `{p}`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= MAX_PARTIES`.
    pub fn singleton(p: PartyId) -> Self {
        assert!(p < MAX_PARTIES, "party id {p} out of range");
        PartySet { bits: 1 << p }
    }

    /// Creates the full set `{0, .., n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PARTIES`.
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_PARTIES, "party count {n} out of range");
        if n == 128 {
            PartySet { bits: u128::MAX }
        } else {
            PartySet {
                bits: (1u128 << n) - 1,
            }
        }
    }

    /// Inserts a party; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `p >= MAX_PARTIES`.
    pub fn insert(&mut self, p: PartyId) -> bool {
        assert!(p < MAX_PARTIES, "party id {p} out of range");
        let had = self.contains(p);
        self.bits |= 1 << p;
        !had
    }

    /// Removes a party; returns `true` if it was present.
    pub fn remove(&mut self, p: PartyId) -> bool {
        if p >= MAX_PARTIES {
            return false;
        }
        let had = self.contains(p);
        self.bits &= !(1 << p);
        had
    }

    /// Tests membership.
    pub fn contains(&self, p: PartyId) -> bool {
        p < MAX_PARTIES && (self.bits >> p) & 1 == 1
    }

    /// Number of parties in the set.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Set union.
    pub fn union(&self, other: &PartySet) -> PartySet {
        PartySet {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &PartySet) -> PartySet {
        PartySet {
            bits: self.bits & other.bits,
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &PartySet) -> PartySet {
        PartySet {
            bits: self.bits & !other.bits,
        }
    }

    /// Complement within the universe `{0, .., n-1}`.
    pub fn complement(&self, n: usize) -> PartySet {
        Self::full(n).difference(self)
    }

    /// Tests whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &PartySet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Tests whether the sets are disjoint.
    pub fn is_disjoint(&self, other: &PartySet) -> bool {
        self.bits & other.bits == 0
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = PartyId> + '_ {
        let bits = self.bits;
        (0..MAX_PARTIES).filter(move |p| (bits >> p) & 1 == 1)
    }

    /// Raw bitmask accessor (for hashing/serialization).
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Reconstructs a set from a raw bitmask (inverse of
    /// [`bits`](Self::bits)).
    pub fn from_bits(bits: u128) -> Self {
        PartySet { bits }
    }
}

impl FromIterator<PartyId> for PartySet {
    fn from_iter<I: IntoIterator<Item = PartyId>>(iter: I) -> Self {
        let mut s = PartySet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<PartyId> for PartySet {
    fn extend<I: IntoIterator<Item = PartyId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl core::fmt::Debug for PartySet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl core::fmt::Display for PartySet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// Enumerates all subsets of `{0..n-1}` of size exactly `k`.
///
/// Intended for test/bench enumeration of small structures; the count is
/// `C(n, k)`.
pub fn subsets_of_size(n: usize, k: usize) -> Vec<PartySet> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn recurse(
        start: usize,
        n: usize,
        k: usize,
        current: &mut Vec<PartyId>,
        out: &mut Vec<PartySet>,
    ) {
        if current.len() == k {
            out.push(current.iter().copied().collect());
            return;
        }
        for p in start..n {
            if n - p < k - current.len() {
                break;
            }
            current.push(p);
            recurse(p + 1, n, k, current, out);
            current.pop();
        }
    }
    recurse(0, n, k, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = PartySet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn full_and_complement() {
        let full = PartySet::full(5);
        assert_eq!(full.len(), 5);
        let s: PartySet = [0, 2].into_iter().collect();
        let c = s.complement(5);
        assert_eq!(c, [1, 3, 4].into_iter().collect());
        assert_eq!(s.union(&c), full);
        assert!(s.is_disjoint(&c));
    }

    #[test]
    fn full_at_max_width() {
        let full = PartySet::full(128);
        assert_eq!(full.len(), 128);
        assert!(full.contains(127));
    }

    #[test]
    fn set_algebra() {
        let a: PartySet = [0, 1, 2].into_iter().collect();
        let b: PartySet = [2, 3].into_iter().collect();
        assert_eq!(a.union(&b), [0, 1, 2, 3].into_iter().collect());
        assert_eq!(a.intersection(&b), PartySet::singleton(2));
        assert_eq!(a.difference(&b), [0, 1].into_iter().collect());
        assert!(PartySet::singleton(2).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
        assert!(PartySet::EMPTY.is_subset_of(&b));
    }

    #[test]
    fn iteration_order() {
        let s: PartySet = [5, 1, 9].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_party_panics() {
        PartySet::singleton(128);
    }

    #[test]
    fn subsets_of_size_counts() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(5, 0).len(), 1);
        assert_eq!(subsets_of_size(5, 5).len(), 1);
        assert_eq!(subsets_of_size(9, 2).len(), 36);
        // All returned sets have the right size and are distinct.
        let sets = subsets_of_size(6, 3);
        assert_eq!(sets.len(), 20);
        assert!(sets.iter().all(|s| s.len() == 3));
        let unique: std::collections::HashSet<_> = sets.iter().collect();
        assert_eq!(unique.len(), 20);
    }
}
