//! Hybrid crash/Byzantine failure structures (§6 extension).
//!
//! The paper's Extensions section suggests treating crash failures
//! separately from full Byzantine corruptions: crashes are more common
//! and much cheaper to tolerate. A [`HybridStructure`] couples a
//! Byzantine [`TrustStructure`] with an additional crash allowance; the
//! adversary may simultaneously corrupt a set `B ∈ A_byz` and crash a
//! further set `C` as long as the pair is tolerated.
//!
//! The resilience condition generalizes `n > 3t_b + 2t_c`: every quorum
//! predicate treats crashed parties as silent (they count against
//! liveness) while only Byzantine parties can equivocate (count against
//! safety).

use crate::party::PartySet;
use crate::structure::{StructureError, TrustStructure};
use serde::{Deserialize, Serialize};

/// A hybrid failure structure: Byzantine structure plus crash budget.
///
/// # Examples
///
/// ```
/// use sintra_adversary::hybrid::HybridStructure;
///
/// // n = 8, one Byzantine fault, one additional crash: 8 > 3·1 + 2·1.
/// let h = HybridStructure::threshold(8, 1, 1)?;
/// assert!(h.is_tolerated(&[0].into_iter().collect(), &[5].into_iter().collect()));
/// assert!(!h.is_tolerated(&[0, 1].into_iter().collect(), &[5].into_iter().collect()));
/// # Ok::<(), sintra_adversary::structure::StructureError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HybridStructure {
    byzantine: TrustStructure,
    max_crashes: usize,
}

impl HybridStructure {
    /// Threshold hybrid: up to `t_byz` Byzantine corruptions plus up to
    /// `t_crash` crashes among `n` servers. Requires
    /// `n > 3·t_byz + 2·t_crash` for asynchronous resilience.
    ///
    /// # Errors
    ///
    /// Returns an error if the resilience condition fails.
    pub fn threshold(n: usize, t_byz: usize, t_crash: usize) -> Result<Self, StructureError> {
        if n <= 3 * t_byz + 2 * t_crash {
            return Err(StructureError::BadThreshold {
                n,
                t: t_byz + t_crash,
            });
        }
        Ok(HybridStructure {
            byzantine: TrustStructure::threshold(n, t_byz)?,
            max_crashes: t_crash,
        })
    }

    /// Wraps a general Byzantine structure with a crash budget.
    ///
    /// The caller is responsible for checking the generalized resilience
    /// condition via [`HybridStructure::satisfies_hybrid_q3`].
    pub fn general(byzantine: TrustStructure, max_crashes: usize) -> Self {
        HybridStructure {
            byzantine,
            max_crashes,
        }
    }

    /// The Byzantine component.
    pub fn byzantine(&self) -> &TrustStructure {
        &self.byzantine
    }

    /// The crash budget.
    pub fn max_crashes(&self) -> usize {
        self.max_crashes
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.byzantine.n()
    }

    /// Tests whether the adversary may corrupt `byz` (Byzantine) and crash
    /// `crashes` simultaneously.
    pub fn is_tolerated(&self, byz: &PartySet, crashes: &PartySet) -> bool {
        byz.is_disjoint(crashes)
            && self.byzantine.is_corruptible(byz)
            && crashes.len() <= self.max_crashes
    }

    /// The hybrid analogue of `Q³`: for every tolerated Byzantine set `B`
    /// and crash set `C`, the remaining honest live parties must still be
    /// able to make progress against any *other* Byzantine set appearing
    /// qualified. A sufficient condition (checked here) is that after
    /// removing any crash set of maximal size, the residual structure
    /// still satisfies `Q³` when each corruptible set is extended by the
    /// crashes.
    pub fn satisfies_hybrid_q3(&self) -> bool {
        // For threshold structures this is exactly n > 3t + 2c; emulate by
        // checking Q3 of the Byzantine structure and that core quorums
        // survive crashes: every set of n - c parties must still contain a
        // strong set.
        if !self.byzantine.satisfies_q3() {
            return false;
        }
        if let Some(t) = self.byzantine.threshold_t() {
            return self.n() > 3 * t + 2 * self.max_crashes;
        }
        // General case: for every maximal Byzantine set S and every crash
        // choice, P ∖ (S ∪ C) must remain qualified. Checking all crash
        // sets is exponential; we check the adversary's best strategy of
        // crashing parties *outside* S. A conservative sweep over maximal
        // sets: remove the crash budget from the smallest classes first is
        // heuristic, so instead require that removing ANY max_crashes
        // parties from P ∖ S leaves a qualified set; equivalently the
        // complement of S stays qualified even at its weakest point. We
        // verify by brute force when n is small.
        let n = self.n();
        if n > 20 {
            return false; // refuse to certify what we cannot check
        }
        let maximal = self.byzantine.maximal_adversary_sets();
        for s in &maximal {
            let rest: Vec<usize> = s.complement(n).iter().collect();
            if !subsets_up_to(&rest, self.max_crashes).into_iter().all(|c| {
                let survivors = s.complement(n).difference(&c);
                self.byzantine.is_qualified(&survivors)
            }) {
                return false;
            }
        }
        true
    }
}

/// All subsets of `items` of size at most `k`.
fn subsets_up_to(items: &[usize], k: usize) -> Vec<PartySet> {
    let mut out = vec![PartySet::EMPTY];
    for size in 1..=k.min(items.len()) {
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, vec![])];
        while let Some((start, current)) = stack.pop() {
            if current.len() == size {
                out.push(current.iter().copied().collect());
                continue;
            }
            for (offset, &item) in items.iter().enumerate().skip(start) {
                let mut next = current.clone();
                next.push(item);
                stack.push((offset + 1, next));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::example1;

    #[test]
    fn threshold_resilience_condition() {
        assert!(HybridStructure::threshold(6, 1, 1).is_ok());
        assert!(HybridStructure::threshold(5, 1, 1).is_err());
        assert!(HybridStructure::threshold(4, 1, 0).is_ok());
        assert!(HybridStructure::threshold(3, 0, 1).is_ok());
        assert!(HybridStructure::threshold(2, 0, 1).is_err());
    }

    #[test]
    fn toleration_checks_disjointness() {
        let h = HybridStructure::threshold(6, 1, 1).unwrap();
        let b: PartySet = [0].into_iter().collect();
        assert!(!h.is_tolerated(&b, &b), "overlapping sets rejected");
        assert!(h.is_tolerated(&b, &PartySet::EMPTY));
        assert!(h.is_tolerated(&PartySet::EMPTY, &[3].into_iter().collect()));
    }

    #[test]
    fn crash_budget_enforced() {
        let h = HybridStructure::threshold(8, 1, 1).unwrap();
        let crashes: PartySet = [4, 5].into_iter().collect();
        assert!(!h.is_tolerated(&PartySet::EMPTY, &crashes));
    }

    #[test]
    fn hybrid_q3_threshold() {
        assert!(HybridStructure::threshold(6, 1, 1)
            .unwrap()
            .satisfies_hybrid_q3());
        let h = HybridStructure::general(TrustStructure::threshold(6, 1).unwrap(), 2);
        assert!(!h.satisfies_hybrid_q3(), "6 <= 3+4");
    }

    #[test]
    fn hybrid_q3_general_structure() {
        // Example 1 with no crash budget certifies; with 2 extra crashes
        // the survivors of corrupting class a (parties 0-3) plus two
        // crashes can drop to 3 parties of 2 classes — still qualified —
        // but crashing 2 of {4,5,6,7,8} after corrupting a pair may leave
        // an unqualified survivor set; brute force decides.
        let h0 = HybridStructure::general(example1().unwrap(), 0);
        assert!(h0.satisfies_hybrid_q3());
        let h3 = HybridStructure::general(example1().unwrap(), 3);
        assert!(!h3.satisfies_hybrid_q3());
    }

    #[test]
    fn subsets_up_to_counts() {
        let items = [1, 2, 3, 4];
        assert_eq!(subsets_up_to(&items, 0).len(), 1);
        assert_eq!(subsets_up_to(&items, 1).len(), 5);
        assert_eq!(subsets_up_to(&items, 2).len(), 11);
    }
}
