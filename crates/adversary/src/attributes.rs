//! Attribute classification of servers and the paper's worked examples.
//!
//! §4.3 differentiates servers by attributes (operating system, physical
//! location, administrative domain, …) and derives adversary structures
//! in which *all servers sharing an attribute value may be corrupted
//! simultaneously*. This module provides the classification plumbing and
//! faithful constructions of the paper's two examples:
//!
//! * [`example1`] — nine servers, one attribute with classes
//!   `a,b,c,d` of sizes 4/2/2/1; tolerate any two servers or any whole
//!   class.
//! * [`example2`] — sixteen servers on a 4×4 grid of locations ×
//!   operating systems; tolerate one whole location and one whole
//!   operating system simultaneously (up to seven servers).

use crate::formula::{Gate, MonotoneFormula};
use crate::party::{PartyId, PartySet};
use crate::structure::{StructureError, TrustStructure};
use serde::{Deserialize, Serialize};

/// Assignment of an attribute value (class index) to every party.
///
/// # Examples
///
/// ```
/// use sintra_adversary::attributes::Classification;
///
/// let os = Classification::new("os", vec![0, 0, 1, 1, 2, 2, 3, 3]).unwrap();
/// assert_eq!(os.num_classes(), 4);
/// assert_eq!(os.members(1).len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    name: String,
    class_of: Vec<usize>,
    num_classes: usize,
}

impl Classification {
    /// Creates a classification from a per-party class index vector.
    /// Class indices must be contiguous starting at zero (every class in
    /// `0..=max` must be nonempty).
    ///
    /// # Errors
    ///
    /// Returns `None` if `class_of` is empty or a class index is unused.
    pub fn new(name: &str, class_of: Vec<usize>) -> Option<Self> {
        if class_of.is_empty() {
            return None;
        }
        let num_classes = class_of.iter().max().unwrap() + 1;
        for c in 0..num_classes {
            if !class_of.contains(&c) {
                return None;
            }
        }
        Some(Classification {
            name: name.to_owned(),
            class_of,
            num_classes,
        })
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parties classified.
    pub fn n(&self) -> usize {
        self.class_of.len()
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The class of a party.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn class_of(&self, p: PartyId) -> usize {
        self.class_of[p]
    }

    /// All parties belonging to class `c`.
    pub fn members(&self, c: usize) -> PartySet {
        self.class_of
            .iter()
            .enumerate()
            .filter(|(_, cls)| **cls == c)
            .map(|(p, _)| p)
            .collect()
    }

    /// The characteristic OR-gate `χ_c` of a class: true iff the evaluated
    /// set contains some member of class `c`.
    pub fn chi(&self, c: usize) -> Gate {
        Gate::or(self.members(c).iter().map(Gate::leaf).collect())
    }

    /// Number of distinct classes represented in `set`.
    pub fn classes_covered(&self, set: &PartySet) -> usize {
        (0..self.num_classes)
            .filter(|&c| !self.members(c).intersection(set).is_empty())
            .count()
    }
}

/// Builds the access structure of the paper's **Example 1**:
/// nine servers with `class(1..4)=a`, `class(5,6)=b`, `class(7,8)=c`,
/// `class(9)=d` (0-based here: parties 0-3 are `a`, 4-5 `b`, 6-7 `c`,
/// 8 `d`).
///
/// Qualified sets are coalitions of size ≥ 3 covering ≥ 2 classes:
/// `ḡ(S) = Θ³₉(S) ∧ Θ²₄(χ_a, χ_b, χ_c, χ_d)`; the adversary may corrupt
/// at most two arbitrary servers or all servers of one class.
pub fn example1() -> Result<TrustStructure, StructureError> {
    let class = example1_classification();
    let n = class.n();
    let theta_3_9 = Gate::threshold(3, (0..n).map(Gate::leaf).collect());
    let theta_2_4 = Gate::threshold(2, (0..class.num_classes()).map(|c| class.chi(c)).collect());
    let access = MonotoneFormula::new(n, Gate::and(vec![theta_3_9, theta_2_4]))?;
    TrustStructure::general_from_access(access)
}

/// The classification underlying [`example1`].
pub fn example1_classification() -> Classification {
    Classification::new("class", vec![0, 0, 0, 0, 1, 1, 2, 2, 3])
        .expect("example 1 classification is well-formed")
}

/// Builds the access structure of the paper's **Example 2**: sixteen
/// servers indexed by (location, operating system) on a 4×4 grid; party
/// id = `4 * location + os`.
///
/// The adversary structure `A*` is the sixteen unions
/// `location_l ∪ os_o` (the adversary may take out one whole location
/// *and* one whole operating system simultaneously — 7 of 16 servers —
/// while any threshold structure on 16 servers tolerates at most 5).
///
/// The secret sharing access structure is the paper's two-level grid
/// scheme: `ḡ(S) = Θ²₄(x_a, x_b, x_c, x_d) ∧ Θ²₄(y_α, y_β, y_γ, y_δ)`
/// where `x_v` requires two servers at location `v` and `y_ν` two servers
/// with OS `ν`. Note that the adversary structure is *not* the exact
/// complement of this access structure: some sets (e.g. a full location
/// plus one server at each other location) are unqualified for sharing
/// yet not assumed corruptible — the required secrecy and liveness
/// inclusions hold, which is what [`TrustStructure::general`] validates.
pub fn example2() -> Result<TrustStructure, StructureError> {
    let n = 16;
    let loc = example2_locations();
    let os = example2_operating_systems();
    let mut corruptible = Vec::new();
    for l in 0..4 {
        for o in 0..4 {
            corruptible.push(loc.members(l).union(&os.members(o)));
        }
    }
    let party = |l: usize, o: usize| -> PartyId { 4 * l + o };
    let x = |l: usize| -> Gate {
        Gate::threshold(2, (0..4).map(|o| Gate::leaf(party(l, o))).collect())
    };
    let y = |o: usize| -> Gate {
        Gate::threshold(2, (0..4).map(|l| Gate::leaf(party(l, o))).collect())
    };
    let sharing = MonotoneFormula::new(
        n,
        Gate::and(vec![
            Gate::threshold(2, (0..4).map(x).collect()),
            Gate::threshold(2, (0..4).map(y).collect()),
        ]),
    )?;
    TrustStructure::general(corruptible, sharing)
}

/// Location classification for [`example2`] (class = party / 4).
pub fn example2_locations() -> Classification {
    Classification::new("location", (0..16).map(|p| p / 4).collect())
        .expect("example 2 locations are well-formed")
}

/// Operating-system classification for [`example2`] (class = party % 4).
pub fn example2_operating_systems() -> Classification {
    Classification::new("os", (0..16).map(|p| p % 4).collect())
        .expect("example 2 OS classes are well-formed")
}

/// Builds a single-attribute structure generalizing Example 1 to any
/// classification: qualified = size ≥ `min_size` AND covering ≥
/// `min_classes` classes.
pub fn attribute_structure(
    class: &Classification,
    min_size: usize,
    min_classes: usize,
) -> Result<TrustStructure, StructureError> {
    let n = class.n();
    let size_gate = Gate::threshold(min_size, (0..n).map(Gate::leaf).collect());
    let class_gate = Gate::threshold(
        min_classes,
        (0..class.num_classes()).map(|c| class.chi(c)).collect(),
    );
    let access = MonotoneFormula::new(n, Gate::and(vec![size_gate, class_gate]))?;
    TrustStructure::general_from_access(access)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(parties: &[usize]) -> PartySet {
        parties.iter().copied().collect()
    }

    #[test]
    fn classification_validation() {
        assert!(Classification::new("x", vec![]).is_none());
        assert!(
            Classification::new("x", vec![0, 2]).is_none(),
            "gap in classes"
        );
        let c = Classification::new("x", vec![0, 1, 1, 0]).unwrap();
        assert_eq!(c.num_classes(), 2);
        assert_eq!(c.members(0), set(&[0, 3]));
        assert_eq!(c.class_of(2), 1);
        assert_eq!(c.classes_covered(&set(&[0, 1])), 2);
        assert_eq!(c.classes_covered(&set(&[1, 2])), 1);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn example1_satisfies_q3() {
        let ts = example1().unwrap();
        assert_eq!(ts.n(), 9);
        assert!(ts.satisfies_q3(), "paper: A1 satisfies the Q3 condition");
    }

    #[test]
    fn example1_maximal_sets_match_paper() {
        // Paper: A1* consists of {1..4} and all pairs of servers that are
        // not both of class a.
        let ts = example1().unwrap();
        let maximal = ts.maximal_adversary_sets();
        let class_a = set(&[0, 1, 2, 3]);
        assert!(maximal.contains(&class_a));
        let pairs: Vec<_> = maximal.iter().filter(|s| s.len() == 2).collect();
        // All pairs not both in class a: C(9,2) - C(4,2) = 36 - 6 = 30.
        assert_eq!(pairs.len(), 30);
        assert!(pairs.iter().all(|p| !p.is_subset_of(&class_a)));
        assert_eq!(maximal.len(), 31);
    }

    #[test]
    fn example1_tolerates_whole_classes() {
        let ts = example1().unwrap();
        let class = example1_classification();
        for c in 0..class.num_classes() {
            assert!(
                ts.is_corruptible(&class.members(c)),
                "class {c} must be corruptible"
            );
        }
        // Any two arbitrary servers are corruptible.
        assert!(ts.is_corruptible(&set(&[4, 8])));
        // But three servers spanning two classes are not.
        assert!(!ts.is_corruptible(&set(&[0, 4, 6])));
    }

    #[test]
    fn example1_access_semantics() {
        let ts = example1().unwrap();
        // Qualified: size >= 3 covering >= 2 classes.
        assert!(ts.is_qualified(&set(&[0, 1, 4])));
        assert!(!ts.is_qualified(&set(&[0, 1, 2])), "one class only");
        assert!(!ts.is_qualified(&set(&[0, 4])), "too small");
    }

    #[test]
    fn example2_satisfies_q3() {
        let ts = example2().unwrap();
        assert_eq!(ts.n(), 16);
        assert!(ts.satisfies_q3(), "paper: Example 2 satisfies Q3");
    }

    #[test]
    fn example2_tolerates_location_plus_os() {
        let ts = example2().unwrap();
        let loc = example2_locations();
        let os = example2_operating_systems();
        // Corrupting all of location 0 and all of OS 2 simultaneously
        // (7 servers) is tolerated.
        let corrupted = loc.members(0).union(&os.members(2));
        assert_eq!(corrupted.len(), 7);
        assert!(ts.is_corruptible(&corrupted));
        // The remaining 9 honest servers are qualified (liveness).
        assert!(ts.is_qualified(&corrupted.complement(16)));
    }

    #[test]
    fn example2_maximal_sets_are_location_os_unions() {
        let ts = example2().unwrap();
        let loc = example2_locations();
        let os = example2_operating_systems();
        let maximal = ts.maximal_adversary_sets();
        for l in 0..4 {
            for o in 0..4 {
                let u = loc.members(l).union(&os.members(o));
                assert!(
                    maximal.contains(&u),
                    "location {l} ∪ OS {o} must be maximal"
                );
            }
        }
        assert_eq!(maximal.len(), 16, "exactly the 16 location×OS unions");
    }

    #[test]
    fn example2_beats_any_threshold() {
        // Paper: all threshold solutions tolerate at most 5 of 16; the
        // generalized structure tolerates up to 7.
        let ts = example2().unwrap();
        assert_eq!(ts.max_corruptible_size(), 7);
        // Threshold t=5 satisfies Q3 on 16 servers; t=6 can't: 16 <= 18.
        assert!(TrustStructure::threshold(16, 5).unwrap().satisfies_q3());
        assert!(!TrustStructure::threshold(16, 6).unwrap().satisfies_q3());
    }

    #[test]
    fn example2_random_subsets_of_corruptible_are_corruptible() {
        // Monotonicity: subsets of a maximal set are corruptible.
        let ts = example2().unwrap();
        let loc = example2_locations();
        let os = example2_operating_systems();
        let max = loc.members(1).union(&os.members(3));
        let sub: PartySet = max.iter().step_by(2).collect();
        assert!(ts.is_corruptible(&sub));
    }

    #[test]
    fn attribute_structure_reduces_to_threshold_with_four_singletons() {
        // Paper §4.3: with n = 4 (one server per class) this reduces to
        // the threshold case.
        let class = Classification::new("c", vec![0, 1, 2, 3]).unwrap();
        let ts = attribute_structure(&class, 2, 2).unwrap();
        let threshold = TrustStructure::threshold(4, 1).unwrap();
        for bits in 0u64..16 {
            let s: PartySet = (0..4).filter(|p| (bits >> p) & 1 == 1).collect();
            assert_eq!(ts.is_corruptible(&s), threshold.is_corruptible(&s), "{s:?}");
        }
    }

    #[test]
    fn example1_paper_rule_vs_semantic_strong_predicate() {
        // The literal §4.2 rule ("take S∪T∪{i} for disjoint S,T ∈ A*")
        // fires on Example 1 but does NOT always imply the semantic
        // two-cover-free predicate the protocol proofs need: e.g.
        // {0,1,4,5,2} satisfies the rule via S={0,4}, T={1,5}, i=2, yet is
        // covered by {0,1,2,3} ∪ {4,5} ∈ A × A. Conversely the semantic
        // predicate always implies safety. We record both facts; the
        // protocols use `is_strong` (semantic).
        let ts = example1().unwrap();
        let witness: PartySet = [0, 1, 2, 4, 5].into_iter().collect();
        assert!(ts.paper_strong_rule(&witness));
        assert!(
            !ts.is_strong(&witness),
            "witness is coverable by two corruptible sets"
        );
        // The semantic predicate holds for honest survivor sets of every
        // maximal corruption (which is what liveness needs).
        for m in ts.maximal_adversary_sets() {
            assert!(ts.is_strong(&m.complement(9)));
        }
        // And semantic-strong implies the robustness property directly.
        let strong: PartySet = [0, 4, 6, 8, 1].into_iter().collect();
        assert!(ts.is_strong(&strong));
        for m in ts.maximal_adversary_sets() {
            assert!(ts.is_qualified(&strong.difference(&m)));
        }
    }

    #[test]
    fn example2_paper_strong_rule_is_vacuous_but_semantics_work() {
        // Example 2's maximal sets pairwise intersect, so the literal
        // S∪T∪{i} rule never fires — yet honest survivor sets are strong
        // under the semantic (two-cover-free) predicate. This is the
        // reason protocols use `is_strong` rather than the literal rule.
        let ts = example2().unwrap();
        let maximal = ts.maximal_adversary_sets();
        for a in &maximal {
            for b in &maximal {
                if a != b {
                    assert!(!a.is_disjoint(b), "all maximal pairs intersect");
                }
            }
        }
        assert!(!ts.paper_strong_rule(&PartySet::full(16)));
        // Every honest survivor set (complement of a maximal set) is
        // strong, as Q3 requires.
        for m in &maximal {
            assert!(ts.is_strong(&m.complement(16)));
        }
    }
}
