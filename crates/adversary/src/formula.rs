//! Monotone Boolean formulas over threshold gates.
//!
//! §4.2 of the paper represents an adversary structure by a Boolean
//! function `g` on subsets of `P`, built from `n`-ary threshold gates
//! `Θ_k^n` (with AND = `Θ_n^n` and OR = `Θ_1^n` as special cases). This
//! module provides that formula language. The same formula drives
//!
//! * structure membership tests ([`MonotoneFormula::eval`]),
//! * the Benaloh-Leichter linear secret sharing construction in
//!   `sintra-crypto` (which walks the gate tree), and
//! * the dual transformation between access and adversary views.

use crate::party::{PartyId, PartySet};
use serde::{Deserialize, Serialize};

/// A node of a monotone formula: either a party leaf or a threshold gate
/// `Θ_k^m` over `m` child formulas.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// True iff the party is in the evaluated set. A party may appear in
    /// any number of leaves.
    Leaf(PartyId),
    /// True iff at least `k` of the children are true.
    Threshold {
        /// How many children must be satisfied.
        k: usize,
        /// Child formulas.
        children: Vec<Gate>,
    },
}

impl Gate {
    /// Leaf constructor.
    pub fn leaf(p: PartyId) -> Gate {
        Gate::Leaf(p)
    }

    /// `Θ_k^m` constructor.
    pub fn threshold(k: usize, children: Vec<Gate>) -> Gate {
        Gate::Threshold { k, children }
    }

    /// AND gate (`Θ_m^m`).
    pub fn and(children: Vec<Gate>) -> Gate {
        let k = children.len();
        Gate::Threshold { k, children }
    }

    /// OR gate (`Θ_1^m`).
    pub fn or(children: Vec<Gate>) -> Gate {
        Gate::Threshold { k: 1, children }
    }

    /// Evaluates the formula on a party set.
    pub fn eval(&self, set: &PartySet) -> bool {
        match self {
            Gate::Leaf(p) => set.contains(*p),
            Gate::Threshold { k, children } => {
                let mut satisfied = 0;
                for (remaining, child) in children
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (children.len() - i, c))
                {
                    if satisfied + remaining < *k {
                        return false; // cannot reach k any more
                    }
                    if child.eval(set) {
                        satisfied += 1;
                        if satisfied >= *k {
                            return true;
                        }
                    }
                }
                satisfied >= *k
            }
        }
    }

    /// The dual formula: `g*(S) = ¬g(P∖S)`. For threshold gates,
    /// `Θ_k^m` dualizes to `Θ_{m-k+1}^m`; leaves are self-dual.
    pub fn dual(&self) -> Gate {
        match self {
            Gate::Leaf(p) => Gate::Leaf(*p),
            Gate::Threshold { k, children } => Gate::Threshold {
                k: children.len() - k + 1,
                children: children.iter().map(Gate::dual).collect(),
            },
        }
    }

    /// Collects all leaf party ids (with multiplicity, in traversal order).
    pub fn leaf_parties(&self) -> Vec<PartyId> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<PartyId>) {
        match self {
            Gate::Leaf(p) => out.push(*p),
            Gate::Threshold { children, .. } => {
                for c in children {
                    c.collect_leaves(out);
                }
            }
        }
    }

    /// Structural validity: every gate satisfies `1 <= k <= m` with at
    /// least one child, and every leaf is `< n`.
    fn validate(&self, n: usize) -> Result<(), FormulaError> {
        match self {
            Gate::Leaf(p) => {
                if *p >= n {
                    Err(FormulaError::LeafOutOfRange { party: *p, n })
                } else {
                    Ok(())
                }
            }
            Gate::Threshold { k, children } => {
                if children.is_empty() {
                    return Err(FormulaError::EmptyGate);
                }
                if *k == 0 || *k > children.len() {
                    return Err(FormulaError::BadThreshold {
                        k: *k,
                        arity: children.len(),
                    });
                }
                for c in children {
                    c.validate(n)?;
                }
                Ok(())
            }
        }
    }
}

/// Errors from formula validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormulaError {
    /// A leaf references a party `>= n`.
    LeafOutOfRange {
        /// The offending party id.
        party: PartyId,
        /// The declared party count.
        n: usize,
    },
    /// A gate has no children.
    EmptyGate,
    /// A gate threshold is zero or exceeds the gate arity.
    BadThreshold {
        /// The declared threshold.
        k: usize,
        /// The gate arity.
        arity: usize,
    },
}

impl core::fmt::Display for FormulaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FormulaError::LeafOutOfRange { party, n } => {
                write!(f, "leaf party {party} out of range for n={n}")
            }
            FormulaError::EmptyGate => write!(f, "threshold gate has no children"),
            FormulaError::BadThreshold { k, arity } => {
                write!(f, "threshold {k} invalid for gate arity {arity}")
            }
        }
    }
}

impl std::error::Error for FormulaError {}

/// A validated monotone formula over `n` parties.
///
/// # Examples
///
/// ```
/// use sintra_adversary::formula::{Gate, MonotoneFormula};
/// use sintra_adversary::party::PartySet;
///
/// // 2-out-of-3 majority over parties 0, 1, 2.
/// let f = MonotoneFormula::new(
///     3,
///     Gate::threshold(2, vec![Gate::leaf(0), Gate::leaf(1), Gate::leaf(2)]),
/// ).unwrap();
/// let s: PartySet = [0, 2].into_iter().collect();
/// assert!(f.eval(&s));
/// assert!(!f.eval(&PartySet::singleton(1)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonotoneFormula {
    n: usize,
    root: Gate,
}

impl MonotoneFormula {
    /// Validates and wraps a formula over `n` parties.
    ///
    /// # Errors
    ///
    /// Returns a [`FormulaError`] if any gate is malformed or a leaf is out
    /// of range.
    pub fn new(n: usize, root: Gate) -> Result<Self, FormulaError> {
        root.validate(n)?;
        Ok(MonotoneFormula { n, root })
    }

    /// The classical `k`-out-of-`n` threshold access formula (all parties
    /// as leaves of one gate).
    pub fn threshold(n: usize, k: usize) -> Result<Self, FormulaError> {
        Self::new(n, Gate::threshold(k, (0..n).map(Gate::leaf).collect()))
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Root gate accessor.
    pub fn root(&self) -> &Gate {
        &self.root
    }

    /// Evaluates the formula on a set.
    pub fn eval(&self, set: &PartySet) -> bool {
        self.root.eval(set)
    }

    /// Returns the dual formula (`g*(S) = ¬g(P∖S)`).
    pub fn dual(&self) -> MonotoneFormula {
        MonotoneFormula {
            n: self.n,
            root: self.root.dual(),
        }
    }

    /// Total number of leaves (share components in the induced LSSS).
    pub fn leaf_count(&self) -> usize {
        self.root.leaf_parties().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(parties: &[PartyId]) -> PartySet {
        parties.iter().copied().collect()
    }

    #[test]
    fn and_or_eval() {
        let f = MonotoneFormula::new(
            3,
            Gate::and(vec![
                Gate::leaf(0),
                Gate::or(vec![Gate::leaf(1), Gate::leaf(2)]),
            ]),
        )
        .unwrap();
        assert!(f.eval(&set(&[0, 1])));
        assert!(f.eval(&set(&[0, 2])));
        assert!(!f.eval(&set(&[0])));
        assert!(!f.eval(&set(&[1, 2])));
    }

    #[test]
    fn threshold_eval() {
        let f = MonotoneFormula::threshold(5, 3).unwrap();
        assert!(f.eval(&set(&[0, 1, 2])));
        assert!(f.eval(&set(&[0, 1, 2, 3, 4])));
        assert!(!f.eval(&set(&[0, 1])));
        assert!(!f.eval(&PartySet::EMPTY));
    }

    #[test]
    fn monotonicity_spot_check() {
        let f = MonotoneFormula::new(
            4,
            Gate::threshold(
                2,
                vec![
                    Gate::and(vec![Gate::leaf(0), Gate::leaf(1)]),
                    Gate::leaf(2),
                    Gate::leaf(3),
                ],
            ),
        )
        .unwrap();
        // For every set S and superset T, f(S) implies f(T).
        for bits in 0u32..16 {
            let s: PartySet = (0..4).filter(|p| (bits >> p) & 1 == 1).collect();
            if f.eval(&s) {
                for extra in 0..4 {
                    let mut t = s;
                    t.insert(extra);
                    assert!(f.eval(&t), "monotonicity violated at {s:?} + {extra}");
                }
            }
        }
    }

    #[test]
    fn dual_of_threshold() {
        // Dual of 2-out-of-3 is 2-out-of-3 (self-dual); dual of 1-out-of-3
        // (OR) is 3-out-of-3 (AND).
        let f = MonotoneFormula::threshold(3, 1).unwrap();
        let d = f.dual();
        for bits in 0u32..8 {
            let s: PartySet = (0..3).filter(|p| (bits >> p) & 1 == 1).collect();
            let expected = !f.eval(&s.complement(3));
            assert_eq!(d.eval(&s), expected, "dual mismatch at {s:?}");
        }
    }

    #[test]
    fn dual_is_involution() {
        let f = MonotoneFormula::new(
            4,
            Gate::threshold(
                2,
                vec![
                    Gate::and(vec![Gate::leaf(0), Gate::leaf(1)]),
                    Gate::or(vec![Gate::leaf(2), Gate::leaf(3)]),
                    Gate::leaf(0),
                ],
            ),
        )
        .unwrap();
        assert_eq!(f.dual().dual(), f);
    }

    #[test]
    fn dual_semantics_general() {
        let f = MonotoneFormula::new(
            5,
            Gate::threshold(
                2,
                vec![
                    Gate::and(vec![Gate::leaf(0), Gate::leaf(1)]),
                    Gate::or(vec![Gate::leaf(2), Gate::leaf(3)]),
                    Gate::leaf(4),
                ],
            ),
        )
        .unwrap();
        let d = f.dual();
        for bits in 0u32..32 {
            let s: PartySet = (0..5).filter(|p| (bits >> p) & 1 == 1).collect();
            assert_eq!(d.eval(&s), !f.eval(&s.complement(5)));
        }
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            MonotoneFormula::new(2, Gate::leaf(2)).unwrap_err(),
            FormulaError::LeafOutOfRange { party: 2, n: 2 }
        );
        assert_eq!(
            MonotoneFormula::new(2, Gate::threshold(1, vec![])).unwrap_err(),
            FormulaError::EmptyGate
        );
        assert_eq!(
            MonotoneFormula::new(2, Gate::threshold(3, vec![Gate::leaf(0), Gate::leaf(1)]))
                .unwrap_err(),
            FormulaError::BadThreshold { k: 3, arity: 2 }
        );
        assert_eq!(
            MonotoneFormula::new(2, Gate::threshold(0, vec![Gate::leaf(0)])).unwrap_err(),
            FormulaError::BadThreshold { k: 0, arity: 1 }
        );
    }

    #[test]
    fn leaf_count_with_repeats() {
        let f = MonotoneFormula::new(
            2,
            Gate::or(vec![
                Gate::leaf(0),
                Gate::and(vec![Gate::leaf(0), Gate::leaf(1)]),
            ]),
        )
        .unwrap();
        assert_eq!(f.leaf_count(), 3);
    }

    #[test]
    fn error_display() {
        let e = FormulaError::BadThreshold { k: 5, arity: 2 };
        assert!(format!("{e}").contains("threshold 5"));
    }
}
