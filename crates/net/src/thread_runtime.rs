//! Real-thread runtime: the same protocol automata under true
//! concurrency.
//!
//! The deterministic simulator exercises protocols under *chosen*
//! schedules; this runtime complements it by running every replica on
//! its own OS thread with messages routed through crossbeam channels and
//! randomized delivery jitter, so integration tests also see genuine
//! interleaving nondeterminism. The protocols are time-free automata, so
//! no code changes between the two runtimes — that is the point of the
//! asynchronous design (§2.2).

use crate::protocol::{Context, Effects, Protocol};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sintra_adversary::party::PartyId;
use sintra_crypto::rng::SeededRng;
use sintra_obs::{Layer, MetricsSnapshot, Obs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Route<M> {
    from: PartyId,
    to: PartyId,
    msg: M,
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadRunReport<O> {
    /// Outputs per party, in local delivery order.
    pub outputs: Vec<Vec<O>>,
    /// Total messages routed.
    pub delivered: u64,
    /// Messages addressed outside `0..n` and therefore not routable.
    /// Nonzero means a protocol bug (or an injected fault) is emitting
    /// bogus destinations — it used to be silent.
    pub dropped: u64,
    /// Whether the stop predicate was satisfied (vs. timeout).
    pub completed: bool,
    /// Per-party metrics snapshots — empty unless the run was started
    /// with [`run_threaded_observed`]. Wall-clock handling latencies
    /// land in the `net.handle_ns` histogram.
    pub metrics: Vec<MetricsSnapshot>,
}

/// How often each node thread fires `on_tick` while idle or between
/// messages. Tick-driven logic (fdabc suspect timers, optimistic
/// fallback timeouts, ABC lookahead) counts ticks, not wall time, so
/// the exact period only scales those protocols' timeouts.
const TICK_EVERY: Duration = Duration::from_millis(5);

/// Runs `nodes` under true concurrency until `stop` holds over the
/// output vectors or `timeout` elapses.
///
/// `inputs` are injected at the named parties as the threads start. The
/// router shuffles delivery order with the seeded RNG; combined with OS
/// scheduling this yields realistic asynchrony. Returns the outputs of
/// every party.
pub fn run_threaded<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool + Send + Sync + 'static,
    timeout: Duration,
    seed: u64,
) -> ThreadRunReport<P::Output>
where
    P: Protocol + Send + 'static,
    P::Message: 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    run_threaded_observed(nodes, inputs, stop, timeout, seed, None)
}

/// [`run_threaded`] with per-node instrumentation: when
/// `recorder_capacity` is `Some`, every node thread gets an enabled
/// [`Obs`] whose metrics include wall-clock message-handling latency
/// (`net.handle_ns`, log₂-bucketed nanoseconds) and per-direction
/// message counters; the snapshots are taken after the node threads are
/// joined, honoring the flight-recorder single-writer contract.
pub fn run_threaded_observed<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool + Send + Sync + 'static,
    timeout: Duration,
    seed: u64,
    recorder_capacity: Option<usize>,
) -> ThreadRunReport<P::Output>
where
    P: Protocol + Send + 'static,
    P::Message: 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    let n = nodes.len();
    let obs: Vec<Obs> = match recorder_capacity {
        Some(cap) => (0..n).map(|_| Obs::enabled(cap)).collect(),
        None => vec![Obs::disabled(); n],
    };
    let (router_tx, router_rx) = unbounded::<Route<P::Message>>();
    let outputs: Arc<Mutex<Vec<Vec<P::Output>>>> =
        Arc::new(Mutex::new((0..n).map(|_| Vec::new()).collect()));
    let delivered = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    // Per-node inboxes.
    let mut inboxes_tx: Vec<Sender<(PartyId, P::Message)>> = Vec::with_capacity(n);
    let mut inboxes_rx: Vec<Receiver<(PartyId, P::Message)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        inboxes_tx.push(tx);
        inboxes_rx.push(rx);
    }
    // Per-node input channels.
    let mut input_tx: Vec<Sender<P::Input>> = Vec::with_capacity(n);
    let mut input_rx: Vec<Receiver<P::Input>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        input_tx.push(tx);
        input_rx.push(rx);
    }

    // Node threads.
    let mut handles = Vec::with_capacity(n);
    for (party, mut node) in nodes.into_iter().enumerate() {
        let my_rx = inboxes_rx[party].clone();
        let my_inputs = input_rx[party].clone();
        let to_router = router_tx.clone();
        let outputs = Arc::clone(&outputs);
        let done = Arc::clone(&done);
        let my_obs = obs[party].clone();
        handles.push(std::thread::spawn(move || {
            let started = Instant::now();
            let mut fx: Effects<P::Message, P::Output> = Effects::for_parties(n);
            let mut last_tick = Instant::now();
            loop {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                // Drain pending inputs first, then one message.
                let mut worked = false;
                let ctx = Context {
                    me: party,
                    n,
                    at: started.elapsed().as_nanos() as u64,
                    obs: my_obs.clone(),
                };
                while let Ok(input) = my_inputs.try_recv() {
                    node.on_input_ctx(&ctx, input, &mut fx);
                    worked = true;
                }
                if let Ok((from, msg)) = my_rx.recv_timeout(TICK_EVERY) {
                    let handle_started = Instant::now();
                    node.on_message_ctx(&ctx, from, msg, &mut fx);
                    if my_obs.is_enabled() {
                        my_obs.inc(Layer::Net, "recv");
                        my_obs.observe(
                            Layer::Net,
                            "handle_ns",
                            handle_started.elapsed().as_nanos() as u64,
                        );
                    }
                    worked = true;
                }
                // Fire the periodic tick whether or not messages are
                // flowing — checked every iteration, not only on recv
                // timeout, so a busy node still observes time passing.
                if last_tick.elapsed() >= TICK_EVERY {
                    last_tick = Instant::now();
                    node.on_tick_ctx(&ctx, &mut fx);
                    if my_obs.is_enabled() {
                        my_obs.inc(Layer::Net, "tick");
                    }
                    worked = true;
                }
                if worked {
                    let outs = fx.take_outputs();
                    if !outs.is_empty() {
                        outputs.lock()[party].extend(outs);
                    }
                    for (to, msg) in fx.take_sends() {
                        if my_obs.is_enabled() {
                            my_obs.inc(Layer::Net, "sent");
                        }
                        let _ = to_router.send(Route {
                            from: party,
                            to,
                            msg,
                        });
                    }
                }
            }
        }));
    }
    drop(router_tx);

    // Inject inputs.
    for (party, input) in inputs {
        let _ = input_tx[party].send(input);
    }

    // Router loop with jitter: buffer a few messages and release in
    // random order.
    let mut rng = SeededRng::new(seed);
    let deadline = Instant::now() + timeout;
    let mut buffer: Vec<(PartyId, PartyId, P::Message)> = Vec::new();
    let mut completed = false;
    let mut dropped = 0u64;
    loop {
        if Instant::now() > deadline {
            break;
        }
        // Pull whatever is queued (up to a small batch).
        while buffer.len() < 32 {
            match router_rx.recv_timeout(Duration::from_millis(2)) {
                Ok(Route { from, to, msg }) => buffer.push((from, to, msg)),
                Err(_) => break,
            }
        }
        if !buffer.is_empty() {
            let idx = rng.next_below(buffer.len() as u64) as usize;
            let (from, to, msg) = buffer.swap_remove(idx);
            if to < n {
                delivered.fetch_add(1, Ordering::Relaxed);
                let _ = inboxes_tx[to].send((from, msg));
            } else {
                // An out-of-range destination is a protocol bug (or an
                // injected fault); count it instead of losing it
                // silently. `Obs::inc` only touches the mutex-backed
                // metrics, so charging the sender from the router
                // thread respects the recorder single-writer contract.
                dropped += 1;
                if obs[from].is_enabled() {
                    obs[from].inc(Layer::Net, "dropped_route");
                }
            }
        }
        if stop(&outputs.lock()) {
            completed = true;
            break;
        }
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    // Joined node threads have flushed every send into the router
    // channel; account for undeliverable destinations still in flight
    // so the drop count is exact regardless of when the stop predicate
    // tripped. (Deliverable leftovers are simply undelivered — their
    // recipients are gone.)
    for (from, to, _msg) in buffer.drain(..) {
        if to >= n {
            dropped += 1;
            if obs[from].is_enabled() {
                obs[from].inc(Layer::Net, "dropped_route");
            }
        }
    }
    while let Ok(Route { from, to, .. }) = router_rx.try_recv() {
        if to >= n {
            dropped += 1;
            if obs[from].is_enabled() {
                obs[from].inc(Layer::Net, "dropped_route");
            }
        }
    }
    let outputs = Arc::try_unwrap(outputs)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    ThreadRunReport {
        outputs,
        delivered: delivered.load(Ordering::Relaxed),
        dropped,
        completed,
        metrics: obs.iter().map(|o| o.metrics_snapshot()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Gossip;

    impl Protocol for Gossip {
        type Message = u64;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.broadcast(v);
        }

        fn on_message(&mut self, from: PartyId, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.output((from, v));
        }
    }

    #[test]
    fn threaded_gossip_delivers_everything() {
        let n = 4;
        let nodes: Vec<Gossip> = (0..n).map(|_| Gossip).collect();
        let inputs: Vec<(PartyId, u64)> = (0..n).map(|p| (p, p as u64 * 11)).collect();
        let report = run_threaded(
            nodes,
            inputs,
            move |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| o.len() >= n),
            Duration::from_secs(10),
            1,
        );
        assert!(report.completed, "all parties hear all four broadcasts");
        for o in &report.outputs {
            assert!(o.len() >= n);
        }
        assert!(report.delivered >= (n * (n - 1)) as u64);
    }

    #[test]
    fn observed_run_collects_wall_clock_metrics() {
        let n = 3;
        let nodes: Vec<Gossip> = (0..n).map(|_| Gossip).collect();
        let inputs: Vec<(PartyId, u64)> = (0..n).map(|p| (p, p as u64)).collect();
        let report = run_threaded_observed(
            nodes,
            inputs,
            move |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| o.len() >= n),
            Duration::from_secs(10),
            3,
            Some(256),
        );
        assert!(report.completed);
        assert_eq!(report.metrics.len(), n);
        let mut merged = MetricsSnapshot::default();
        for m in &report.metrics {
            merged.merge(m);
        }
        assert!(merged.counter("net.recv") > 0, "messages were counted");
        assert!(
            merged.hists["net.handle_ns"].count > 0,
            "wall-clock handling latency was observed"
        );
    }

    #[test]
    fn unobserved_run_reports_empty_metrics() {
        let nodes: Vec<Gossip> = (0..2).map(|_| Gossip).collect();
        let report = run_threaded(
            nodes,
            vec![(0, 1u64)],
            |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| !o.is_empty()),
            Duration::from_secs(5),
            4,
        );
        assert!(report.metrics.iter().all(|m| m.is_empty()));
    }

    /// Broadcasts only from `on_tick`: silent until the runtime drives
    /// time forward, like fdabc suspect timers or optimistic fallback
    /// timeouts. Before the tick fix this protocol stalled forever on
    /// threads.
    #[derive(Debug)]
    struct TickBeacon {
        armed: bool,
        fired: bool,
    }

    impl Protocol for TickBeacon {
        type Message = u64;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, _v: u64, _fx: &mut Effects<u64, (PartyId, u64)>) {
            self.armed = true;
        }

        fn on_message(&mut self, from: PartyId, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.output((from, v));
        }

        fn on_tick(&mut self, fx: &mut Effects<u64, (PartyId, u64)>) {
            if self.armed && !self.fired {
                self.fired = true;
                fx.broadcast(99);
            }
        }
    }

    #[test]
    fn tick_dependent_protocol_makes_progress_on_threads() {
        let n = 4;
        let nodes: Vec<TickBeacon> = (0..n)
            .map(|_| TickBeacon {
                armed: false,
                fired: false,
            })
            .collect();
        let report = run_threaded_observed(
            nodes,
            vec![(0, 1u64)],
            move |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| o.iter().any(|&(f, _)| f == 0)),
            Duration::from_secs(10),
            5,
            Some(64),
        );
        assert!(
            report.completed,
            "on_tick must fire under the thread runtime (tick-starvation regression)"
        );
        let mut merged = MetricsSnapshot::default();
        for m in &report.metrics {
            merged.merge(m);
        }
        assert!(merged.counter("net.tick") > 0, "ticks were counted");
    }

    /// Sends every payload to a bogus party id; the router must count
    /// the drops instead of losing them silently.
    #[derive(Debug)]
    struct Misaddresser;

    impl Protocol for Misaddresser {
        type Message = u64;
        type Input = u64;
        type Output = u64;

        fn on_input(&mut self, v: u64, fx: &mut Effects<u64, u64>) {
            fx.send(usize::MAX, v);
            fx.output(v);
        }

        fn on_message(&mut self, _from: PartyId, _v: u64, _fx: &mut Effects<u64, u64>) {}
    }

    #[test]
    fn out_of_range_routes_are_counted_not_silent() {
        let nodes: Vec<Misaddresser> = (0..2).map(|_| Misaddresser).collect();
        let report = run_threaded_observed(
            nodes,
            vec![(0, 7u64), (1, 8u64)],
            |outs: &[Vec<u64>]| outs.iter().all(|o| !o.is_empty()),
            Duration::from_secs(10),
            6,
            Some(64),
        );
        assert!(report.completed);
        // Both misaddressed sends are reported. The router may observe
        // them shortly after the stop predicate trips, so poll-free
        // assertion happens on the final report.
        assert_eq!(report.dropped, 2, "both bogus destinations counted");
        let mut merged = MetricsSnapshot::default();
        for m in &report.metrics {
            merged.merge(m);
        }
        assert_eq!(merged.counter("net.dropped_route"), 2);
    }

    #[test]
    fn timeout_reports_incomplete() {
        // Stop predicate never satisfied; must return by timeout.
        let nodes: Vec<Gossip> = (0..2).map(|_| Gossip).collect();
        let report = run_threaded(
            nodes,
            vec![],
            |_: &[Vec<(PartyId, u64)>]| false,
            Duration::from_millis(200),
            2,
        );
        assert!(!report.completed);
    }
}
