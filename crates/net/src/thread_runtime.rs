//! Real-thread runtime: the same protocol automata under true
//! concurrency.
//!
//! The deterministic simulator exercises protocols under *chosen*
//! schedules; this runtime complements it by running every replica on
//! its own OS thread with messages routed through crossbeam channels and
//! randomized delivery jitter, so integration tests also see genuine
//! interleaving nondeterminism. The protocols are time-free automata, so
//! no code changes between the two runtimes — that is the point of the
//! asynchronous design (§2.2).

use crate::protocol::{Context, Effects, Protocol};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sintra_adversary::party::PartyId;
use sintra_crypto::rng::SeededRng;
use sintra_obs::{Layer, MetricsSnapshot, Obs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Route<M> {
    from: PartyId,
    to: PartyId,
    msg: M,
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadRunReport<O> {
    /// Outputs per party, in local delivery order.
    pub outputs: Vec<Vec<O>>,
    /// Total messages routed.
    pub delivered: u64,
    /// Whether the stop predicate was satisfied (vs. timeout).
    pub completed: bool,
    /// Per-party metrics snapshots — empty unless the run was started
    /// with [`run_threaded_observed`]. Wall-clock handling latencies
    /// land in the `net.handle_ns` histogram.
    pub metrics: Vec<MetricsSnapshot>,
}

/// Runs `nodes` under true concurrency until `stop` holds over the
/// output vectors or `timeout` elapses.
///
/// `inputs` are injected at the named parties as the threads start. The
/// router shuffles delivery order with the seeded RNG; combined with OS
/// scheduling this yields realistic asynchrony. Returns the outputs of
/// every party.
pub fn run_threaded<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool + Send + Sync + 'static,
    timeout: Duration,
    seed: u64,
) -> ThreadRunReport<P::Output>
where
    P: Protocol + Send + 'static,
    P::Message: 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    run_threaded_observed(nodes, inputs, stop, timeout, seed, None)
}

/// [`run_threaded`] with per-node instrumentation: when
/// `recorder_capacity` is `Some`, every node thread gets an enabled
/// [`Obs`] whose metrics include wall-clock message-handling latency
/// (`net.handle_ns`, log₂-bucketed nanoseconds) and per-direction
/// message counters; the snapshots are taken after the node threads are
/// joined, honoring the flight-recorder single-writer contract.
pub fn run_threaded_observed<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool + Send + Sync + 'static,
    timeout: Duration,
    seed: u64,
    recorder_capacity: Option<usize>,
) -> ThreadRunReport<P::Output>
where
    P: Protocol + Send + 'static,
    P::Message: 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    let n = nodes.len();
    let obs: Vec<Obs> = match recorder_capacity {
        Some(cap) => (0..n).map(|_| Obs::enabled(cap)).collect(),
        None => vec![Obs::disabled(); n],
    };
    let (router_tx, router_rx) = unbounded::<Route<P::Message>>();
    let outputs: Arc<Mutex<Vec<Vec<P::Output>>>> =
        Arc::new(Mutex::new((0..n).map(|_| Vec::new()).collect()));
    let delivered = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    // Per-node inboxes.
    let mut inboxes_tx: Vec<Sender<(PartyId, P::Message)>> = Vec::with_capacity(n);
    let mut inboxes_rx: Vec<Receiver<(PartyId, P::Message)>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        inboxes_tx.push(tx);
        inboxes_rx.push(rx);
    }
    // Per-node input channels.
    let mut input_tx: Vec<Sender<P::Input>> = Vec::with_capacity(n);
    let mut input_rx: Vec<Receiver<P::Input>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        input_tx.push(tx);
        input_rx.push(rx);
    }

    // Node threads.
    let mut handles = Vec::with_capacity(n);
    for (party, mut node) in nodes.into_iter().enumerate() {
        let my_rx = inboxes_rx[party].clone();
        let my_inputs = input_rx[party].clone();
        let to_router = router_tx.clone();
        let outputs = Arc::clone(&outputs);
        let done = Arc::clone(&done);
        let my_obs = obs[party].clone();
        handles.push(std::thread::spawn(move || {
            let started = Instant::now();
            let mut fx: Effects<P::Message, P::Output> = Effects::for_parties(n);
            loop {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                // Drain pending inputs first, then one message.
                let mut worked = false;
                let ctx = Context {
                    me: party,
                    n,
                    at: started.elapsed().as_nanos() as u64,
                    obs: my_obs.clone(),
                };
                while let Ok(input) = my_inputs.try_recv() {
                    node.on_input_ctx(&ctx, input, &mut fx);
                    worked = true;
                }
                if let Ok((from, msg)) = my_rx.recv_timeout(Duration::from_millis(5)) {
                    let handle_started = Instant::now();
                    node.on_message_ctx(&ctx, from, msg, &mut fx);
                    if my_obs.is_enabled() {
                        my_obs.inc(Layer::Net, "recv");
                        my_obs.observe(
                            Layer::Net,
                            "handle_ns",
                            handle_started.elapsed().as_nanos() as u64,
                        );
                    }
                    worked = true;
                }
                if worked {
                    let outs = fx.take_outputs();
                    if !outs.is_empty() {
                        outputs.lock()[party].extend(outs);
                    }
                    for (to, msg) in fx.take_sends() {
                        my_obs.inc(Layer::Net, "sent");
                        let _ = to_router.send(Route {
                            from: party,
                            to,
                            msg,
                        });
                    }
                }
            }
        }));
    }
    drop(router_tx);

    // Inject inputs.
    for (party, input) in inputs {
        let _ = input_tx[party].send(input);
    }

    // Router loop with jitter: buffer a few messages and release in
    // random order.
    let mut rng = SeededRng::new(seed);
    let deadline = Instant::now() + timeout;
    let mut buffer: Vec<(PartyId, PartyId, P::Message)> = Vec::new();
    let mut completed = false;
    loop {
        if Instant::now() > deadline {
            break;
        }
        // Pull whatever is queued (up to a small batch).
        while buffer.len() < 32 {
            match router_rx.recv_timeout(Duration::from_millis(2)) {
                Ok(Route { from, to, msg }) => buffer.push((from, to, msg)),
                Err(_) => break,
            }
        }
        if !buffer.is_empty() {
            let idx = rng.next_below(buffer.len() as u64) as usize;
            let (from, to, msg) = buffer.swap_remove(idx);
            if to < n {
                delivered.fetch_add(1, Ordering::Relaxed);
                let _ = inboxes_tx[to].send((from, msg));
            }
        }
        if stop(&outputs.lock()) {
            completed = true;
            break;
        }
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let outputs = Arc::try_unwrap(outputs)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    ThreadRunReport {
        outputs,
        delivered: delivered.load(Ordering::Relaxed),
        completed,
        metrics: obs.iter().map(|o| o.metrics_snapshot()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Gossip;

    impl Protocol for Gossip {
        type Message = u64;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.broadcast(v);
        }

        fn on_message(&mut self, from: PartyId, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.output((from, v));
        }
    }

    #[test]
    fn threaded_gossip_delivers_everything() {
        let n = 4;
        let nodes: Vec<Gossip> = (0..n).map(|_| Gossip).collect();
        let inputs: Vec<(PartyId, u64)> = (0..n).map(|p| (p, p as u64 * 11)).collect();
        let report = run_threaded(
            nodes,
            inputs,
            move |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| o.len() >= n),
            Duration::from_secs(10),
            1,
        );
        assert!(report.completed, "all parties hear all four broadcasts");
        for o in &report.outputs {
            assert!(o.len() >= n);
        }
        assert!(report.delivered >= (n * (n - 1)) as u64);
    }

    #[test]
    fn observed_run_collects_wall_clock_metrics() {
        let n = 3;
        let nodes: Vec<Gossip> = (0..n).map(|_| Gossip).collect();
        let inputs: Vec<(PartyId, u64)> = (0..n).map(|p| (p, p as u64)).collect();
        let report = run_threaded_observed(
            nodes,
            inputs,
            move |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| o.len() >= n),
            Duration::from_secs(10),
            3,
            Some(256),
        );
        assert!(report.completed);
        assert_eq!(report.metrics.len(), n);
        let mut merged = MetricsSnapshot::default();
        for m in &report.metrics {
            merged.merge(m);
        }
        assert!(merged.counter("net.recv") > 0, "messages were counted");
        assert!(
            merged.hists["net.handle_ns"].count > 0,
            "wall-clock handling latency was observed"
        );
    }

    #[test]
    fn unobserved_run_reports_empty_metrics() {
        let nodes: Vec<Gossip> = (0..2).map(|_| Gossip).collect();
        let report = run_threaded(
            nodes,
            vec![(0, 1u64)],
            |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| !o.is_empty()),
            Duration::from_secs(5),
            4,
        );
        assert!(report.metrics.iter().all(|m| m.is_empty()));
    }

    #[test]
    fn timeout_reports_incomplete() {
        // Stop predicate never satisfied; must return by timeout.
        let nodes: Vec<Gossip> = (0..2).map(|_| Gossip).collect();
        let report = run_threaded(
            nodes,
            vec![],
            |_: &[Vec<(PartyId, u64)>]| false,
            Duration::from_millis(200),
            2,
        );
        assert!(!report.completed);
    }
}
