//! Deterministic link-fault injection for the TCP runtime.
//!
//! The simulator's schedulers ([`crate::sim`]) and fault behaviors
//! ([`crate::faults`]) realize the paper's "network is the adversary"
//! model (§2.2) inside one process. This module carries the same
//! vocabulary onto real sockets: a [`ChaosConfig`] attached to a
//! [`TcpNodeConfig`](crate::tcp_runtime::TcpNodeConfig) interposes on
//! every outbound link of that node and — driven by a seeded generator,
//! so a schedule replays from its seed — drops, delays, reorders,
//! throttles, garbles, or resets frames, and cuts scheduled partitions.
//!
//! ## Fault semantics
//!
//! Faults are applied on the *sender* side of each unidirectional link,
//! frame by frame, in queue order; because the per-link generator is
//! consulted once per frame in that order, the fault sequence for a
//! given `(seed, me, peer)` triple is deterministic even though frame
//! *timing* under real threads is not.
//!
//! * **Drop** destroys a frame outright. Like the simulator's
//!   [`LossyScheduler`](crate::sim::LossyScheduler) it is budgeted:
//!   eventual delivery between honest parties is an assumption the
//!   protocols are allowed to make, so an unbounded dropper is not an
//!   admissible adversary for liveness claims.
//! * **Garble** flips one byte of the frame body. The receiver's codec
//!   rejects the frame and kills the connection, so a garble exercises
//!   both the decode hardening and the reconnect path. Budgeted, like
//!   drops (a garbled frame is a lost frame plus a teardown).
//! * **Reset** closes the connection *before* the frame is written; the
//!   frame survives and is retransmitted after redial. Unbudgeted —
//!   resets cost latency, not delivery.
//! * **Delay** sleeps the writer a bounded random interval, modeling a
//!   slow link; **throttle** bounds the link's bytes/ms after every
//!   write. Both reorder nothing by themselves.
//! * **Reorder** holds a frame back and releases it after the next
//!   frame passes — a genuine inversion on the wire, not just jitter.
//! * **Partitions** ([`Partition`]) cut links crossing a group boundary
//!   for a wall-clock window. A cut link *blocks* (frames wait in the
//!   sender's bounded queue) rather than drops, mirroring the
//!   simulator's [`PartitionScheduler`](crate::sim::PartitionScheduler)
//!   whose withheld messages deliver after `heal_at`. Under memory
//!   pressure the bounded queue still drops oldest, so a long partition
//!   degrades gracefully instead of pinning the sender's memory.

use sintra_adversary::party::PartyId;
use sintra_crypto::rng::SeededRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-link fault probabilities and budgets. Probabilities are in
/// per-mille (‰, 0..=1000) so light fault rates stay expressible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkFaults {
    /// Chance ‰ that a frame is destroyed (while budget remains).
    pub drop_per_mille: u32,
    /// Most frames this link may destroy (liveness bound).
    pub drop_budget: u64,
    /// Chance ‰ that one byte of a frame is flipped (while budget
    /// remains).
    pub garble_per_mille: u32,
    /// Most frames this link may garble.
    pub garble_budget: u64,
    /// Chance ‰ that the connection is torn down before a frame (the
    /// frame itself survives and is resent after redial).
    pub reset_per_mille: u32,
    /// Chance ‰ that a frame is delayed.
    pub delay_per_mille: u32,
    /// Delay bounds (inclusive min, exclusive max) in milliseconds.
    pub delay_ms: (u64, u64),
    /// Chance ‰ that a frame is held back past its successor.
    pub reorder_per_mille: u32,
    /// Link rate cap in bytes per millisecond; 0 means uncapped.
    pub throttle_bytes_per_ms: u64,
}

impl LinkFaults {
    /// A fault-free link (the default for links without an override).
    pub fn none() -> LinkFaults {
        LinkFaults {
            drop_per_mille: 0,
            drop_budget: 0,
            garble_per_mille: 0,
            garble_budget: 0,
            reset_per_mille: 0,
            delay_per_mille: 0,
            delay_ms: (0, 1),
            reorder_per_mille: 0,
            throttle_bytes_per_ms: 0,
        }
    }

    /// Whether every fault is off (lets the runtime keep its fast
    /// path — frame coalescing — on clean links).
    pub fn is_none(&self) -> bool {
        *self == LinkFaults::none()
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::none()
    }
}

/// A scheduled split: links crossing the `group` boundary are cut for
/// `[start, end)` measured from the mesh's start instant.
#[derive(Clone, Debug)]
pub struct Partition {
    /// One side of the split (parties not listed form the other side).
    pub group: Vec<PartyId>,
    /// Window start, relative to mesh start.
    pub start: Duration,
    /// Window end, relative to mesh start.
    pub end: Duration,
}

impl Partition {
    /// Whether the `a → b` link crosses this partition's cut.
    pub fn cuts(&self, a: PartyId, b: PartyId) -> bool {
        self.group.contains(&a) != self.group.contains(&b)
    }
}

/// A node's chaos schedule: a seed, a default fault profile, per-link
/// overrides, and scheduled partitions.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Master seed; each link forks a generator from it, so the same
    /// `(seed, me, peer)` always yields the same fault sequence.
    pub seed: u64,
    /// Faults applied to every outbound link without an override.
    pub default: LinkFaults,
    /// Per-link overrides, keyed by `(sender, receiver)`.
    pub links: Vec<((PartyId, PartyId), LinkFaults)>,
    /// Scheduled partitions (any number; windows may overlap).
    pub partitions: Vec<Partition>,
}

impl ChaosConfig {
    /// The fault profile for the `me → peer` link.
    pub fn faults_for(&self, me: PartyId, peer: PartyId) -> LinkFaults {
        self.links
            .iter()
            .find(|((a, b), _)| *a == me && *b == peer)
            .map(|(_, f)| f.clone())
            .unwrap_or_else(|| self.default.clone())
    }
}

/// Counters shared by all of one node's link interposers, folded into
/// the node's metrics at mesh teardown.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Frames destroyed by drop faults.
    pub dropped: AtomicU64,
    /// Frames corrupted by garble faults.
    pub garbled: AtomicU64,
    /// Connections torn down by reset faults.
    pub resets: AtomicU64,
    /// Frames delayed.
    pub delayed: AtomicU64,
    /// Frames released out of order.
    pub reordered: AtomicU64,
}

impl ChaosCounters {
    /// Relaxed reads of all counters: (dropped, garbled, resets,
    /// delayed, reordered).
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.dropped.load(Ordering::Relaxed),
            self.garbled.load(Ordering::Relaxed),
            self.resets.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
            self.reordered.load(Ordering::Relaxed),
        )
    }
}

/// What a writer must do with one queued frame after the interposer
/// rolled its faults: optionally tear the connection down first, sleep
/// `delay`, then write `frames` in order (empty if the frame was
/// dropped or held for reordering).
#[derive(Debug)]
pub struct FramePlan {
    /// Close the current connection (and redial) before writing.
    pub reset_first: bool,
    /// Sleep this long before writing (link latency).
    pub delay: Option<Duration>,
    /// Frames to put on the wire, in order.
    pub frames: Vec<Vec<u8>>,
}

/// The per-link interposer: owns the link's seeded generator, fault
/// budgets, and reorder slot. Owned by one writer thread — decisions
/// are drawn per frame in queue order, which makes the fault sequence
/// a pure function of `(seed, me, peer)`.
#[derive(Debug)]
pub struct LinkChaos {
    faults: LinkFaults,
    partitions: Vec<Partition>,
    me: PartyId,
    peer: PartyId,
    rng: SeededRng,
    drops_left: u64,
    garbles_left: u64,
    held: Option<Vec<u8>>,
    counters: Arc<ChaosCounters>,
}

impl LinkChaos {
    /// Builds the interposer for the `me → peer` link.
    pub fn new(
        cfg: &ChaosConfig,
        me: PartyId,
        peer: PartyId,
        counters: Arc<ChaosCounters>,
    ) -> Self {
        let faults = cfg.faults_for(me, peer);
        let mut master = SeededRng::new(cfg.seed);
        let rng = master.fork(((me as u64) << 32) | peer as u64);
        LinkChaos {
            drops_left: faults.drop_budget,
            garbles_left: faults.garble_budget,
            faults,
            partitions: cfg
                .partitions
                .iter()
                .filter(|p| p.cuts(me, peer))
                .cloned()
                .collect(),
            me,
            peer,
            rng,
            held: None,
            counters,
        }
    }

    /// Whether this link is inside a partition window at `since_start`
    /// (elapsed time since the mesh started). A cut link must not
    /// transmit — frames wait in the sender's bounded queue.
    pub fn cut_at(&self, since_start: Duration) -> bool {
        self.partitions
            .iter()
            .any(|p| since_start >= p.start && since_start < p.end)
    }

    /// Whether any fault besides partitions is configured (if not, the
    /// writer may keep its coalescing fast path).
    pub fn frame_faults_active(&self) -> bool {
        !self.faults.is_none()
    }

    /// The link this interposer covers, `(sender, receiver)`.
    pub fn link(&self) -> (PartyId, PartyId) {
        (self.me, self.peer)
    }

    /// The throttle sleep owed after writing `bytes`, if any.
    pub fn throttle_for(&self, bytes: usize) -> Option<Duration> {
        match self.faults.throttle_bytes_per_ms {
            0 => None,
            rate => Some(Duration::from_millis(bytes as u64 / rate)),
        }
    }

    fn roll(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && self.rng.next_below(1000) < per_mille as u64
    }

    /// Rolls this frame's fate. Call once per queued frame, in order.
    pub fn plan(&mut self, frame: Vec<u8>) -> FramePlan {
        let mut plan = FramePlan {
            reset_first: false,
            delay: None,
            frames: Vec::new(),
        };
        if self.roll(self.faults.reset_per_mille) {
            self.counters.resets.fetch_add(1, Ordering::Relaxed);
            plan.reset_first = true;
        }
        if self.roll(self.faults.delay_per_mille) {
            let (lo, hi) = self.faults.delay_ms;
            let span = hi.saturating_sub(lo).max(1);
            let ms = lo + self.rng.next_below(span);
            self.counters.delayed.fetch_add(1, Ordering::Relaxed);
            plan.delay = Some(Duration::from_millis(ms));
        }
        if self.drops_left > 0 && self.roll(self.faults.drop_per_mille) {
            self.drops_left -= 1;
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            // The frame dies; anything held is still released behind it.
            if let Some(h) = self.held.take() {
                plan.frames.push(h);
            }
            return plan;
        }
        let frame = if self.garbles_left > 0 && self.roll(self.faults.garble_per_mille) {
            self.garbles_left -= 1;
            self.counters.garbled.fetch_add(1, Ordering::Relaxed);
            let mut f = frame;
            // Flip a byte of the *body* (past the 4-byte length prefix
            // when there is one) so the receiver reads a full frame that
            // fails to decode, rather than desyncing the length stream.
            let lo = 4.min(f.len().saturating_sub(1));
            let i = lo + self.rng.next_below((f.len() - lo).max(1) as u64) as usize;
            if let Some(b) = f.get_mut(i) {
                *b ^= 0x55;
            }
            f
        } else {
            frame
        };
        if self.held.is_none() && self.roll(self.faults.reorder_per_mille) {
            // Hold this frame; it rides behind the next one.
            self.held = Some(frame);
            return plan;
        }
        plan.frames.push(frame);
        if let Some(h) = self.held.take() {
            self.counters.reordered.fetch_add(1, Ordering::Relaxed);
            plan.frames.push(h);
        }
        plan
    }

    /// Releases a held frame at flush points (teardown), so reordering
    /// never turns into silent loss.
    pub fn flush_held(&mut self) -> Option<Vec<u8>> {
        self.held.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> Arc<ChaosCounters> {
        Arc::new(ChaosCounters::default())
    }

    #[test]
    fn clean_link_passes_frames_through() {
        let cfg = ChaosConfig::default();
        let mut link = LinkChaos::new(&cfg, 0, 1, counters());
        assert!(!link.frame_faults_active());
        for i in 0..64u8 {
            let plan = link.plan(vec![i]);
            assert!(!plan.reset_first);
            assert!(plan.delay.is_none());
            assert_eq!(plan.frames, vec![vec![i]]);
        }
    }

    #[test]
    fn fault_sequence_is_deterministic_per_link() {
        let cfg = ChaosConfig {
            seed: 7,
            default: LinkFaults {
                drop_per_mille: 300,
                drop_budget: 1_000,
                garble_per_mille: 200,
                garble_budget: 1_000,
                reset_per_mille: 100,
                reorder_per_mille: 150,
                ..LinkFaults::none()
            },
            ..ChaosConfig::default()
        };
        let run = |me, peer| {
            let mut link = LinkChaos::new(&cfg, me, peer, counters());
            let mut trace = Vec::new();
            for i in 0..200u64 {
                let plan = link.plan(i.to_be_bytes().to_vec());
                trace.push((plan.reset_first, plan.frames));
            }
            trace
        };
        assert_eq!(run(0, 1), run(0, 1), "same link replays identically");
        assert_ne!(run(0, 1), run(0, 2), "links draw independent sequences");
        assert_ne!(run(1, 0), run(0, 1), "directions draw independently");
    }

    #[test]
    fn drop_budget_bounds_losses() {
        let cfg = ChaosConfig {
            seed: 3,
            default: LinkFaults {
                drop_per_mille: 1000,
                drop_budget: 5,
                ..LinkFaults::none()
            },
            ..ChaosConfig::default()
        };
        let c = counters();
        let mut link = LinkChaos::new(&cfg, 0, 1, Arc::clone(&c));
        let mut delivered = 0usize;
        for i in 0..100u8 {
            delivered += link.plan(vec![i]).frames.len();
        }
        assert_eq!(c.dropped.load(Ordering::Relaxed), 5, "budget exhausted");
        assert_eq!(delivered, 95, "every frame past the budget survives");
    }

    #[test]
    fn garble_flips_exactly_one_body_byte() {
        let cfg = ChaosConfig {
            seed: 5,
            default: LinkFaults {
                garble_per_mille: 1000,
                garble_budget: u64::MAX,
                ..LinkFaults::none()
            },
            ..ChaosConfig::default()
        };
        let mut link = LinkChaos::new(&cfg, 2, 3, counters());
        let frame = vec![0u8, 0, 0, 4, 1, 2, 3, 4]; // prefix ‖ body
        let plan = link.plan(frame.clone());
        assert_eq!(plan.frames.len(), 1);
        let out = &plan.frames[0];
        assert_eq!(out[..4], frame[..4], "length prefix untouched");
        let flipped = out.iter().zip(frame.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(flipped, 1, "exactly one body byte flipped");
    }

    #[test]
    fn reorder_holds_then_releases_behind_successor() {
        let cfg = ChaosConfig {
            seed: 11,
            default: LinkFaults {
                reorder_per_mille: 1000,
                ..LinkFaults::none()
            },
            ..ChaosConfig::default()
        };
        let c = counters();
        let mut link = LinkChaos::new(&cfg, 0, 1, Arc::clone(&c));
        let first = link.plan(vec![1]);
        assert!(first.frames.is_empty(), "first frame held");
        let second = link.plan(vec![2]);
        // With reorder at 1000‰ the second frame is held too — but a
        // held slot already exists, so it passes and releases the first
        // behind it.
        assert_eq!(second.frames, vec![vec![2], vec![1]], "inverted pair");
        assert_eq!(c.reordered.load(Ordering::Relaxed), 1);
        assert!(link.flush_held().is_none());
    }

    #[test]
    fn partitions_cut_only_crossing_links() {
        let cfg = ChaosConfig {
            seed: 0,
            partitions: vec![Partition {
                group: vec![0, 1],
                start: Duration::from_millis(100),
                end: Duration::from_millis(200),
            }],
            ..ChaosConfig::default()
        };
        let cross = LinkChaos::new(&cfg, 0, 2, counters());
        let inside = LinkChaos::new(&cfg, 0, 1, counters());
        assert!(!cross.cut_at(Duration::from_millis(50)), "before window");
        assert!(cross.cut_at(Duration::from_millis(150)), "inside window");
        assert!(!cross.cut_at(Duration::from_millis(250)), "healed");
        assert!(
            !inside.cut_at(Duration::from_millis(150)),
            "same-side link stays up"
        );
        assert_eq!(cross.link(), (0, 2));
    }

    #[test]
    fn per_link_overrides_beat_the_default() {
        let cfg = ChaosConfig {
            seed: 1,
            default: LinkFaults {
                drop_per_mille: 500,
                drop_budget: 10,
                ..LinkFaults::none()
            },
            links: vec![((0, 3), LinkFaults::none())],
            ..ChaosConfig::default()
        };
        assert!(cfg.faults_for(0, 3).is_none(), "override wins");
        assert_eq!(cfg.faults_for(0, 2).drop_per_mille, 500, "default holds");
    }

    #[test]
    fn throttle_charges_by_bytes() {
        let cfg = ChaosConfig {
            seed: 2,
            default: LinkFaults {
                throttle_bytes_per_ms: 10,
                ..LinkFaults::none()
            },
            ..ChaosConfig::default()
        };
        let link = LinkChaos::new(&cfg, 0, 1, counters());
        assert_eq!(link.throttle_for(100), Some(Duration::from_millis(10)));
        let clean = LinkChaos::new(&ChaosConfig::default(), 0, 1, counters());
        assert_eq!(clean.throttle_for(1 << 20), None, "uncapped by default");
    }
}
