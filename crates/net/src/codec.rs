//! Binary wire codec primitives: framing, bounded reading, and the
//! [`WireCodec`] trait every network message implements.
//!
//! The paper's system model (§2) is asynchronous *point-to-point
//! channels* between servers on the open Internet, so every message an
//! automaton emits must survive a real socket: a hostile peer can send
//! truncated frames, absurd length fields, or garbage discriminants,
//! and the decoder must reject all of it with a typed error instead of
//! panicking or allocating unboundedly. This module holds the pieces
//! that are protocol-agnostic:
//!
//! * [`WireCodec`] — encode into a byte buffer / decode from a bounded
//!   [`Reader`], with provided whole-buffer helpers.
//! * [`Reader`] — a cursor over a received frame that hands out
//!   primitives and length-checked slices, never panicking on
//!   malformed input.
//! * [`CodecError`] — the closed set of ways a frame can be bad.
//! * Frame helpers ([`encode_frame`], [`read_frame`]) — `u32`
//!   big-endian length prefix with a hard [`MAX_FRAME`] cap, shared by
//!   the TCP runtime and any future transport.
//!
//! The actual `impl WireCodec for …` blocks for protocol messages live
//! in `sintra-protocols` (the `protocols::codec` module), next to the
//! types they encode; this crate only defines the contract so the
//! transport can be generic over it.

use sintra_crypto::coin::CoinShare;
use sintra_crypto::schnorr::Signature;
use sintra_crypto::tenc::DecryptionShare;
use sintra_crypto::tsig::{SignatureShare, ThresholdSignature};
use std::io;

/// Hard upper bound on a single wire frame (length prefix excluded).
///
/// Nothing the protocols emit comes near this: the largest legitimate
/// messages are MVBA proposals carrying a batch payload plus a
/// threshold signature (tens of kilobytes at `n = 128`). A peer
/// claiming more than this is malformed or malicious, and the bound is
/// what keeps a hostile length field from turning into a giant
/// allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Upper bound on any single variable-length byte field inside a frame
/// (payloads, digests are fixed-size and unaffected). Kept at the frame
/// bound so a payload that fits a frame always decodes.
pub const MAX_PAYLOAD: usize = MAX_FRAME;

/// Typed decode failure. Every way a received frame can be rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame ended before the field being read.
    Truncated,
    /// An enum discriminant byte had no corresponding variant.
    BadDiscriminant {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A length field exceeded its cap (or the remaining frame).
    Oversized {
        /// Which field was being decoded.
        what: &'static str,
        /// The claimed length.
        len: usize,
        /// The maximum allowed.
        max: usize,
    },
    /// A fixed-size element failed validation (non-canonical group
    /// element, inconsistent signer count, …).
    BadElement {
        /// Which element was being decoded.
        what: &'static str,
    },
    /// The frame decoded fully but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadDiscriminant { what, value } => {
                write!(f, "bad discriminant {value} for {what}")
            }
            CodecError::Oversized { what, len, max } => {
                write!(f, "{what} length {len} exceeds cap {max}")
            }
            CodecError::BadElement { what } => write!(f, "invalid {what}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after frame")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounded cursor over a received frame.
///
/// Every accessor checks the remaining length first and returns
/// [`CodecError::Truncated`] instead of panicking; length-prefixed
/// reads validate the claimed length against both a caller cap and the
/// bytes actually present *before* allocating.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a frame for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consumes a single byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.array::<4>()?))
    }

    /// Consumes a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.array::<8>()?))
    }

    /// Consumes a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let bytes = self.take(N)?;
        Ok(bytes.try_into().expect("take returned N bytes"))
    }

    /// Consumes a `u32`-length-prefixed byte string, rejecting lengths
    /// above `max` (named `what` in the error) before allocating.
    pub fn bytes(&mut self, what: &'static str, max: usize) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > max {
            return Err(CodecError::Oversized { what, len, max });
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Asserts the frame is fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.buf.len(),
            })
        }
    }
}

/// Length-prefixed binary encoding for a wire message.
///
/// Implementations append their canonical encoding to a caller buffer
/// (so nested messages compose without intermediate allocations) and
/// decode from a bounded [`Reader`]. The provided [`encode`] /
/// [`decode_exact`] helpers handle the whole-buffer case and enforce
/// that decoding consumes every byte.
///
/// [`encode`]: WireCodec::encode
/// [`decode_exact`]: WireCodec::decode_exact
pub trait WireCodec: Sized {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Decodes one value from the reader, leaving any following bytes
    /// unconsumed (for nested use).
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decodes a value that must occupy the entire buffer.
    fn decode_exact(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

/// Nothing on the wire: the unit type encodes to zero bytes. Lets
/// transports be generic over protocols whose message type is `()`.
impl WireCodec for () {
    fn encode_into(&self, _buf: &mut Vec<u8>) {}

    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Crypto payloads
//
// These impls live here (rather than next to the protocol messages in
// `sintra-protocols`) because of the orphan rule: the trait is this
// crate's, the types are `sintra-crypto`'s, and the protocols crate
// owns neither. Each delegates to the type's canonical `to_bytes` /
// `from_bytes`, so canonicality checks (subgroup membership, signer
// counts) happen exactly once, in the crypto crate.
// ---------------------------------------------------------------------

/// Upper bound on component counts inside coin/decryption shares (one
/// component per LSSS leaf assigned to the issuing party; generalized
/// `Q³` structures stay far below this).
const MAX_SHARE_COMPONENTS: usize = 4096;

/// Bytes per coin/decryption share component: leaf id (u32), group
/// element (32 B), Chaum-Pedersen proof (96 B).
const COMPONENT_LEN: usize = 4 + 32 + 96;

impl WireCodec for Signature {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Signature::from_bytes(&r.array::<64>()?).ok_or(CodecError::BadElement {
            what: "signature commitment",
        })
    }
}

impl WireCodec for SignatureShare {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        SignatureShare::from_bytes(&r.array::<68>()?).ok_or(CodecError::BadElement {
            what: "signature share",
        })
    }
}

impl WireCodec for ThresholdSignature {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // The signer bitmask determines how many 64-byte signatures
        // follow (at most 128 — the mask is a u128).
        let mask = r.array::<16>()?;
        let signers = u128::from_be_bytes(mask).count_ones() as usize;
        let sigs = r.take(signers * 64)?;
        let mut full = Vec::with_capacity(16 + sigs.len());
        full.extend_from_slice(&mask);
        full.extend_from_slice(sigs);
        ThresholdSignature::from_bytes(&full).ok_or(CodecError::BadElement {
            what: "threshold signature",
        })
    }
}

/// Shared stream-decode shape of coin and decryption shares: a `u32`
/// component count followed by fixed-size components, re-validated by
/// the crypto crate's own `from_bytes`.
fn decode_share_body<'a>(
    r: &mut Reader<'a>,
    what: &'static str,
) -> Result<(usize, &'a [u8]), CodecError> {
    let count = r.u32()? as usize;
    if count > MAX_SHARE_COMPONENTS {
        return Err(CodecError::Oversized {
            what,
            len: count,
            max: MAX_SHARE_COMPONENTS,
        });
    }
    let body = r.take(count * COMPONENT_LEN)?;
    Ok((count, body))
}

impl WireCodec for CoinShare {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let party = r.array::<4>()?;
        let (count, body) = decode_share_body(r, "coin share components")?;
        let mut full = Vec::with_capacity(8 + body.len());
        full.extend_from_slice(&party);
        full.extend_from_slice(&(count as u32).to_be_bytes());
        full.extend_from_slice(body);
        CoinShare::from_bytes(&full).ok_or(CodecError::BadElement { what: "coin share" })
    }
}

impl WireCodec for DecryptionShare {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let header = r.take(36)?.to_vec(); // party ‖ ciphertext digest
        let (count, body) = decode_share_body(r, "decryption share components")?;
        let mut full = Vec::with_capacity(40 + body.len());
        full.extend_from_slice(&header);
        full.extend_from_slice(&(count as u32).to_be_bytes());
        full.extend_from_slice(body);
        DecryptionShare::from_bytes(&full).ok_or(CodecError::BadElement {
            what: "decryption share",
        })
    }
}

/// Frames a message for the wire: `u32` big-endian body length, then
/// the body. Returns `None` if the encoding exceeds [`MAX_FRAME`]
/// (the caller decides whether that is a drop or a bug).
pub fn encode_frame<M: WireCodec>(msg: &M) -> Option<Vec<u8>> {
    let mut buf = vec![0u8; 4];
    msg.encode_into(&mut buf);
    let body_len = buf.len() - 4;
    if body_len > MAX_FRAME {
        return None;
    }
    buf[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
    Some(buf)
}

/// Reads one length-prefixed frame from a stream and decodes it.
///
/// Distinguishes three outcomes: a clean end-of-stream before any
/// prefix byte (`Ok(None)`, the peer closed), a decoded message
/// (`Ok(Some(_))`), or an error — I/O failure, mid-frame EOF, a length
/// prefix above [`MAX_FRAME`], or a body that fails to decode.
pub fn read_frame<M: WireCodec, R: io::Read>(stream: &mut R) -> io::Result<Option<M>> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first read so a clean EOF at a frame boundary is
    // distinguishable from a connection dying mid-frame.
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let msg = M::decode_exact(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(msg))
}

/// Writes one length-prefixed frame to a stream. Returns an
/// `InvalidInput` error if the message exceeds [`MAX_FRAME`].
pub fn write_frame<M: WireCodec, W: io::Write>(stream: &mut W, msg: &M) -> io::Result<()> {
    let frame = encode_frame(msg)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "message exceeds frame cap"))?;
    stream.write_all(&frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny message exercising every Reader primitive.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Probe {
        tag: u8,
        seq: u64,
        body: Vec<u8>,
    }

    impl WireCodec for Probe {
        fn encode_into(&self, buf: &mut Vec<u8>) {
            buf.push(self.tag);
            buf.extend_from_slice(&self.seq.to_be_bytes());
            buf.extend_from_slice(&(self.body.len() as u32).to_be_bytes());
            buf.extend_from_slice(&self.body);
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Probe {
                tag: r.u8()?,
                seq: r.u64()?,
                body: r.bytes("probe body", 1024)?,
            })
        }
    }

    fn probe() -> Probe {
        Probe {
            tag: 7,
            seq: 0xDEAD_BEEF_0000_0001,
            body: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn round_trip() {
        let p = probe();
        assert_eq!(Probe::decode_exact(&p.encode()).unwrap(), p);
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = probe().encode();
        for cut in 0..bytes.len() {
            assert!(Probe::decode_exact(&bytes[..cut]).is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = probe().encode();
        bytes.push(0);
        assert_eq!(
            Probe::decode_exact(&bytes),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn oversized_length_field_rejected_without_allocating() {
        let mut bytes = vec![7];
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd length
        assert!(matches!(
            Probe::decode_exact(&bytes),
            Err(CodecError::Oversized { len, .. }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn frame_round_trip_over_stream() {
        let p = probe();
        let mut wire = Vec::new();
        write_frame(&mut wire, &p).unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame::<Probe, _>(&mut cursor).unwrap(), Some(p));
        assert_eq!(read_frame::<Probe, _>(&mut cursor).unwrap(), None); // clean EOF
    }

    #[test]
    fn stream_eof_mid_frame_is_an_error() {
        let p = probe();
        let mut wire = Vec::new();
        write_frame(&mut wire, &p).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = io::Cursor::new(wire);
        assert!(read_frame::<Probe, _>(&mut cursor).is_err());
    }

    #[test]
    fn hostile_frame_length_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(wire);
        let err = read_frame::<Probe, _>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
