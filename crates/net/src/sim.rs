//! Deterministic discrete-event simulation of the asynchronous network.
//!
//! The paper's model (§2): the adversary controls the network — it may
//! reorder and delay messages arbitrarily, subject only to eventual
//! delivery between honest parties, and it fully controls corrupted
//! parties. This simulator realizes that model as a replayable
//! discrete-event loop:
//!
//! * all in-flight messages sit in one pool;
//! * at every step a pluggable [`Scheduler`] — the adversary — picks
//!   which message to deliver next, seeing the full pool (sender,
//!   receiver, and contents, matching "the network is the adversary");
//! * corrupted parties are replaced by [`Behavior`]s that may stay
//!   silent, echo garbage, or run arbitrary custom logic supplied by the
//!   experiment.
//!
//! Self-addressed messages are delivered immediately (local computation
//! cannot be intercepted). Everything is driven by a seeded RNG, so any
//! run — including the adversarial ones — replays bit-identically.

use crate::protocol::{Context, Effects, Protocol};
use sintra_adversary::party::{PartyId, PartySet};
use sintra_crypto::rng::SeededRng;
use sintra_obs::{Layer, MetricsSnapshot, Obs};
use std::collections::VecDeque;

/// A message in flight.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending party.
    pub from: PartyId,
    /// Receiving party.
    pub to: PartyId,
    /// The message.
    pub msg: M,
    /// Step at which it was sent.
    pub sent_at: u64,
    /// Whether this envelope is a network-duplicated copy of a message
    /// that has already been delivered once. Only such copies may be
    /// dropped by a lossy scheduler — originals are protected, so
    /// eventual delivery between honest parties always holds.
    pub duplicate: bool,
}

/// The network adversary: picks which in-flight message is delivered
/// next. Implementations see the whole pool, including message contents.
pub trait Scheduler<M> {
    /// Returns the index (into `inflight`) of the message to deliver.
    /// `inflight` is never empty when called.
    fn pick(&mut self, inflight: &[Envelope<M>], step: u64, rng: &mut SeededRng) -> usize;

    /// Optionally nominates an envelope to destroy instead of delivering
    /// this step. The simulator honors the nomination only if the
    /// envelope is a [`duplicate`](Envelope::duplicate) copy, so no
    /// scheduler — however adversarial — can break eventual delivery.
    fn drop_candidate(
        &mut self,
        _inflight: &[Envelope<M>],
        _step: u64,
        _rng: &mut SeededRng,
    ) -> Option<usize> {
        None
    }
}

impl<M> Scheduler<M> for Box<dyn Scheduler<M>> {
    fn pick(&mut self, inflight: &[Envelope<M>], step: u64, rng: &mut SeededRng) -> usize {
        (**self).pick(inflight, step, rng)
    }

    fn drop_candidate(
        &mut self,
        inflight: &[Envelope<M>],
        step: u64,
        rng: &mut SeededRng,
    ) -> Option<usize> {
        (**self).drop_candidate(inflight, step, rng)
    }
}

/// Index of the oldest envelope in the pool (ties broken by pool
/// position). Used as the fallback when a starving scheduler is forced
/// to deliver starved traffic: releasing the oldest bounds how long any
/// single message can be withheld.
fn oldest_index<M>(inflight: &[Envelope<M>]) -> usize {
    inflight
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.sent_at)
        .map(|(i, _)| i)
        .expect("inflight nonempty")
}

/// Uniformly random delivery — the "benign" asynchronous network.
#[derive(Clone, Debug, Default)]
pub struct RandomScheduler;

impl<M> Scheduler<M> for RandomScheduler {
    fn pick(&mut self, inflight: &[Envelope<M>], _step: u64, rng: &mut SeededRng) -> usize {
        rng.next_below(inflight.len() as u64) as usize
    }
}

/// Oldest-first delivery (global FIFO).
#[derive(Clone, Debug, Default)]
pub struct FifoScheduler;

impl<M> Scheduler<M> for FifoScheduler {
    fn pick(&mut self, inflight: &[Envelope<M>], _step: u64, _rng: &mut SeededRng) -> usize {
        inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.sent_at)
            .map(|(i, _)| i)
            .expect("inflight nonempty")
    }
}

/// Newest-first delivery — maximal reordering.
#[derive(Clone, Debug, Default)]
pub struct LifoScheduler;

impl<M> Scheduler<M> for LifoScheduler {
    fn pick(&mut self, inflight: &[Envelope<M>], _step: u64, _rng: &mut SeededRng) -> usize {
        inflight
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.sent_at)
            .map(|(i, _)| i)
            .expect("inflight nonempty")
    }
}

/// Starves all traffic to and from a victim set: victim messages are
/// delivered only when nothing else is in flight (eventual delivery is
/// preserved, so this is a legal asynchronous adversary — exactly the
/// attack of §2.2 that makes timeout-based failure detectors useless).
#[derive(Clone, Debug)]
pub struct TargetedDelayScheduler {
    /// Parties whose traffic is starved.
    pub victims: PartySet,
}

impl<M> Scheduler<M> for TargetedDelayScheduler {
    fn pick(&mut self, inflight: &[Envelope<M>], _step: u64, rng: &mut SeededRng) -> usize {
        let fast: Vec<usize> = inflight
            .iter()
            .enumerate()
            .filter(|(_, e)| !self.victims.contains(e.from) && !self.victims.contains(e.to))
            .map(|(i, _)| i)
            .collect();
        if fast.is_empty() {
            // Only starved traffic remains: release the oldest envelope
            // so no single message is withheld unboundedly long.
            oldest_index(inflight)
        } else {
            fast[rng.next_below(fast.len() as u64) as usize]
        }
    }
}

/// Splits the parties into two groups and withholds cross-group traffic
/// until `heal_at`; models a temporary partition.
#[derive(Clone, Debug)]
pub struct PartitionScheduler {
    /// One side of the partition (the rest of the parties are the other).
    pub group: PartySet,
    /// Step at which the partition heals.
    pub heal_at: u64,
}

impl<M> Scheduler<M> for PartitionScheduler {
    fn pick(&mut self, inflight: &[Envelope<M>], step: u64, rng: &mut SeededRng) -> usize {
        if step >= self.heal_at {
            return rng.next_below(inflight.len() as u64) as usize;
        }
        let same_side: Vec<usize> = inflight
            .iter()
            .enumerate()
            .filter(|(_, e)| self.group.contains(e.from) == self.group.contains(e.to))
            .map(|(i, _)| i)
            .collect();
        if same_side.is_empty() {
            // Only cross-partition traffic remains: leak the oldest
            // envelope (bounded starvation) rather than a random one.
            oldest_index(inflight)
        } else {
            same_side[rng.next_below(same_side.len() as u64) as usize]
        }
    }
}

/// Wraps any scheduler with bounded message loss: up to `budget`
/// duplicate copies are destroyed instead of delivered, each with
/// `drop_percent` probability per step. Because only
/// [`duplicate`](Envelope::duplicate) envelopes are ever nominated (and
/// the simulator enforces this regardless), every original message is
/// still delivered — loss is a bounded adversarial capability, not a
/// liveness hazard.
#[derive(Clone, Debug)]
pub struct LossyScheduler<S> {
    inner: S,
    drop_percent: u64,
    budget: u64,
}

impl<S> LossyScheduler<S> {
    /// Wraps `inner`, allowing at most `budget` duplicate-copy drops,
    /// each attempted with probability `drop_percent` (clamped to 100).
    pub fn new(inner: S, drop_percent: u64, budget: u64) -> Self {
        LossyScheduler {
            inner,
            drop_percent: drop_percent.min(100),
            budget,
        }
    }

    /// Drops still allowed.
    pub fn remaining_budget(&self) -> u64 {
        self.budget
    }
}

impl<M, S: Scheduler<M>> Scheduler<M> for LossyScheduler<S> {
    fn pick(&mut self, inflight: &[Envelope<M>], step: u64, rng: &mut SeededRng) -> usize {
        self.inner.pick(inflight, step, rng)
    }

    fn drop_candidate(
        &mut self,
        inflight: &[Envelope<M>],
        _step: u64,
        rng: &mut SeededRng,
    ) -> Option<usize> {
        if self.budget == 0 || self.drop_percent == 0 || rng.next_below(100) >= self.drop_percent {
            return None;
        }
        let duplicates: Vec<usize> = inflight
            .iter()
            .enumerate()
            .filter(|(_, e)| e.duplicate)
            .map(|(i, _)| i)
            .collect();
        if duplicates.is_empty() {
            return None;
        }
        self.budget -= 1;
        Some(duplicates[rng.next_below(duplicates.len() as u64) as usize])
    }
}

/// An adaptive adversary given as a closure over the full pool.
pub struct AdaptiveScheduler<M> {
    #[allow(clippy::type_complexity)]
    pick: Box<dyn FnMut(&[Envelope<M>], u64, &mut SeededRng) -> usize + Send>,
}

impl<M> AdaptiveScheduler<M> {
    /// Wraps a picking closure.
    pub fn new(
        pick: impl FnMut(&[Envelope<M>], u64, &mut SeededRng) -> usize + Send + 'static,
    ) -> Self {
        AdaptiveScheduler {
            pick: Box::new(pick),
        }
    }
}

impl<M> Scheduler<M> for AdaptiveScheduler<M> {
    fn pick(&mut self, inflight: &[Envelope<M>], step: u64, rng: &mut SeededRng) -> usize {
        let i = (self.pick)(inflight, step, rng);
        assert!(i < inflight.len(), "scheduler picked out-of-range index");
        i
    }
}

impl<M> core::fmt::Debug for AdaptiveScheduler<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AdaptiveScheduler")
    }
}

/// How a corrupted party behaves.
pub enum Behavior<P: Protocol> {
    /// Crashed: absorbs everything, sends nothing.
    Crash,
    /// Arbitrary logic: receives each incoming message and returns the
    /// messages it wants to send.
    #[allow(clippy::type_complexity)]
    Custom(Box<dyn FnMut(PartyId, P::Message, u64) -> Vec<(PartyId, P::Message)> + Send>),
}

impl<P: Protocol> core::fmt::Debug for Behavior<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Behavior::Crash => write!(f, "Crash"),
            Behavior::Custom(_) => write!(f, "Custom"),
        }
    }
}

enum NodeSlot<P: Protocol> {
    Honest(P),
    Corrupted(Behavior<P>),
}

/// Counters the simulator maintains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the pool.
    pub sent: u64,
    /// Messages delivered to a receiving node.
    pub delivered: u64,
    /// Delivery steps executed.
    pub steps: u64,
    /// Self-addressed messages short-circuited.
    pub local_deliveries: u64,
    /// Duplicate copies destroyed by a lossy scheduler instead of
    /// delivered.
    pub dropped: u64,
    /// Total bytes injected into the network (only counted when a meter
    /// is installed with [`Simulation::set_meter`]).
    pub bytes_sent: u64,
}

/// Configures and constructs a [`Simulation`]: scheduler, seed, fault
/// plan, instrumentation, duplication, ticks, and a step budget, each
/// with a sensible default. This supersedes the positional
/// `Simulation::builder(nodes, scheduler).seed(seed).build()` constructor.
///
/// ```ignore
/// let mut sim = Simulation::builder(nodes, RandomScheduler)
///     .seed(42)
///     .instrument(4096)        // per-party metrics + flight recorder
///     .duplication(30)
///     .corrupt(3, Behavior::Crash)
///     .build();
/// ```
pub struct SimulationBuilder<P: Protocol, S> {
    nodes: Vec<P>,
    scheduler: S,
    seed: u64,
    recorder_capacity: Option<usize>,
    duplication_percent: u64,
    tick_every: u64,
    step_budget: u64,
    corruptions: Vec<(PartyId, Behavior<P>)>,
    #[allow(clippy::type_complexity)]
    meter: Option<Box<dyn Fn(&P::Message) -> usize + Send>>,
}

impl<P: Protocol, S: Scheduler<P::Message>> SimulationBuilder<P, S> {
    /// Seeds the simulation RNG (default 0); the seed fully determines
    /// the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Turns instrumentation on: every party gets its own metrics
    /// registry and a flight recorder retaining `recorder_capacity`
    /// events. Off by default (zero recording overhead).
    pub fn instrument(mut self, recorder_capacity: usize) -> Self {
        self.recorder_capacity = Some(recorder_capacity);
        self
    }

    /// Enables random message duplication (see
    /// [`Simulation::enable_duplication`] for the clamping rule).
    pub fn duplication(mut self, percent: u64) -> Self {
        self.duplication_percent = percent;
        self
    }

    /// Enables periodic `on_tick` rounds every `every` steps (for the
    /// failure-detector baseline only).
    pub fn ticks(mut self, every: u64) -> Self {
        self.tick_every = every;
        self
    }

    /// Caps [`Simulation::run`] at `steps` delivery steps (default
    /// 1,000,000).
    pub fn step_budget(mut self, steps: u64) -> Self {
        self.step_budget = steps;
        self
    }

    /// Adds a corruption to the fault plan: `party` runs `behavior`
    /// instead of its honest automaton.
    pub fn corrupt(mut self, party: PartyId, behavior: Behavior<P>) -> Self {
        self.corruptions.push((party, behavior));
        self
    }

    /// Installs a wire-size meter; every remote send is measured into
    /// [`SimStats::bytes_sent`] (and, when instrumented, the
    /// `net.bytes_sent` counter).
    pub fn meter(mut self, meter: impl Fn(&P::Message) -> usize + Send + 'static) -> Self {
        self.meter = Some(Box::new(meter));
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation<P, S> {
        let n = self.nodes.len();
        let obs = match self.recorder_capacity {
            Some(cap) => (0..n).map(|_| Obs::enabled(cap)).collect(),
            None => vec![Obs::disabled(); n],
        };
        let mut sim = Simulation {
            nodes: self.nodes.into_iter().map(NodeSlot::Honest).collect(),
            inflight: Vec::new(),
            scheduler: self.scheduler,
            rng: SeededRng::new(self.seed),
            outputs: (0..n).map(|_| Vec::new()).collect(),
            stats: SimStats::default(),
            tick_every: self.tick_every,
            max_idle_ticks: 200,
            idle_ticks: 0,
            duplication_percent: self.duplication_percent.min(90),
            meter: self.meter,
            obs,
            step_budget: self.step_budget,
        };
        for (party, behavior) in self.corruptions {
            sim.corrupt(party, behavior);
        }
        sim
    }
}

/// A deterministic simulation of `n` replicas of a protocol under an
/// adversarial scheduler.
///
/// # Examples
///
/// See the crate-level documentation and the protocol crates' tests; the
/// minimal shape is:
///
/// ```ignore
/// let mut sim = Simulation::builder(nodes, RandomScheduler).seed(42).build();
/// sim.input(0, my_input);
/// sim.run_until_quiet(100_000);
/// assert_eq!(sim.outputs(1), sim.outputs(2));
/// ```
pub struct Simulation<P: Protocol, S> {
    nodes: Vec<NodeSlot<P>>,
    inflight: Vec<Envelope<P::Message>>,
    scheduler: S,
    rng: SeededRng,
    outputs: Vec<Vec<P::Output>>,
    stats: SimStats,
    /// Call `on_tick` on every honest node each `tick_every` steps
    /// (0 = never). Only timeout-bearing protocols (the FD baseline, the
    /// optimistic fast path) use this.
    tick_every: u64,
    /// When the pool is empty but ticks are enabled, keep firing idle
    /// tick rounds (local clocks advance even on a silent network) up to
    /// this many consecutive silent rounds.
    max_idle_ticks: u64,
    idle_ticks: u64,
    /// Percentage (0-90) of deliveries that put a duplicate copy of the
    /// message back into the pool — real networks may duplicate, and the
    /// protocols must be idempotent.
    duplication_percent: u64,
    /// Optional byte meter for the `bytes_sent` statistic.
    #[allow(clippy::type_complexity)]
    meter: Option<Box<dyn Fn(&P::Message) -> usize + Send>>,
    /// Per-party observability handles (disabled unless the builder's
    /// `instrument` was called).
    obs: Vec<Obs>,
    /// Step cap for [`run`](Self::run).
    step_budget: u64,
}

impl<P: Protocol, S: Scheduler<P::Message>> Simulation<P, S> {
    /// Starts building a simulation over the given replicas; see
    /// [`SimulationBuilder`] for the knobs.
    pub fn builder(nodes: Vec<P>, scheduler: S) -> SimulationBuilder<P, S> {
        SimulationBuilder {
            nodes,
            scheduler,
            seed: 0,
            recorder_capacity: None,
            duplication_percent: 0,
            tick_every: 0,
            step_budget: 1_000_000,
            corruptions: Vec::new(),
            meter: None,
        }
    }

    /// Creates a simulation over the given replicas.
    #[deprecated(
        since = "0.1.0",
        note = "use `Simulation::builder(nodes, scheduler).seed(seed).build()`"
    )]
    pub fn new(nodes: Vec<P>, scheduler: S, seed: u64) -> Self {
        Simulation::builder(nodes, scheduler).seed(seed).build()
    }

    /// Installs a wire-size meter; every remote send is measured into
    /// [`SimStats::bytes_sent`].
    pub fn set_meter(&mut self, meter: impl Fn(&P::Message) -> usize + Send + 'static) {
        self.meter = Some(Box::new(meter));
    }

    /// Enables random message duplication: each delivery leaves a copy
    /// in the pool with the given probability. Values above 90 are
    /// clamped to 90 so runs terminate (an unbounded duplication rate
    /// would keep the pool non-empty forever).
    pub fn enable_duplication(&mut self, percent: u64) {
        self.duplication_percent = percent.min(90);
    }

    /// The effective duplication probability (post-clamp).
    pub fn duplication_percent(&self) -> u64 {
        self.duplication_percent
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Replaces a party with a corrupted behavior.
    pub fn corrupt(&mut self, party: PartyId, behavior: Behavior<P>) {
        self.nodes[party] = NodeSlot::Corrupted(behavior);
    }

    /// Enables periodic ticks (for the failure-detector baseline only).
    pub fn enable_ticks(&mut self, every: u64) {
        self.tick_every = every;
    }

    /// The instrumentation context for `party` at the current step.
    fn ctx(&self, party: PartyId) -> Context {
        Context {
            me: party,
            n: self.nodes.len(),
            at: self.stats.steps,
            obs: self.obs[party].clone(),
        }
    }

    /// A party's observability handle (disabled unless the simulation
    /// was built with [`SimulationBuilder::instrument`]).
    pub fn obs(&self, party: PartyId) -> &Obs {
        &self.obs[party]
    }

    /// All parties' metrics folded into one snapshot (counters add,
    /// gauges take the max, histograms merge). Empty when
    /// uninstrumented.
    pub fn metrics_merged(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for obs in &self.obs {
            merged.merge(&obs.metrics_snapshot());
        }
        merged
    }

    /// Injects a local input at a party. No-op on corrupted parties.
    pub fn input(&mut self, party: PartyId, input: P::Input) {
        let mut fx = Effects::for_parties(self.nodes.len());
        let ctx = self.ctx(party);
        if let NodeSlot::Honest(node) = &mut self.nodes[party] {
            node.on_input_ctx(&ctx, input, &mut fx);
        }
        self.absorb(party, fx);
    }

    /// Delivers one message (the scheduler picks which) or, when nothing
    /// is in flight but ticks are enabled, advances the local clocks (up
    /// to a bounded number of consecutive silent rounds, so timeouts can
    /// fire even on a quiet network). Returns `false` when the run has
    /// quiesced.
    pub fn step(&mut self) -> bool {
        if self.inflight.is_empty() {
            if self.tick_every == 0 || self.idle_ticks >= self.max_idle_ticks {
                return false;
            }
            self.stats.steps += 1;
            self.tick_round();
            if self.inflight.is_empty() {
                self.idle_ticks += 1;
            } else {
                self.idle_ticks = 0;
            }
            return true;
        }
        self.idle_ticks = 0;
        self.stats.steps += 1;
        // Give a lossy scheduler the chance to destroy a duplicate copy
        // instead of delivering. The duplicate check is enforced *here*,
        // not trusted to the scheduler: no adversary may drop originals.
        if let Some(idx) =
            self.scheduler
                .drop_candidate(&self.inflight, self.stats.steps, &mut self.rng)
        {
            if self.inflight.get(idx).is_some_and(|e| e.duplicate) {
                let env = self.inflight.swap_remove(idx);
                self.stats.dropped += 1;
                self.obs[env.to].inc(Layer::Net, "dropped_duplicates");
                return true;
            }
        }
        let idx = self
            .scheduler
            .pick(&self.inflight, self.stats.steps, &mut self.rng);
        let env = self.inflight.swap_remove(idx);
        if self.duplication_percent > 0 && self.rng.next_below(100) < self.duplication_percent {
            let mut copy = env.clone();
            copy.sent_at = self.stats.steps;
            copy.duplicate = true;
            self.inflight.push(copy);
        }
        self.deliver(env);
        if self.tick_every > 0 && self.stats.steps.is_multiple_of(self.tick_every) {
            self.tick_round();
        }
        true
    }

    fn tick_round(&mut self) {
        for party in 0..self.nodes.len() {
            let mut fx = Effects::for_parties(self.nodes.len());
            let ctx = self.ctx(party);
            if let NodeSlot::Honest(node) = &mut self.nodes[party] {
                node.on_tick_ctx(&ctx, &mut fx);
            }
            self.absorb(party, fx);
        }
    }

    /// Runs until the pool drains or the builder's step budget
    /// (default 1,000,000) is exhausted; returns steps executed.
    pub fn run(&mut self) -> u64 {
        self.run_until_quiet(self.step_budget)
    }

    /// Runs until the pool drains or `max_steps` is hit; returns steps
    /// executed.
    pub fn run_until_quiet(&mut self, max_steps: u64) -> u64 {
        let mut executed = 0;
        while executed < max_steps && self.step() {
            executed += 1;
        }
        executed
    }

    /// Runs until `predicate` holds (checked after every step), the pool
    /// drains, or `max_steps` elapse. Returns `true` if the predicate
    /// held.
    pub fn run_until(&mut self, max_steps: u64, mut predicate: impl FnMut(&Self) -> bool) -> bool {
        let mut executed = 0;
        loop {
            if predicate(self) {
                return true;
            }
            if executed >= max_steps || !self.step() {
                return predicate(self);
            }
            executed += 1;
        }
    }

    /// Outputs a party has produced so far.
    pub fn outputs(&self, party: PartyId) -> &[P::Output] {
        &self.outputs[party]
    }

    /// Simulation counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Read access to an honest node's state (`None` if corrupted).
    pub fn node(&self, party: PartyId) -> Option<&P> {
        match &self.nodes[party] {
            NodeSlot::Honest(p) => Some(p),
            NodeSlot::Corrupted(_) => None,
        }
    }

    /// Consumes the simulation, returning every party's final node state
    /// (`None` for corrupted slots). Campaign invariant checks use this
    /// to inspect internal protocol state — e.g. which parties a node's
    /// batch verification attributed as culprits — after a run.
    pub fn into_nodes(self) -> Vec<Option<P>> {
        self.nodes
            .into_iter()
            .map(|slot| match slot {
                NodeSlot::Honest(p) => Some(p),
                NodeSlot::Corrupted(_) => None,
            })
            .collect()
    }

    /// The set of corrupted parties.
    pub fn corrupted(&self) -> PartySet {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, NodeSlot::Corrupted(_)))
            .map(|(p, _)| p)
            .collect()
    }

    fn deliver(&mut self, env: Envelope<P::Message>) {
        self.stats.delivered += 1;
        let to = env.to;
        let obs = &self.obs[to];
        if obs.is_enabled() {
            obs.inc(Layer::Net, "recv");
            // In-pool latency over simulated time: how many steps the
            // adversary held this envelope.
            obs.observe(
                Layer::Net,
                "delivery_steps",
                self.stats.steps.saturating_sub(env.sent_at),
            );
        }
        let mut fx = Effects::for_parties(self.nodes.len());
        let ctx = self.ctx(to);
        match &mut self.nodes[to] {
            NodeSlot::Honest(node) => {
                node.on_message_ctx(&ctx, env.from, env.msg, &mut fx);
            }
            NodeSlot::Corrupted(Behavior::Crash) => {}
            NodeSlot::Corrupted(Behavior::Custom(f)) => {
                for (dst, msg) in f(env.from, env.msg, self.stats.steps) {
                    fx.send(dst, msg);
                }
            }
        }
        self.absorb(to, fx);
    }

    /// Moves effects into the pool, short-circuiting self-sends through a
    /// local FIFO (they cannot be delayed by the network adversary).
    #[allow(clippy::type_complexity)]
    fn absorb(&mut self, origin: PartyId, mut fx: Effects<P::Message, P::Output>) {
        let mut local: VecDeque<(PartyId, Effects<P::Message, P::Output>)> = VecDeque::new();
        local.push_back((origin, fx_split(&mut fx)));
        self.outputs[origin].extend(fx.take_outputs());
        let n = self.nodes.len();
        while let Some((party, mut effects)) = local.pop_front() {
            for (to, msg) in effects.take_sends() {
                if to >= n {
                    continue; // a Byzantine node may address nonexistent parties
                }
                if to == party {
                    // Immediate local delivery — honest nodes only. A
                    // corrupted node sending to itself is dropped: its
                    // behavior already ran, and looping it back would let
                    // a spamming behavior recurse forever.
                    match &mut self.nodes[to] {
                        NodeSlot::Honest(node) => {
                            self.stats.local_deliveries += 1;
                            self.obs[to].inc(Layer::Net, "local_deliveries");
                            let mut sub = Effects::for_parties(n);
                            let ctx = Context {
                                me: to,
                                n,
                                at: self.stats.steps,
                                obs: self.obs[to].clone(),
                            };
                            node.on_message_ctx(&ctx, party, msg, &mut sub);
                            self.outputs[to].extend(sub.take_outputs());
                            local.push_back((to, sub));
                        }
                        NodeSlot::Corrupted(_) => {}
                    }
                } else {
                    self.stats.sent += 1;
                    self.obs[party].inc(Layer::Net, "sent");
                    if let Some(meter) = &self.meter {
                        let bytes = meter(&msg) as u64;
                        self.stats.bytes_sent += bytes;
                        self.obs[party].add(Layer::Net, "bytes_sent", bytes);
                    }
                    self.inflight.push(Envelope {
                        from: party,
                        to,
                        msg,
                        sent_at: self.stats.steps,
                        duplicate: false,
                    });
                }
            }
        }
    }
}

/// Splits the sends out of an Effects so outputs can be recorded at the
/// call site (helper keeping borrow scopes simple).
fn fx_split<M, O>(fx: &mut Effects<M, O>) -> Effects<M, O> {
    let mut out = Effects::new();
    for (to, m) in fx.take_sends() {
        out.send(to, m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node broadcasts its id on input and records everything heard.
    #[derive(Debug)]
    struct Gossip {
        heard: Vec<(PartyId, u64)>,
    }

    impl Protocol for Gossip {
        type Message = u64;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.broadcast(v);
        }

        fn on_message(&mut self, from: PartyId, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            self.heard.push((from, v));
            fx.output((from, v));
        }
    }

    fn gossip_nodes(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip { heard: vec![] }).collect()
    }

    #[test]
    fn all_messages_eventually_delivered() {
        let mut sim = Simulation::builder(gossip_nodes(4), RandomScheduler)
            .seed(1)
            .build();
        sim.input(0, 7);
        sim.run_until_quiet(1000);
        for p in 0..4 {
            assert_eq!(sim.outputs(p), &[(0, 7)], "party {p}");
        }
        let stats = sim.stats();
        assert_eq!(stats.sent, 3, "three remote sends");
        assert_eq!(stats.local_deliveries, 1, "one self delivery");
        assert_eq!(stats.delivered, 3);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut sim = Simulation::builder(gossip_nodes(5), RandomScheduler)
                .seed(seed)
                .build();
            for p in 0..5 {
                sim.input(p, p as u64 * 10);
            }
            sim.run_until_quiet(10_000);
            (0..5).map(|p| sim.outputs(p).to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn schedulers_change_order_not_outcome() {
        let totals =
            |outputs: &[Vec<(PartyId, u64)>]| outputs.iter().map(|o| o.len()).sum::<usize>();
        let run = |sched: &str| {
            let nodes = gossip_nodes(4);
            let mut outs = Vec::new();
            match sched {
                "random" => {
                    let mut sim = Simulation::builder(nodes, RandomScheduler).seed(3).build();
                    for p in 0..4 {
                        sim.input(p, p as u64);
                    }
                    sim.run_until_quiet(10_000);
                    for p in 0..4 {
                        outs.push(sim.outputs(p).to_vec());
                    }
                }
                "fifo" => {
                    let mut sim = Simulation::builder(nodes, FifoScheduler).seed(3).build();
                    for p in 0..4 {
                        sim.input(p, p as u64);
                    }
                    sim.run_until_quiet(10_000);
                    for p in 0..4 {
                        outs.push(sim.outputs(p).to_vec());
                    }
                }
                _ => {
                    let mut sim = Simulation::builder(nodes, LifoScheduler).seed(3).build();
                    for p in 0..4 {
                        sim.input(p, p as u64);
                    }
                    sim.run_until_quiet(10_000);
                    for p in 0..4 {
                        outs.push(sim.outputs(p).to_vec());
                    }
                }
            }
            outs
        };
        assert_eq!(totals(&run("random")), 16);
        assert_eq!(totals(&run("fifo")), 16);
        assert_eq!(totals(&run("lifo")), 16);
    }

    #[test]
    fn crash_behavior_absorbs() {
        let mut sim = Simulation::builder(gossip_nodes(4), RandomScheduler)
            .seed(4)
            .build();
        sim.corrupt(3, Behavior::Crash);
        sim.input(0, 9);
        sim.run_until_quiet(1000);
        assert_eq!(sim.outputs(3), &[] as &[(PartyId, u64)]);
        assert_eq!(sim.outputs(1), &[(0, 9)]);
        assert_eq!(sim.corrupted(), PartySet::singleton(3));
        assert!(sim.node(3).is_none());
        assert!(sim.node(1).is_some());
    }

    #[test]
    fn custom_behavior_can_equivocate() {
        // Party 2 forwards different values to 0 and 1.
        let mut sim = Simulation::builder(gossip_nodes(3), FifoScheduler)
            .seed(5)
            .build();
        sim.corrupt(
            2,
            Behavior::Custom(Box::new(|_from, _msg, _step| vec![(0, 100), (1, 200)])),
        );
        sim.input(0, 1); // reaches party 2, triggering the equivocation
        sim.run_until_quiet(1000);
        assert!(sim.outputs(0).contains(&(2, 100)));
        assert!(sim.outputs(1).contains(&(2, 200)));
        assert!(!sim.outputs(0).contains(&(2, 200)));
    }

    #[test]
    fn targeted_delay_starves_victim_but_delivers_eventually() {
        let mut sim = Simulation::builder(
            gossip_nodes(4),
            TargetedDelayScheduler {
                victims: PartySet::singleton(0),
            },
        )
        .seed(6)
        .build();
        for p in 0..4 {
            sim.input(p, p as u64);
        }
        // Track when party 0 first receives a *remote* message (its own
        // self-broadcast is delivered locally and immediately).
        let mut steps_until_victim_heard = None;
        let mut steps = 0;
        while sim.step() {
            steps += 1;
            let heard_remote = sim.outputs(0).iter().any(|(from, _)| *from != 0);
            if steps_until_victim_heard.is_none() && heard_remote {
                steps_until_victim_heard = Some(steps);
            }
        }
        // Victim messages delivered only after all others: the victim
        // first hears something only in the second half of the run.
        let total = steps;
        let first = steps_until_victim_heard.expect("eventual delivery");
        assert!(
            first * 2 > total,
            "victim starved: first heard at {first} of {total}"
        );
        // But everything is delivered in the end (3 remote + 1 self).
        assert_eq!(sim.outputs(0).len(), 4);
    }

    #[test]
    fn partition_heals() {
        let group: PartySet = [0, 1].into_iter().collect();
        let mut sim =
            Simulation::builder(gossip_nodes(4), PartitionScheduler { group, heal_at: 50 })
                .seed(7)
                .build();
        for p in 0..4 {
            sim.input(p, p as u64);
        }
        sim.run_until_quiet(10_000);
        for p in 0..4 {
            assert_eq!(
                sim.outputs(p).len(),
                4,
                "party {p} hears everyone after heal"
            );
        }
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Simulation::builder(gossip_nodes(4), RandomScheduler)
            .seed(8)
            .build();
        sim.input(0, 5);
        let reached = sim.run_until(1000, |s| !s.outputs(2).is_empty());
        assert!(reached);
    }

    #[test]
    fn byzantine_sends_to_nonexistent_party_are_dropped() {
        let mut sim = Simulation::builder(gossip_nodes(3), FifoScheduler)
            .seed(77)
            .build();
        sim.corrupt(
            2,
            Behavior::Custom(Box::new(|_from, _msg, _| {
                vec![(99, 1u64), (0, 2u64)] // 99 does not exist
            })),
        );
        sim.input(0, 5);
        sim.run_until_quiet(1000);
        assert!(sim.outputs(0).contains(&(2, 2)));
    }

    #[test]
    fn duplication_preserves_gossip_semantics() {
        let mut sim = Simulation::builder(gossip_nodes(4), RandomScheduler)
            .seed(78)
            .build();
        sim.enable_duplication(50);
        sim.input(0, 9);
        sim.run_until_quiet(10_000);
        // Every party hears the broadcast at least once; duplicates mean
        // deliveries exceed unique sends.
        for p in 0..4 {
            assert!(sim.outputs(p).iter().any(|(f, v)| *f == 0 && *v == 9));
        }
        assert!(sim.stats().delivered >= sim.stats().sent);
    }

    #[test]
    fn duplication_percent_clamped_at_setter() {
        let mut sim = Simulation::builder(gossip_nodes(2), RandomScheduler)
            .seed(80)
            .build();
        sim.enable_duplication(500);
        assert_eq!(sim.duplication_percent(), 90, "clamped to documented max");
        sim.enable_duplication(35);
        assert_eq!(sim.duplication_percent(), 35);
    }

    #[test]
    fn lossy_scheduler_drops_only_duplicates_within_budget() {
        let budget = 5;
        let mut sim = Simulation::builder(
            gossip_nodes(4),
            LossyScheduler::new(RandomScheduler, 100, budget),
        )
        .seed(81)
        .build();
        sim.enable_duplication(60);
        for p in 0..4 {
            sim.input(p, p as u64);
        }
        sim.run_until_quiet(100_000);
        let stats = sim.stats();
        assert!(stats.dropped > 0, "lossy run should observe drops");
        assert!(stats.dropped <= budget, "drops bounded by budget");
        // Eventual delivery: every original broadcast still reaches
        // every party at least once.
        for p in 0..4 {
            for src in 0..4u64 {
                assert!(
                    sim.outputs(p)
                        .iter()
                        .any(|(f, v)| *f == src as usize && *v == src),
                    "party {p} missing broadcast from {src}"
                );
            }
        }
    }

    #[test]
    fn simulator_refuses_to_drop_originals() {
        /// A malicious scheduler that nominates originals for dropping.
        #[derive(Clone, Debug)]
        struct DropOriginals;
        impl<M> Scheduler<M> for DropOriginals {
            fn pick(&mut self, inflight: &[Envelope<M>], _: u64, rng: &mut SeededRng) -> usize {
                rng.next_below(inflight.len() as u64) as usize
            }
            fn drop_candidate(
                &mut self,
                _inflight: &[Envelope<M>],
                _step: u64,
                _rng: &mut SeededRng,
            ) -> Option<usize> {
                Some(0) // always nominate; sim must veto non-duplicates
            }
        }
        let mut sim = Simulation::builder(gossip_nodes(3), DropOriginals)
            .seed(82)
            .build();
        sim.input(0, 7);
        sim.run_until_quiet(10_000);
        assert_eq!(sim.stats().dropped, 0, "no duplicates exist to drop");
        for p in 0..3 {
            assert!(sim.outputs(p).contains(&(0, 7)), "party {p}");
        }
    }

    #[test]
    fn boxed_scheduler_dispatches() {
        let boxed: Box<dyn Scheduler<u64>> = Box::new(FifoScheduler);
        let mut sim = Simulation::builder(gossip_nodes(3), boxed).seed(83).build();
        sim.input(0, 4);
        sim.run_until_quiet(1_000);
        for p in 0..3 {
            assert!(sim.outputs(p).contains(&(0, 4)));
        }
    }

    #[test]
    fn starvation_fallback_releases_oldest_first() {
        // Everyone is a victim, so the fallback path runs every step:
        // delivery order must then be exactly oldest-first (global FIFO).
        let victims: PartySet = (0..4).collect();
        let mut fifo_sim = Simulation::builder(gossip_nodes(4), FifoScheduler)
            .seed(84)
            .build();
        let mut starved_sim =
            Simulation::builder(gossip_nodes(4), TargetedDelayScheduler { victims })
                .seed(84)
                .build();
        for p in 0..4 {
            fifo_sim.input(p, p as u64);
            starved_sim.input(p, p as u64);
        }
        fifo_sim.run_until_quiet(10_000);
        starved_sim.run_until_quiet(10_000);
        for p in 0..4 {
            assert_eq!(
                fifo_sim.outputs(p),
                starved_sim.outputs(p),
                "fallback must equal FIFO when everything is starved"
            );
        }
    }

    #[test]
    fn meter_counts_remote_bytes() {
        let mut sim = Simulation::builder(gossip_nodes(3), FifoScheduler)
            .seed(79)
            .build();
        sim.set_meter(|_msg: &u64| 8);
        sim.input(0, 1);
        sim.run_until_quiet(100);
        // Two remote sends of 8 bytes each (self-send is local).
        assert_eq!(sim.stats().bytes_sent, 16);
    }

    #[test]
    fn adaptive_scheduler_sees_contents() {
        // Deliver messages with even payloads first.
        let sched = AdaptiveScheduler::new(|pool: &[Envelope<u64>], _, rng| {
            pool.iter()
                .position(|e| e.msg % 2 == 0)
                .unwrap_or_else(|| rng.next_below(pool.len() as u64) as usize)
        });
        let mut sim = Simulation::builder(gossip_nodes(3), sched).seed(9).build();
        sim.input(0, 2);
        sim.input(1, 3);
        sim.run_until_quiet(100);
        // Two broadcasts × three receivers (self-deliveries included).
        let all: usize = (0..3).map(|p| sim.outputs(p).len()).sum();
        assert_eq!(all, 6);
    }

    #[test]
    fn ticks_fire_when_enabled() {
        #[derive(Debug)]
        struct Ticker {
            ticks: u64,
        }
        impl Protocol for Ticker {
            type Message = ();
            type Input = ();
            type Output = u64;
            fn on_input(&mut self, _: (), fx: &mut Effects<(), u64>) {
                fx.send(1, ());
                fx.send(0, ());
            }
            fn on_message(&mut self, _: PartyId, _: (), fx: &mut Effects<(), u64>) {
                fx.output(self.ticks);
            }
            fn on_tick(&mut self, _: &mut Effects<(), u64>) {
                self.ticks += 1;
            }
        }
        let mut sim = Simulation::builder(
            vec![Ticker { ticks: 0 }, Ticker { ticks: 0 }],
            FifoScheduler,
        )
        .seed(10)
        .build();
        sim.enable_ticks(1);
        sim.input(0, ());
        sim.run_until_quiet(100);
        // The tick counter advanced on the node that received remotely.
        assert!(sim.outputs(1)[0] == 0 || sim.node(0).unwrap().ticks > 0);
    }
}
