//! Nonblocking epoll reactor runtime: the thread-per-peer transport's
//! replacement for meshes where O(n) blocked threads per node is real
//! money (`shard_cluster` runs G·n replicas in one process — at G=4,
//! n=16 the threaded runtime is thousands of OS threads; the reactor
//! is one event-loop thread per replica, total).
//!
//! ## Ownership rules
//!
//! Exactly one thread — the event loop — touches sockets, epoll, the
//! buffer pool, and every per-peer state machine. Other threads
//! interact through two narrow edges only:
//!
//! * outbound: the protocol thread pushes framed bytes into the same
//!   bounded drop-oldest [`Lane`]s the threaded runtime uses, then
//!   rings an eventfd doorbell; the loop drains lanes from inside.
//! * inbound: the loop decodes frames and sends them up a crossbeam
//!   channel; `recv_timeout` on the mesh handle is unchanged.
//!
//! That single-owner rule is what lets every socket run nonblocking
//! without locks: there is no state a readiness callback could race.
//!
//! ## Per-peer outbound state machine
//!
//! Idle → Connecting → Up, with Down recorded in the shared
//! [`LinkSupervisor`] exactly as the threaded writer does it. Dials
//! are nonblocking (`SOCK_NONBLOCK` + `EINPROGRESS`, see
//! [`crate::sys`]) with a hard [`DIAL_TIMEOUT`] deadline and the same
//! jittered exponential backoff; a completed dial queues the 8-byte
//! handshake as the first wire item. Inbound connections mirror the
//! acceptor: handshake with deadline, then framed reads; a fresh
//! handshake from a peer evicts that peer's previous connection — the
//! reactor-native form of reader reaping (no thread can leak by
//! construction, but the fd would linger).
//!
//! ## How chaos interposes on a nonblocking write path
//!
//! The threaded writer *sleeps* for chaos delays and throttles; an
//! event loop must never sleep. Instead each planned frame carries a
//! release instant: delayed frames sit in a per-peer deferred queue
//! (released in FIFO order — a later frame is never released before
//! an earlier one), throttles set a per-peer mute-until instant, and
//! partitions simply close the socket and stop draining the lane, so
//! frames wait under the lane's bounded drop-oldest policy exactly as
//! on the threaded path. Fault *decisions* still come from
//! [`LinkChaos::plan`] in lane order, so the fault sequence for a
//! given `(seed, me, peer)` is identical across runtimes.
//!
//! ## Zero-copy inbound decode
//!
//! Reads land in pooled [`BytesMut`] buffers; each filled buffer is
//! frozen into a ref-counted [`Bytes`] and frames are decoded from
//! cheap slices of it — no per-message `Vec`. A partial frame at the
//! tail is carried (one small copy) into the next pooled buffer, and
//! buffers return to the pool automatically when the last slice
//! drops.

use crate::chaos::{ChaosConfig, ChaosCounters, LinkChaos};
use crate::codec::{encode_frame, WireCodec, MAX_FRAME};
use crate::sys::{
    connect_nonblocking, take_socket_error, ConnectStart, Epoll, EpollEvent, EventFd, EPOLLERR,
    EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::tcp_runtime::{
    parse_handshake, Lane, LinkState, LinkSupervisor, MeshStats, ReactorStats, BACKOFF_MAX,
    BACKOFF_MIN, COALESCE_BYTES, DIAL_TIMEOUT, HANDSHAKE_DEADLINE, HEARTBEAT_EVERY, MAGIC,
};
use bytes::{BufPool, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use sintra_adversary::party::PartyId;
use sintra_crypto::rng::SeededRng;
use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsFd, OwnedFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Event-loop tick: the epoll wait timeout, bounding how stale any
/// timer-driven work (redials, heartbeats, deferred chaos releases)
/// can get. Matches the node loops' own 5ms granularity.
const TICK_MS: i32 = 5;

/// Size of each pooled read buffer.
const READ_BUF: usize = 64 * 1024;

/// Pooled read buffers kept for reuse per mesh (beyond this, freed
/// buffers go back to the allocator).
const POOL_KEEP: usize = 64;

/// Bounded grace for flushing still-deliverable frames at shutdown —
/// teardown must not hang on an unreachable peer.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

/// Counters the event loop publishes; the mesh handle reads them at
/// teardown (after joining the loop thread).
#[derive(Default)]
struct SharedStats {
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    handshake_rejects: AtomicU64,
    fds_peak: AtomicU64,
    wakeups: AtomicU64,
    pool_allocations: AtomicU64,
    pool_recycles: AtomicU64,
    /// True while the event loop is (about to be) blocked in
    /// `epoll_wait` with no lane work pending. Producers ring the
    /// doorbell only when they flip this off — a busy loop picks new
    /// frames up on its own sweep, so a hot mesh coalesces sends into
    /// lane batches instead of paying a syscall + wakeup per message.
    parked: AtomicBool,
}

/// The reactor-backed mesh handle: API-identical to the threaded
/// `TcpMesh`, so the node loops dispatch to either through
/// [`crate::tcp_runtime::Mesh`] without caring which is underneath.
pub(crate) struct ReactorMesh<M> {
    me: PartyId,
    epoch: Instant,
    inbox_tx: Sender<(PartyId, M)>,
    inbox_rx: Receiver<(PartyId, M)>,
    lanes: Vec<Option<Arc<Lane>>>,
    supervisors: Vec<Option<Arc<LinkSupervisor>>>,
    wake: Arc<EventFd>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    outbound_dropped: Arc<AtomicU64>,
    lane_poisoned: Arc<AtomicU64>,
    chaos_counters: Arc<ChaosCounters>,
    loop_thread: Option<std::thread::JoinHandle<()>>,
}

impl<M: WireCodec + Send + 'static> ReactorMesh<M> {
    /// Starts the mesh: sets up epoll + doorbell, registers the
    /// listener, and spawns the single event-loop thread. Returns
    /// immediately; links establish in the background with
    /// retry/backoff while the node already runs.
    pub(crate) fn start(
        me: PartyId,
        addrs: &[SocketAddr],
        listener: TcpListener,
        chaos: Option<&ChaosConfig>,
        queue_bytes: usize,
    ) -> io::Result<ReactorMesh<M>> {
        let n = addrs.len();
        let epoch = Instant::now();
        let (inbox_tx, inbox_rx) = unbounded::<(PartyId, M)>();
        let stats = Arc::new(SharedStats::default());
        let outbound_dropped = Arc::new(AtomicU64::new(0));
        let lane_poisoned = Arc::new(AtomicU64::new(0));
        let chaos_counters = Arc::new(ChaosCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let wake = Arc::new(EventFd::new()?);
        let epoll = Epoll::new()?;
        listener.set_nonblocking(true)?;

        let supervisors: Vec<Option<Arc<LinkSupervisor>>> = (0..n)
            .map(|p| (p != me).then(|| Arc::new(LinkSupervisor::new())))
            .collect();
        let lanes: Vec<Option<Arc<Lane>>> = (0..n)
            .map(|p| {
                (p != me).then(|| {
                    Arc::new(Lane::new(
                        queue_bytes,
                        Arc::clone(&outbound_dropped),
                        Arc::clone(&lane_poisoned),
                    ))
                })
            })
            .collect();

        let mut outs: Vec<Option<OutLink>> = Vec::with_capacity(n);
        for (peer, addr) in addrs.iter().enumerate() {
            if peer == me {
                outs.push(None);
                continue;
            }
            outs.push(Some(OutLink {
                me,
                peer,
                addr: *addr,
                lane: Arc::clone(lanes[peer].as_ref().expect("remote lane")),
                sup: Arc::clone(supervisors[peer].as_ref().expect("remote sup")),
                chaos: chaos.map(|c| LinkChaos::new(c, me, peer, Arc::clone(&chaos_counters))),
                state: OutState::Idle,
                token: None,
                raw: VecDeque::new(),
                deferred: VecDeque::new(),
                wire: VecDeque::new(),
                woff: 0,
                backoff: BACKOFF_MIN,
                next_dial: Instant::now(),
                last_write: Instant::now(),
                throttle_until: Instant::now(),
                // Same decorrelation as the threaded writer: seeded off
                // the pid so survivors of a crash don't redial a
                // restarted replica in lockstep.
                jitter: SeededRng::new(
                    (std::process::id() as u64) << 32 | ((me as u64) << 16) | peer as u64,
                ),
            }));
        }

        let loop_thread = {
            let inbox = inbox_tx.clone();
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let wake = Arc::clone(&wake);
            let supervisors = supervisors.clone();
            std::thread::spawn(move || {
                let mut el = EventLoop::<M> {
                    n,
                    epoch,
                    epoll,
                    wake,
                    listener,
                    slab: Vec::new(),
                    free: Vec::new(),
                    freed: Vec::new(),
                    outs,
                    cur_in: vec![None; n],
                    supervisors,
                    inbox,
                    pool: BufPool::new(READ_BUF, POOL_KEEP),
                    stats,
                    shutdown,
                    live_fds: 0,
                };
                el.run();
            })
        };

        Ok(ReactorMesh {
            me,
            epoch,
            inbox_tx,
            inbox_rx,
            lanes,
            supervisors,
            wake,
            shutdown,
            stats,
            outbound_dropped,
            lane_poisoned,
            chaos_counters,
            loop_thread: Some(loop_thread),
        })
    }

    /// Queues a message. Self-sends short-circuit into the inbox;
    /// remote sends are framed once, pushed into the peer's bounded
    /// lane, and the doorbell wakes the loop. Returns `false` for an
    /// unroutable destination.
    pub(crate) fn send(&self, to: PartyId, msg: M) -> bool {
        if to == self.me {
            return self.inbox_tx.send((self.me, msg)).is_ok();
        }
        let Some(lane) = self.lanes.get(to).and_then(|o| o.as_ref()) else {
            return false;
        };
        match encode_frame(&msg) {
            Some(frame) => {
                let ok = lane.push(frame);
                // Ring only a parked loop (first producer to notice
                // wins the swap); an active loop re-checks the lanes
                // before it parks, so the frame cannot be stranded.
                if ok && self.stats.parked.swap(false, Ordering::SeqCst) {
                    self.wake.ring();
                }
                ok
            }
            None => false, // exceeds MAX_FRAME: refuse at origin
        }
    }

    /// Waits up to `timeout` for the next inbound message.
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Option<(PartyId, M)> {
        self.inbox_rx.recv_timeout(timeout).ok()
    }

    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    pub(crate) fn supervisors(&self) -> &[Option<Arc<LinkSupervisor>>] {
        &self.supervisors
    }

    /// Flushes and tears down: lanes close, the loop drains what it
    /// can within a bounded grace, every socket closes (peers see
    /// EOF), and the loop thread is joined.
    pub(crate) fn shutdown(mut self) -> MeshStats {
        self.shutdown.store(true, Ordering::Relaxed);
        for lane in self.lanes.iter().flatten() {
            lane.close();
        }
        self.wake.ring();
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
        MeshStats {
            bytes_sent: self.stats.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.stats.bytes_recv.load(Ordering::Relaxed),
            handshake_rejects: self.stats.handshake_rejects.load(Ordering::Relaxed),
            outbound_dropped: self.outbound_dropped.load(Ordering::Relaxed),
            lane_poisoned: self.lane_poisoned.load(Ordering::Relaxed),
            chaos: self.chaos_counters.snapshot(),
            reactor: ReactorStats {
                fds_peak: self.stats.fds_peak.load(Ordering::Relaxed),
                wakeups: self.stats.wakeups.load(Ordering::Relaxed),
                pool_allocations: self.stats.pool_allocations.load(Ordering::Relaxed),
                pool_recycles: self.stats.pool_recycles.load(Ordering::Relaxed),
            },
        }
    }
}

/// One wire item: bytes that must reach the peer contiguously
/// (a frame, the handshake preamble, or a heartbeat). `counted` keeps
/// byte accounting identical to the threaded runtime, which tallies
/// data frames only.
struct WireItem {
    buf: Vec<u8>,
    counted: bool,
}

/// Outbound connection state for one peer.
enum OutState {
    /// No socket; dial when `next_dial` arrives.
    Idle,
    /// Nonblocking connect in flight; fail it at `deadline`.
    Connecting { fd: OwnedFd, deadline: Instant },
    /// Connected; the handshake is (queued to be) written first.
    Up(TcpStream),
}

/// Everything the loop owns for one outbound link.
struct OutLink {
    me: PartyId,
    peer: PartyId,
    addr: SocketAddr,
    lane: Arc<Lane>,
    sup: Arc<LinkSupervisor>,
    chaos: Option<LinkChaos>,
    state: OutState,
    /// Slab token while a socket exists (Connecting or Up).
    token: Option<usize>,
    /// Frames pulled from the lane, not yet rolled through chaos.
    raw: VecDeque<Vec<u8>>,
    /// Chaos-planned frames awaiting their release instant.
    deferred: VecDeque<(Instant, Vec<u8>)>,
    /// Wire items committed to this link, in order; survivors of a
    /// dead connection are retried whole on the next one.
    wire: VecDeque<WireItem>,
    /// Bytes of `wire[0]` already written on the *current* connection.
    woff: usize,
    backoff: Duration,
    next_dial: Instant,
    last_write: Instant,
    throttle_until: Instant,
    jitter: SeededRng,
}

impl OutLink {
    /// Counted (data-frame) bytes not yet on the wire.
    fn has_undelivered(&self) -> bool {
        !self.raw.is_empty() || !self.deferred.is_empty() || self.wire.iter().any(|w| w.counted)
    }
}

/// One accepted inbound connection (handshaking or established).
struct InConn {
    stream: TcpStream,
    /// `None` until the 8-byte preamble parses.
    peer: Option<PartyId>,
    /// Unconsumed tail of the last read (partial frame / preamble).
    tail: Bytes,
    /// Handshake must complete by here or the stray is cut loose.
    deadline: Instant,
}

/// What a slab token points at.
enum Entry {
    Listener,
    Wake,
    /// Outbound socket for this peer (state lives in `outs`).
    Out(PartyId),
    /// Inbound connection.
    In(InConn),
}

/// Outcome of servicing an inbound connection's readiness.
enum ReadVerdict {
    KeepOpen,
    Close,
    /// Close *and* count a handshake reject.
    Reject,
}

/// The single-threaded event loop.
struct EventLoop<M> {
    n: usize,
    epoch: Instant,
    epoll: Epoll,
    wake: Arc<EventFd>,
    listener: TcpListener,
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Tokens freed while processing the current event batch; merged
    /// into `free` only at the tick boundary, so a stale readiness
    /// record in the same batch can never alias a reused token.
    freed: Vec<usize>,
    outs: Vec<Option<OutLink>>,
    /// Current inbound token per peer (reaping: a fresh handshake
    /// evicts its predecessor).
    cur_in: Vec<Option<usize>>,
    supervisors: Vec<Option<Arc<LinkSupervisor>>>,
    inbox: Sender<(PartyId, M)>,
    pool: BufPool,
    stats: Arc<SharedStats>,
    shutdown: Arc<AtomicBool>,
    live_fds: u64,
}

impl<M: WireCodec + Send + 'static> EventLoop<M> {
    fn run(&mut self) {
        let listener_tok = self.alloc(Entry::Listener);
        let wake_tok = self.alloc(Entry::Wake);
        if self
            .epoll
            .add(self.listener.as_fd(), EPOLLIN, listener_tok as u64)
            .is_err()
        {
            return;
        }
        let wake = Arc::clone(&self.wake);
        if self
            .epoll
            .add(wake.as_fd(), EPOLLIN, wake_tok as u64)
            .is_err()
        {
            return;
        }

        let mut events = [EpollEvent::default(); 64];
        let mut shutdown_at: Option<Instant> = None;
        loop {
            // Park protocol: declare intent to sleep, then re-check
            // the lanes. A producer that pushed before seeing `parked`
            // set is caught by the re-check; one that pushes after
            // sees the flag and rings. Either way no frame waits a
            // full tick while the link could take it.
            let timeout = if self.ingest_ready() {
                0
            } else {
                self.stats.parked.store(true, Ordering::SeqCst);
                if self.ingest_ready() {
                    self.stats.parked.store(false, Ordering::SeqCst);
                    0
                } else {
                    TICK_MS
                }
            };
            let nready = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break,
            };
            self.stats.parked.store(false, Ordering::SeqCst);
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            for ev in &events[..nready] {
                let tok = { ev.token } as usize;
                let bits = { ev.events };
                self.dispatch(tok, bits);
            }

            // Timer-driven maintenance: dials, heartbeats, deferred
            // chaos releases, handshake deadlines, lane draining.
            for peer in 0..self.n {
                self.pump(peer);
            }
            self.expire_handshakes();
            let mut newly_free = std::mem::take(&mut self.freed);
            self.free.append(&mut newly_free);

            if self.shutdown.load(Ordering::Relaxed) {
                let at = *shutdown_at.get_or_insert_with(Instant::now);
                if self.drained() || at.elapsed() >= SHUTDOWN_GRACE {
                    break;
                }
            }
        }
        self.teardown();
    }

    // -- slab ----------------------------------------------------------

    fn alloc(&mut self, entry: Entry) -> usize {
        self.live_fds += 1;
        if self.live_fds > self.stats.fds_peak.load(Ordering::Relaxed) {
            self.stats.fds_peak.store(self.live_fds, Ordering::Relaxed);
        }
        if let Some(tok) = self.free.pop() {
            self.slab[tok] = Some(entry);
            tok
        } else {
            self.slab.push(Some(entry));
            self.slab.len() - 1
        }
    }

    fn release(&mut self, tok: usize) -> Option<Entry> {
        let e = self.slab.get_mut(tok).and_then(Option::take);
        if e.is_some() {
            self.live_fds -= 1;
            self.freed.push(tok);
        }
        e
    }

    // -- event dispatch ------------------------------------------------

    fn dispatch(&mut self, tok: usize, bits: u32) {
        enum Tag {
            Wake,
            Listener,
            In,
            Out(PartyId),
        }
        let tag = match self.slab.get(tok) {
            Some(Some(Entry::Wake)) => Tag::Wake,
            Some(Some(Entry::Listener)) => Tag::Listener,
            Some(Some(Entry::In(_))) => Tag::In,
            Some(Some(Entry::Out(peer))) => Tag::Out(*peer),
            _ => return, // stale token from earlier in the batch
        };
        match tag {
            Tag::Wake => self.wake.drain(),
            Tag::Listener => self.accept_ready(),
            Tag::In => self.in_ready(tok),
            Tag::Out(peer) => self.out_ready(peer, bits),
        }
    }

    /// Accepts until the listener would block; each connection starts
    /// a handshake clock and joins the read set.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let tok = self.alloc(Entry::In(InConn {
                        stream,
                        peer: None,
                        tail: Bytes::new(),
                        deadline: Instant::now() + HANDSHAKE_DEADLINE,
                    }));
                    let added = {
                        let Some(Some(Entry::In(conn))) = self.slab.get(tok) else {
                            unreachable!("just allocated")
                        };
                        self.epoll
                            .add(conn.stream.as_fd(), EPOLLIN | EPOLLRDHUP, tok as u64)
                            .is_ok()
                    };
                    if !added {
                        self.drop_in(tok);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Services a readable inbound connection: pooled reads, handshake
    /// parsing, zero-copy frame decode.
    fn in_ready(&mut self, tok: usize) {
        let mut decoded: Vec<M> = Vec::new();
        let mut traffic = false;
        let mut fresh: Option<PartyId> = None;
        let (verdict, peer) = {
            let Some(Some(Entry::In(conn))) = self.slab.get_mut(tok) else {
                return;
            };
            let v = Self::service_in(
                conn,
                self.n,
                &self.pool,
                &self.stats,
                &mut decoded,
                &mut traffic,
                &mut fresh,
            );
            (v, conn.peer)
        };
        if let Some(p) = fresh {
            // Reap the predecessor: same-peer reconnects must not
            // accumulate connections. SHUT_RD (not a full shutdown)
            // keeps frames already acked into the receive buffer
            // readable until EOF, so draining the old connection now
            // delivers them and then closes it.
            if let Some(old) = self.cur_in[p].replace(tok) {
                if old != tok {
                    if let Some(Some(Entry::In(oc))) = self.slab.get(old) {
                        let _ = oc.stream.shutdown(Shutdown::Read);
                    }
                    self.in_ready(old);
                }
            }
        }
        if let Some(p) = peer {
            if traffic {
                if let Some(Some(sup)) = self.supervisors.get(p) {
                    sup.touch(self.epoch.elapsed());
                }
            }
            // Deliver what decoded even if the connection then died.
            for msg in decoded {
                let _ = self.inbox.send((p, msg));
            }
        }
        match verdict {
            ReadVerdict::KeepOpen => {}
            ReadVerdict::Close => {
                // Dying before the preamble completes is a truncated
                // handshake — counted, like the threaded acceptor.
                if peer.is_none() && fresh.is_none() {
                    self.stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                }
                self.drop_in(tok);
            }
            ReadVerdict::Reject => {
                self.stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                self.drop_in(tok);
            }
        }
    }

    /// The borrow-friendly core of [`in_ready`]: drains the socket
    /// into pooled buffers and parses preamble + frames from frozen
    /// slices.
    #[allow(clippy::too_many_arguments)] // internal: split for borrows
    fn service_in(
        conn: &mut InConn,
        n: usize,
        pool: &BufPool,
        stats: &SharedStats,
        decoded: &mut Vec<M>,
        traffic: &mut bool,
        fresh_handshake: &mut Option<PartyId>,
    ) -> ReadVerdict {
        loop {
            let mut chunk: BytesMut = pool.get();
            let start = conn.tail.len();
            chunk.extend_from_slice(&conn.tail);
            // Guarantee real read headroom even when a large partial
            // frame fills the pooled capacity.
            let target = chunk.capacity().max(start + 1024);
            chunk.resize(target, 0);
            let got = match conn.stream.read(&mut chunk[start..]) {
                Ok(0) => return ReadVerdict::Close,
                Ok(got) => got,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadVerdict::KeepOpen,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadVerdict::Close,
            };
            chunk.truncate(start + got);
            stats.bytes_recv.fetch_add(got as u64, Ordering::Relaxed);
            let frozen = chunk.freeze();
            let mut off = 0usize;

            if conn.peer.is_none() {
                if frozen.len() < 8 {
                    conn.tail = frozen;
                    continue; // preamble still incomplete
                }
                let mut hs = [0u8; 8];
                hs.copy_from_slice(&frozen[..8]);
                match parse_handshake(&hs, n) {
                    Ok(peer) => {
                        conn.peer = Some(peer);
                        *fresh_handshake = Some(peer);
                        // Handshake bytes are not frame traffic.
                        stats.bytes_recv.fetch_sub(8, Ordering::Relaxed);
                        off = 8;
                    }
                    Err(_) => return ReadVerdict::Reject,
                }
            }

            loop {
                let rest = frozen.len() - off;
                if rest < 4 {
                    break;
                }
                let mut len4 = [0u8; 4];
                len4.copy_from_slice(&frozen[off..off + 4]);
                let len = u32::from_be_bytes(len4) as usize;
                if len == 0 {
                    // Heartbeat: liveness only, nothing to deliver.
                    *traffic = true;
                    off += 4;
                    continue;
                }
                if len > MAX_FRAME {
                    return ReadVerdict::Close;
                }
                if rest < 4 + len {
                    break;
                }
                let body = frozen.slice(off + 4..off + 4 + len);
                match M::decode_exact(&body) {
                    Ok(msg) => {
                        *traffic = true;
                        decoded.push(msg);
                    }
                    Err(_) => return ReadVerdict::Close,
                }
                off += 4 + len;
            }
            conn.tail = frozen.slice(off..);
        }
    }

    /// Tears down one inbound connection by token.
    fn drop_in(&mut self, tok: usize) {
        if let Some(Entry::In(conn)) = self.release(tok) {
            let _ = self.epoll.delete(conn.stream.as_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(peer) = conn.peer {
                if self.cur_in[peer] == Some(tok) {
                    self.cur_in[peer] = None;
                }
            }
        }
    }

    // -- outbound ------------------------------------------------------

    /// Handles readiness on an outbound socket: connect completion or
    /// peer-close detection (writes themselves are pump-driven).
    fn out_ready(&mut self, peer: PartyId, bits: u32) {
        let hup = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
        let Some(mut o) = self.outs.get_mut(peer).and_then(Option::take) else {
            return;
        };
        match &o.state {
            OutState::Connecting { fd, .. } => {
                if bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0 {
                    let ok = !hup && take_socket_error(fd.as_fd()).is_ok();
                    if ok {
                        self.promote(&mut o);
                    } else {
                        self.dial_failed(&mut o);
                    }
                }
            }
            OutState::Up(_) => {
                if hup {
                    self.drop_out_socket(&mut o);
                }
            }
            OutState::Idle => {}
        }
        self.outs[peer] = Some(o);
        self.pump(peer);
    }

    /// The per-peer engine: partitions, lane draining, chaos rolling,
    /// deferred releases, dialing, heartbeats, and the actual writes.
    /// Runs on every tick and after any event touching the peer.
    fn pump(&mut self, peer: PartyId) {
        let Some(mut o) = self.outs.get_mut(peer).and_then(Option::take) else {
            return;
        };
        let shutting_down = self.shutdown.load(Ordering::Relaxed);
        let now = Instant::now();

        // Scheduled partitions: a cut link closes and holds. Frames
        // wait in the bounded lane (drop-oldest under pressure), so
        // healing resumes delivery without unbounded sender memory.
        if o.chaos
            .as_ref()
            .is_some_and(|c| c.cut_at(self.epoch.elapsed()))
        {
            if !matches!(o.state, OutState::Idle) {
                self.drop_out_socket(&mut o);
            }
            self.outs[peer] = Some(o);
            return;
        }

        // Release deferred frames whose instant has come (FIFO).
        Self::release_due(&mut o, now);

        // Pull fresh frames and roll their faults, in lane order.
        let pending: usize = o
            .wire
            .iter()
            .map(|w| w.buf.len())
            .sum::<usize>()
            .saturating_sub(o.woff);
        if o.raw.is_empty() && o.deferred.is_empty() && pending < COALESCE_BYTES {
            let (frames, _) = o.lane.pop_batch(COALESCE_BYTES, Duration::ZERO);
            o.raw.extend(frames);
        }
        let mut reset = false;
        while !reset && !o.raw.is_empty() {
            let f = o.raw.pop_front().expect("checked non-empty");
            match o.chaos.as_mut() {
                Some(c) if c.frame_faults_active() => {
                    let plan = c.plan(f);
                    // A delayed frame is released later; everything
                    // after it queues behind it (FIFO), so the release
                    // floor is the last deferred instant.
                    let floor = o.deferred.back().map_or(now, |(at, _)| *at);
                    let release = plan.delay.map_or(floor, |d| floor.max(now + d));
                    for frame in plan.frames {
                        o.deferred.push_back((release, frame));
                    }
                    reset = plan.reset_first;
                }
                _ => o.wire.push_back(WireItem {
                    buf: f,
                    counted: true,
                }),
            }
        }
        if reset && !matches!(o.state, OutState::Idle) {
            self.drop_out_socket(&mut o);
            o.next_dial = now; // redial promptly, like the threaded reset
        }
        Self::release_due(&mut o, now);

        // A frame held back for reordering must not starve on an idle
        // link: release it once nothing else is in flight.
        if o.wire.is_empty() && o.raw.is_empty() && o.deferred.is_empty() {
            if let Some(held) = o.chaos.as_mut().and_then(LinkChaos::flush_held) {
                o.wire.push_back(WireItem {
                    buf: held,
                    counted: true,
                });
            }
        }

        // Connection management.
        match &o.state {
            OutState::Idle => {
                if shutting_down && !o.has_undelivered() {
                    // Quiet link at teardown: nothing left to deliver.
                } else if now >= o.next_dial || (shutting_down && o.has_undelivered()) {
                    // Redial even when idle (heartbeats + link-up
                    // probes must resume on a quiet mesh); at shutdown
                    // a final dial gets pending frames out, and its
                    // failure abandons them like the threaded writer.
                    self.start_dial(&mut o);
                }
            }
            OutState::Connecting { deadline, .. } => {
                if now >= *deadline {
                    self.dial_failed(&mut o);
                }
            }
            OutState::Up(_) => {}
        }

        // Heartbeat: an idle Up link keeps the peer's staleness
        // detector fed.
        if matches!(o.state, OutState::Up(_))
            && o.wire.is_empty()
            && o.last_write.elapsed() >= HEARTBEAT_EVERY
        {
            o.wire.push_back(WireItem {
                buf: 0u32.to_be_bytes().to_vec(),
                counted: false,
            });
        }

        // Write.
        if matches!(o.state, OutState::Up(_)) && now >= o.throttle_until && !o.wire.is_empty() {
            self.flush(&mut o);
        }
        self.outs[peer] = Some(o);
    }

    /// Moves deferred frames whose release instant has passed onto the
    /// wire queue, preserving order.
    fn release_due(o: &mut OutLink, now: Instant) {
        while o.deferred.front().is_some_and(|(at, _)| *at <= now) {
            let (_, f) = o.deferred.pop_front().expect("checked front");
            o.wire.push_back(WireItem {
                buf: f,
                counted: true,
            });
        }
    }

    /// Starts a nonblocking dial for this peer.
    fn start_dial(&mut self, o: &mut OutLink) {
        o.sup.set(LinkState::Connecting);
        match connect_nonblocking(&o.addr) {
            Ok(ConnectStart::Done(fd)) => {
                let tok = self.alloc(Entry::Out(o.peer));
                o.token = Some(tok);
                if self
                    .epoll
                    .add(fd.as_fd(), EPOLLIN | EPOLLRDHUP, tok as u64)
                    .is_err()
                {
                    o.state = OutState::Connecting {
                        fd,
                        deadline: Instant::now(),
                    };
                    self.dial_failed(o);
                    return;
                }
                o.state = OutState::Connecting {
                    fd,
                    deadline: Instant::now() + DIAL_TIMEOUT,
                };
                self.promote(o);
            }
            Ok(ConnectStart::Pending(fd)) => {
                let tok = self.alloc(Entry::Out(o.peer));
                o.token = Some(tok);
                if self.epoll.add(fd.as_fd(), EPOLLOUT, tok as u64).is_err() {
                    o.state = OutState::Connecting {
                        fd,
                        deadline: Instant::now(),
                    };
                    self.dial_failed(o);
                    return;
                }
                o.state = OutState::Connecting {
                    fd,
                    deadline: Instant::now() + DIAL_TIMEOUT,
                };
            }
            Err(_) => self.dial_failed(o),
        }
    }

    /// A connect completed: promote the fd to a `TcpStream`, switch
    /// interest to reads, queue the handshake preamble first, and mark
    /// the link Up.
    fn promote(&mut self, o: &mut OutLink) {
        let OutState::Connecting { fd, .. } = std::mem::replace(&mut o.state, OutState::Idle)
        else {
            return;
        };
        let tok = o.token.expect("registered at dial");
        let stream = TcpStream::from(fd);
        let _ = stream.set_nodelay(true);
        let _ = self
            .epoll
            .modify(stream.as_fd(), EPOLLIN | EPOLLRDHUP, tok as u64);
        // The 8-byte preamble goes first on every fresh connection; a
        // retried frame follows it, whole.
        o.woff = 0;
        let mut hs = [0u8; 8];
        hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
        hs[4..].copy_from_slice(&(o.me as u32).to_be_bytes());
        o.wire.push_front(WireItem {
            buf: hs.to_vec(),
            counted: false,
        });
        o.state = OutState::Up(stream);
        o.backoff = BACKOFF_MIN;
        o.last_write = Instant::now();
        o.sup.set(LinkState::Up);
        o.sup.up_epochs.fetch_add(1, Ordering::Relaxed);
    }

    /// A dial failed (error, deadline, or registration): back off with
    /// jitter and schedule the next attempt — or, at shutdown, abandon
    /// the undeliverable frames so teardown stays bounded.
    fn dial_failed(&mut self, o: &mut OutLink) {
        self.drop_out_socket(o);
        if self.shutdown.load(Ordering::Relaxed) {
            o.wire.clear();
            o.raw.clear();
            o.deferred.clear();
            o.woff = 0;
            return;
        }
        // Jittered exponential backoff (50%–150% of nominal): lockstep
        // redials from n−1 survivors would hammer a restarting replica
        // in synchronized waves.
        let nominal = o.backoff.as_nanos() as u64;
        let sleep_ns = nominal / 2 + o.jitter.next_below(nominal.max(1));
        o.next_dial = Instant::now() + Duration::from_nanos(sleep_ns);
        o.backoff = (o.backoff * 2).min(BACKOFF_MAX);
    }

    /// Closes this peer's outbound socket (any state) and marks the
    /// link Down. Pending wire items survive for the next connection;
    /// a partially written front item is retransmitted whole (the peer
    /// discarded the partial frame along with the connection).
    fn drop_out_socket(&mut self, o: &mut OutLink) {
        match std::mem::replace(&mut o.state, OutState::Idle) {
            OutState::Idle => {}
            OutState::Connecting { fd, .. } => {
                let _ = self.epoll.delete(fd.as_fd());
                drop(fd);
            }
            OutState::Up(stream) => {
                let _ = self.epoll.delete(stream.as_fd());
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(tok) = o.token.take() {
            self.release(tok);
        }
        o.woff = 0;
        // Drop a leftover handshake item: the next promote() queues a
        // fresh one, and two preambles would desync the peer's framing.
        if o.wire
            .front()
            .is_some_and(|w| !w.counted && w.buf.len() == 8)
        {
            o.wire.pop_front();
        }
        o.sup.set(LinkState::Down);
    }

    /// Writes as much of the wire queue as the socket accepts.
    fn flush(&mut self, o: &mut OutLink) {
        use std::io::IoSlice;
        let mut round_bytes = 0usize;
        let mut dead = false;
        while let OutState::Up(stream) = &mut o.state {
            if o.wire.is_empty() {
                break;
            }
            let wrote = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(o.wire.len().min(64));
                let mut iter = o.wire.iter();
                let first = iter.next().expect("non-empty");
                slices.push(IoSlice::new(&first.buf[o.woff..]));
                for item in iter.take(63) {
                    slices.push(IoSlice::new(&item.buf));
                }
                match stream.write_vectored(&slices) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            };
            round_bytes += wrote;
            o.last_write = Instant::now();
            let mut left = wrote;
            while left > 0 && !o.wire.is_empty() {
                let remaining = o.wire[0].buf.len() - o.woff;
                if left < remaining {
                    o.woff += left;
                    break;
                }
                left -= remaining;
                let done = o.wire.pop_front().expect("non-empty");
                o.woff = 0;
                if done.counted {
                    self.stats
                        .bytes_sent
                        .fetch_add(done.buf.len() as u64, Ordering::Relaxed);
                }
            }
        }
        if dead {
            self.drop_out_socket(o);
        } else if round_bytes > 0 {
            if let Some(d) = o.chaos.as_ref().and_then(|c| c.throttle_for(round_bytes)) {
                o.throttle_until = Instant::now() + d;
            }
        }
    }

    // -- timers / teardown ---------------------------------------------

    /// Cuts loose inbound connections that never finished their
    /// handshake by the deadline.
    fn expire_handshakes(&mut self) {
        let now = Instant::now();
        let expired: Vec<usize> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(tok, e)| match e {
                Some(Entry::In(c)) if c.peer.is_none() && now >= c.deadline => Some(tok),
                _ => None,
            })
            .collect();
        for tok in expired {
            self.stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
            self.drop_in(tok);
        }
    }

    /// True when some peer's lane holds frames its link could ingest
    /// right now — the loop skips parking and sweeps again instead.
    /// The gate mirrors `pump`'s pull condition, so a sweep is only
    /// forced when it will actually move frames: a backpressured or
    /// chaos-deferred link waits for its socket event or tick.
    fn ingest_ready(&self) -> bool {
        self.outs.iter().flatten().any(|o| {
            o.raw.is_empty()
                && o.deferred.is_empty()
                && o.wire
                    .iter()
                    .map(|w| w.buf.len())
                    .sum::<usize>()
                    .saturating_sub(o.woff)
                    < COALESCE_BYTES
                && !o.lane.is_empty()
        })
    }

    /// True once every outbound queue is empty: lanes closed+drained,
    /// nothing rolled or deferred, nothing counted half-written.
    fn drained(&mut self) -> bool {
        for o in self.outs.iter_mut().flatten() {
            let (frames, lane_drained) = o.lane.pop_batch(usize::MAX, Duration::ZERO);
            o.raw.extend(frames);
            if !lane_drained || o.has_undelivered() {
                return false;
            }
        }
        true
    }

    /// Final flush + close: held reorder frames go out best-effort,
    /// every socket closes so peers see EOF, supervisors read Down.
    fn teardown(&mut self) {
        for peer in 0..self.n {
            let Some(mut o) = self.outs.get_mut(peer).and_then(Option::take) else {
                continue;
            };
            // A frame held for reordering must not become silent loss
            // at teardown: flush it best-effort on a briefly-blocking
            // socket.
            if let Some(h) = o.chaos.as_mut().and_then(LinkChaos::flush_held) {
                if let OutState::Up(stream) = &mut o.state {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                    let _ = stream.write_all(&h);
                }
            }
            self.drop_out_socket(&mut o);
            self.outs[peer] = Some(o);
        }
        let toks: Vec<usize> = (0..self.slab.len())
            .filter(|&t| matches!(self.slab[t], Some(Entry::In(_))))
            .collect();
        for tok in toks {
            self.drop_in(tok);
        }
        self.stats
            .pool_allocations
            .store(self.pool.allocations(), Ordering::Relaxed);
        self.stats
            .pool_recycles
            .store(self.pool.recycles(), Ordering::Relaxed);
    }
}
