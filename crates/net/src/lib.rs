#![warn(missing_docs)]
//! # sintra-net
//!
//! Asynchronous-network substrate for **SINTRA-RS** (Cachin,
//! *"Distributing Trust on the Internet"*, DSN 2001).
//!
//! The paper's protocols are proved correct in a *completely
//! asynchronous* model where "the network is the adversary" (§2.2): the
//! adversary schedules every message, may delay any link arbitrarily
//! (but must eventually deliver between honest parties), and fully
//! controls corrupted servers. This crate substitutes for an Internet
//! deployment with two runtimes that realize exactly that model:
//!
//! * [`sim`] — a deterministic discrete-event simulator whose
//!   [`sim::Scheduler`] *is* the adversary: uniformly random, FIFO/LIFO,
//!   targeted starvation of victims, healing partitions, or arbitrary
//!   adaptive strategies with full view of message contents. Runs replay
//!   bit-identically from a seed, which is what the experiment harness
//!   needs.
//! * [`thread_runtime`] — the same automata on real OS threads with
//!   jittered routing, for integration tests under genuine concurrency.
//!
//! Protocols are written once against the [`protocol::Protocol`]
//! automaton trait and run unchanged under both.

pub mod campaign;
pub mod chaos;
pub mod codec;
pub mod faults;
pub mod protocol;
pub mod reactor;
pub mod shard;
pub mod sim;
pub mod sys;
pub mod tcp_runtime;
pub mod thread_runtime;

pub use campaign::{
    replay_case, run_campaign, BehaviorKind, CampaignHooks, CampaignPlan, CampaignReport, CaseId,
    RunOutcome, SchedulerKind,
};
pub use chaos::{ChaosConfig, LinkFaults, Partition};
pub use codec::{CodecError, Reader, WireCodec, MAX_FRAME};
pub use protocol::{Effects, Protocol};
pub use shard::{ShardNetPlan, SHARD_BIND_RETRY};
pub use sim::{
    AdaptiveScheduler, Behavior, Envelope, FifoScheduler, LifoScheduler, LossyScheduler,
    PartitionScheduler, RandomScheduler, Scheduler, SimStats, Simulation, TargetedDelayScheduler,
};
pub use tcp_runtime::{
    run_tcp, run_tcp_node, run_tcp_node_driven, run_tcp_observed, run_tcp_observed_with,
    run_tcp_with, HandshakeError, LinkState, TcpNodeConfig, TcpNodeReport, TcpRuntime,
    DEFAULT_QUEUE_BYTES,
};
pub use thread_runtime::{run_threaded, ThreadRunReport};
