//! Canned Byzantine behaviors for fault-injection campaigns.
//!
//! [`Behavior::Custom`](crate::sim::Behavior) accepts arbitrary closures,
//! but writing a *convincing* Byzantine party by hand is error-prone:
//! the strongest adversaries are protocol-aware, so most constructors
//! here wrap a real protocol instance (running inside the corrupted
//! slot, with its own self-delivery loop) and subvert only its outgoing
//! traffic. That yields attackers that speak the protocol fluently —
//! valid signatures, plausible state — while equivocating, corrupting,
//! withholding, or replaying on the wire, which is exactly the §2
//! threat model: the adversary fully controls corrupted parties but
//! cannot forge honest parties' cryptography.
//!
//! The library (used by [`campaign`](crate::campaign)):
//!
//! * [`equivocator`] — sends *different* payloads to different receivers;
//! * [`replayer`] — captures traffic and re-sends it later, verbatim;
//! * [`mutator`] — bit-flips/truncates outgoing messages, exercising
//!   malformed-share and bad-signature paths;
//! * [`selective_mute`] — drops all traffic to a victim set;
//! * [`crash_recover`] — crashes at a step, rejoins later with amnesia;
//! * [`flooder`] — re-sends every incoming message many times over.

use crate::protocol::{Effects, Protocol};
use crate::sim::Behavior;
use sintra_adversary::party::{PartyId, PartySet};
use sintra_crypto::rng::SeededRng;
use std::collections::VecDeque;

/// Drives `inner` on one incoming message, looping self-addressed sends
/// back into it locally (the simulator drops corrupted parties'
/// self-sends, so the behavior must provide its own local delivery the
/// way the simulator does for honest nodes). Returns the remote sends.
fn drive_inner<P: Protocol>(
    me: PartyId,
    n: usize,
    inner: &mut P,
    pending_input: &mut Option<P::Input>,
    from: PartyId,
    msg: P::Message,
) -> Vec<(PartyId, P::Message)> {
    let mut fx: Effects<P::Message, P::Output> = Effects::for_parties(n);
    if let Some(input) = pending_input.take() {
        inner.on_input(input, &mut fx);
    }
    inner.on_message(from, msg, &mut fx);
    let mut queue: VecDeque<(PartyId, P::Message)> = fx.take_sends().into();
    let mut remote = Vec::new();
    while let Some((to, m)) = queue.pop_front() {
        if to == me {
            let mut sub: Effects<P::Message, P::Output> = Effects::for_parties(n);
            inner.on_message(me, m, &mut sub);
            queue.extend(sub.take_sends());
        } else {
            remote.push((to, m));
        }
    }
    remote
}

/// A protocol-fluent party whose outgoing sends pass through
/// `transform` (returning `None` suppresses the send). `input`, if
/// given, is fed to the inner instance before its first message — this
/// is how a corrupted *sender* still initiates the protocol it then
/// subverts. The building block behind [`equivocator`], [`mutator`],
/// and [`selective_mute`].
pub fn subverted<P, F>(
    me: PartyId,
    n: usize,
    inner: P,
    input: Option<P::Input>,
    mut transform: F,
) -> Behavior<P>
where
    P: Protocol + Send + 'static,
    P::Input: Send + 'static,
    F: FnMut(PartyId, P::Message) -> Option<P::Message> + Send + 'static,
{
    let mut inner = inner;
    let mut pending_input = input;
    Behavior::Custom(Box::new(move |from, msg, _step| {
        drive_inner(me, n, &mut inner, &mut pending_input, from, msg)
            .into_iter()
            .filter_map(|(to, m)| transform(to, m).map(|m| (to, m)))
            .collect()
    }))
}

/// Runs the protocol honestly but `mutate`s each outgoing message *per
/// receiver*: where an honest party broadcasts one value, this one may
/// tell every receiver a different story. `mutate` gets the receiver,
/// the honest message, and a deterministic RNG.
pub fn equivocator<P, F>(
    me: PartyId,
    n: usize,
    inner: P,
    input: Option<P::Input>,
    mut mutate: F,
    seed: u64,
) -> Behavior<P>
where
    P: Protocol + Send + 'static,
    P::Input: Send + 'static,
    F: FnMut(PartyId, P::Message, &mut SeededRng) -> P::Message + Send + 'static,
{
    let mut rng = SeededRng::new(seed);
    subverted(me, n, inner, input, move |to, m| {
        Some(mutate(to, m, &mut rng))
    })
}

/// Runs the protocol honestly but corrupts each outgoing message with
/// probability `percent` (bit-flips, truncations — whatever `corrupt`
/// does). Receivers must reject the mangled shares/signatures without
/// poisoning their state.
pub fn mutator<P, F>(
    me: PartyId,
    n: usize,
    inner: P,
    input: Option<P::Input>,
    mut corrupt: F,
    percent: u64,
    seed: u64,
) -> Behavior<P>
where
    P: Protocol + Send + 'static,
    P::Input: Send + 'static,
    F: FnMut(&mut P::Message, &mut SeededRng) + Send + 'static,
{
    let mut rng = SeededRng::new(seed);
    let percent = percent.min(100);
    subverted(me, n, inner, input, move |_to, mut m| {
        if rng.next_below(100) < percent {
            corrupt(&mut m, &mut rng);
        }
        Some(m)
    })
}

/// Runs the protocol honestly but silently drops everything addressed
/// to `victims` — the withholding adversary (a *message adversary* in
/// Albouy et al.'s sense, localized at one corrupted party).
pub fn selective_mute<P>(
    me: PartyId,
    n: usize,
    inner: P,
    input: Option<P::Input>,
    victims: PartySet,
) -> Behavior<P>
where
    P: Protocol + Send + 'static,
    P::Input: Send + 'static,
{
    subverted(me, n, inner, input, move |to, m| {
        if victims.contains(to) {
            None
        } else {
            Some(m)
        }
    })
}

/// Participates honestly until step `crash_at`, is silent until
/// `recover_at`, then rejoins with **amnesia**: a fresh instance from
/// `factory` that has lost all protocol state (and does not replay its
/// input). Messages arriving during the outage are lost, as for a real
/// reboot without persistent logs.
pub fn crash_recover<P, F>(
    me: PartyId,
    n: usize,
    factory: F,
    input: Option<P::Input>,
    crash_at: u64,
    recover_at: u64,
) -> Behavior<P>
where
    P: Protocol + Send + 'static,
    P::Input: Send + 'static,
    F: FnMut() -> P + Send + 'static,
{
    assert!(crash_at <= recover_at, "cannot recover before crashing");
    let mut factory = factory;
    let mut inner = factory();
    let mut pending_input = input;
    let mut crashed = false;
    Behavior::Custom(Box::new(move |from, msg, step| {
        if step >= crash_at && step < recover_at {
            if !crashed {
                crashed = true;
            }
            return Vec::new(); // down: absorb everything
        }
        if crashed && step >= recover_at {
            crashed = false;
            inner = factory(); // rejoin with amnesia
            pending_input = None;
        }
        drive_inner(me, n, &mut inner, &mut pending_input, from, msg)
    }))
}

/// Captures incoming traffic (bounded ring of `capacity`) and, on every
/// incoming message, re-sends up to two captured messages to random
/// parties. Replayed messages carry the replayer as transport-level
/// sender, so receivers see both stale duplicates and sender/content
/// mismatches.
pub fn replayer<P>(n: usize, capacity: usize, seed: u64) -> Behavior<P>
where
    P: Protocol + 'static,
{
    assert!(capacity > 0, "capacity must be positive");
    let mut rng = SeededRng::new(seed);
    let mut captured: Vec<P::Message> = Vec::new();
    Behavior::Custom(Box::new(move |_from, msg, _step| {
        let mut out = Vec::new();
        let replays = captured.len().min(2);
        for _ in 0..replays {
            let m = captured[rng.next_below(captured.len() as u64) as usize].clone();
            out.push((rng.next_below(n as u64) as usize, m));
        }
        if captured.len() < capacity {
            captured.push(msg);
        } else {
            let slot = rng.next_below(capacity as u64) as usize;
            captured[slot] = msg;
        }
        out
    }))
}

/// Re-broadcasts every incoming message `amplification` times to every
/// party — a bandwidth/state-exhaustion attacker. Honest replicas must
/// keep their per-sender buffered state bounded under this load.
pub fn flooder<P>(n: usize, amplification: usize) -> Behavior<P>
where
    P: Protocol + 'static,
{
    Behavior::Custom(Box::new(move |_from, msg: P::Message, _step| {
        let mut out = Vec::with_capacity(n * amplification);
        for _ in 0..amplification {
            for to in 0..n {
                out.push((to, msg.clone()));
            }
        }
        out
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FifoScheduler, RandomScheduler, Simulation};

    /// Broadcast-on-input, record-everything test protocol.
    #[derive(Debug)]
    struct Gossip;

    impl Protocol for Gossip {
        type Message = u64;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.broadcast(v);
        }

        fn on_message(&mut self, from: PartyId, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.output((from, v));
        }
    }

    fn gossip_nodes(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip).collect()
    }

    /// Records everything and replies to small values with value + 100
    /// (so subverted inner nodes produce observable traffic).
    #[derive(Debug)]
    struct Responder;

    impl Protocol for Responder {
        type Message = u64;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.broadcast(v);
        }

        fn on_message(&mut self, from: PartyId, v: u64, fx: &mut Effects<u64, (PartyId, u64)>) {
            fx.output((from, v));
            if v < 10 {
                fx.broadcast(v + 100);
            }
        }
    }

    #[test]
    fn equivocator_tells_each_receiver_a_different_story() {
        let mut sim = Simulation::builder(gossip_nodes(3), FifoScheduler)
            .seed(1)
            .build();
        sim.corrupt(
            2,
            equivocator(2, 3, Gossip, Some(7), |to, m, _rng| m + to as u64 * 1000, 9),
        );
        sim.input(0, 1); // wakes the equivocator
        sim.run_until_quiet(10_000);
        // The equivocator's input broadcast reached 0 and 1 with
        // receiver-dependent values.
        assert!(sim.outputs(0).contains(&(2, 7)));
        assert!(sim.outputs(1).contains(&(2, 1007)));
    }

    #[test]
    fn mutator_corrupts_some_traffic() {
        let mut sim = Simulation::builder(gossip_nodes(3), FifoScheduler)
            .seed(2)
            .build();
        sim.corrupt(
            2,
            mutator(2, 3, Gossip, Some(5), |m, _rng| *m ^= 0xdead, 100, 3),
        );
        sim.input(0, 1);
        sim.run_until_quiet(10_000);
        assert!(sim.outputs(0).contains(&(2, 5 ^ 0xdead)));
    }

    #[test]
    fn selective_mute_starves_victims_only() {
        let mut sim = Simulation::builder(gossip_nodes(3), RandomScheduler)
            .seed(3)
            .build();
        sim.corrupt(
            2,
            selective_mute(2, 3, Gossip, Some(9), PartySet::singleton(0)),
        );
        sim.input(1, 1);
        sim.run_until_quiet(10_000);
        assert!(
            !sim.outputs(0).iter().any(|(f, _)| *f == 2),
            "victim hears nothing from the muted party"
        );
        assert!(sim.outputs(1).contains(&(2, 9)), "non-victim hears it");
    }

    #[test]
    fn crash_recover_rejoins_and_speaks_again() {
        let nodes = |_| (0..3).map(|_| Responder).collect::<Vec<_>>();
        // Down from the start, back at step 2: late deliveries reach the
        // fresh post-recovery instance, which answers them.
        let mut sim = Simulation::builder(nodes(()), FifoScheduler)
            .seed(4)
            .build();
        sim.corrupt(2, crash_recover(2, 3, || Responder, None, 0, 2));
        sim.input(0, 1);
        sim.input(1, 2);
        sim.run_until_quiet(10_000);
        let spoke = sim
            .outputs(0)
            .iter()
            .chain(sim.outputs(1))
            .any(|(f, v)| *f == 2 && *v >= 100);
        assert!(spoke, "recovered party responds to post-recovery traffic");

        // Never-recovering variant stays silent forever.
        let mut down = Simulation::builder(nodes(()), FifoScheduler)
            .seed(4)
            .build();
        down.corrupt(2, crash_recover(2, 3, || Responder, None, 0, u64::MAX));
        down.input(0, 1);
        down.input(1, 2);
        down.run_until_quiet(10_000);
        let spoke = down
            .outputs(0)
            .iter()
            .chain(down.outputs(1))
            .any(|(f, _)| *f == 2);
        assert!(!spoke, "a crashed-for-good party never speaks");
    }

    #[test]
    fn replayer_resends_captured_traffic() {
        let mut sim = Simulation::builder(gossip_nodes(3), FifoScheduler)
            .seed(5)
            .build();
        sim.corrupt(2, replayer(3, 8, 6));
        for v in 1..=4 {
            sim.input(0, v);
            sim.input(1, v + 10);
        }
        sim.run_until_quiet(10_000);
        // Replayed copies arrive *from* party 2 carrying others' values.
        let replayed = sim
            .outputs(0)
            .iter()
            .chain(sim.outputs(1))
            .any(|(f, _)| *f == 2);
        assert!(replayed, "captured traffic was re-sent");
    }

    #[test]
    fn flooder_amplifies_but_terminates() {
        let mut sim = Simulation::builder(gossip_nodes(3), RandomScheduler)
            .seed(7)
            .build();
        sim.corrupt(2, flooder(3, 4));
        sim.input(0, 3);
        sim.run_until_quiet(200);
        // One message into the flooder → 12 out (self-copies dropped by
        // the simulator), on top of the 2 original remote sends.
        assert!(sim.stats().sent >= 10, "amplification visible");
    }
}
