//! Multi-group TCP cluster wiring for sharded deployments.
//!
//! A sharded RSM (see `sintra-rsm`'s `shard_router`) runs `G`
//! *independent* SINTRA groups, each an ordinary `n`-replica TCP mesh
//! with its own threshold keys and its own ordering protocol. The wire
//! format inside each mesh is exactly the single-group format — peers
//! of group `g` never talk to peers of group `g'` — so the only new
//! problem is allocation: `G × n` distinct loopback endpoints, grouped
//! so that replica `(g, i)` dials exactly the other members of `g`.
//!
//! [`ShardNetPlan`] solves that. It binds `G × n` ephemeral listeners
//! to discover free ports, releases them, and hands out per-group
//! address lists plus ready-made [`TcpNodeConfig`]s (with a short
//! `bind_retry` to absorb the release/claim race). Benchmarks and
//! tests spawn one [`run_tcp_node_driven`](crate::run_tcp_node_driven)
//! thread per `(group, replica)` pair and the meshes come up side by
//! side in one process.

use crate::tcp_runtime::TcpNodeConfig;
use sintra_adversary::party::PartyId;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// How long each node keeps retrying its listener bind: the plan's
/// ephemeral listeners are released moments before the replicas claim
/// the same ports, and on a loaded host another process can win the
/// race transiently.
pub const SHARD_BIND_RETRY: Duration = Duration::from_secs(5);

/// Address layout for `G` independent `n`-replica TCP meshes on
/// loopback.
#[derive(Clone, Debug)]
pub struct ShardNetPlan {
    /// Number of groups (shards).
    pub groups: usize,
    /// Replicas per group.
    pub n: usize,
    /// `addrs[g]` is group `g`'s address list, indexed by party id.
    pub addrs: Vec<Vec<SocketAddr>>,
}

impl ShardNetPlan {
    /// Allocates `groups × n` free loopback endpoints by binding
    /// ephemeral listeners and immediately releasing them.
    ///
    /// The returned ports are free *at allocation time*; node configs
    /// built from this plan carry [`SHARD_BIND_RETRY`] so replicas
    /// absorb any re-claim race.
    pub fn loopback(groups: usize, n: usize) -> io::Result<Self> {
        assert!(groups > 0, "need at least one group");
        assert!(n > 0, "need at least one replica per group");
        let mut listeners = Vec::with_capacity(groups * n);
        for _ in 0..groups * n {
            listeners.push(TcpListener::bind("127.0.0.1:0")?);
        }
        let mut flat = Vec::with_capacity(groups * n);
        for l in &listeners {
            flat.push(l.local_addr()?);
        }
        drop(listeners);
        let addrs = flat.chunks(n).map(<[SocketAddr]>::to_vec).collect();
        Ok(ShardNetPlan { groups, n, addrs })
    }

    /// Group `g`'s address list (indexed by party id).
    ///
    /// # Panics
    ///
    /// Panics when `group` is out of range.
    pub fn group(&self, group: usize) -> &[SocketAddr] {
        &self.addrs[group]
    }

    /// A clean-network [`TcpNodeConfig`] for replica `me` of `group`,
    /// wired to its own mesh only and carrying [`SHARD_BIND_RETRY`].
    ///
    /// # Panics
    ///
    /// Panics when `group` or `me` is out of range.
    pub fn node_config(
        &self,
        group: usize,
        me: PartyId,
        timeout: Duration,
        linger: Duration,
    ) -> TcpNodeConfig {
        assert!(me < self.n, "party {me} out of range for n={}", self.n);
        let mut cfg = TcpNodeConfig::new(me, self.addrs[group].clone(), timeout, linger);
        cfg.bind_retry = SHARD_BIND_RETRY;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn plan_allocates_distinct_grouped_endpoints() {
        let plan = ShardNetPlan::loopback(3, 4).expect("allocate plan");
        assert_eq!(plan.groups, 3);
        assert_eq!(plan.n, 4);
        assert_eq!(plan.addrs.len(), 3);
        let mut seen = BTreeSet::new();
        for g in 0..3 {
            assert_eq!(plan.group(g).len(), 4);
            for addr in plan.group(g) {
                assert!(addr.ip().is_loopback());
                assert!(seen.insert(*addr), "duplicate endpoint {addr}");
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn node_config_targets_own_group_only() {
        let plan = ShardNetPlan::loopback(2, 4).expect("allocate plan");
        let cfg = plan.node_config(1, 2, Duration::from_secs(5), Duration::from_millis(50));
        assert_eq!(cfg.me, 2);
        assert_eq!(cfg.addrs, plan.addrs[1]);
        assert_eq!(cfg.bind_retry, SHARD_BIND_RETRY);
        assert!(cfg.chaos.is_none());
        for addr in &cfg.addrs {
            assert!(!plan.addrs[0].contains(addr), "leaked group-0 endpoint");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_config_rejects_out_of_range_party() {
        let plan = ShardNetPlan::loopback(1, 2).expect("allocate plan");
        let _ = plan.node_config(0, 2, Duration::from_secs(1), Duration::ZERO);
    }
}
