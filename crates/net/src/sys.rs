//! Thin, `libc`-free Linux syscall layer for the epoll reactor.
//!
//! crates.io is unavailable to this workspace, so the reactor
//! ([`crate::reactor`]) cannot lean on `libc`/`mio`/`tokio`. Everything
//! the event loop needs beyond what `std::net` exposes is four
//! syscall families, invoked here directly via inline assembly with
//! Linux's raw-syscall convention (negative return = `-errno`):
//!
//! * `epoll_create1` / `epoll_ctl` / `epoll_wait` — readiness
//!   notification for every socket the reactor owns.
//! * `eventfd2` + `read`/`write` — the cross-thread wakeup the protocol
//!   thread rings after queuing outbound frames.
//! * `socket` / `connect` — *nonblocking* connect (`EINPROGRESS`),
//!   which `std::net::TcpStream` cannot start without blocking; the
//!   reactor arms `EPOLLOUT` and applies its own deadline.
//! * `getsockopt(SO_ERROR)` — the connect outcome once writable.
//!
//! File descriptors are carried as [`OwnedFd`]/[`BorrowedFd`]
//! (`std::os::fd`), so closing is std's job and nothing here leaks on
//! early return. Only `x86_64` and `aarch64` Linux are supported —
//! the only targets this repo builds for; [`crate::reactor`] is gated
//! on the same cfg.

#![allow(clippy::cast_possible_wrap)]

use std::io;
use std::net::SocketAddr;
use std::os::fd::{AsFd, AsRawFd, BorrowedFd, FromRawFd, OwnedFd, RawFd};

// ---------------------------------------------------------------------
// Raw syscall plumbing
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const SOCKET: usize = 41;
    pub const CONNECT: usize = 42;
    pub const GETSOCKOPT: usize = 55;
    pub const EPOLL_WAIT: usize = 232;
    pub const EPOLL_CTL: usize = 233;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const SOCKET: usize = 198;
    pub const CONNECT: usize = 203;
    pub const GETSOCKOPT: usize = 209;
    /// aarch64 has no plain `epoll_wait`; `epoll_pwait` with a null
    /// sigmask is the same call.
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CTL: usize = 21;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// Invokes a Linux syscall with up to six arguments. Returns the raw
/// kernel result: `>= 0` success, `-errno` failure.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Invokes a Linux syscall with up to six arguments. Returns the raw
/// kernel result: `>= 0` success, `-errno` failure.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a as isize => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack),
    );
    ret
}

/// Converts a raw syscall result into `io::Result`, mapping `-errno`
/// through [`io::Error::from_raw_os_error`] so `ErrorKind` matching
/// (`WouldBlock`, `Interrupted`, …) works as with std calls.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret as usize)
    }
}

// ---------------------------------------------------------------------
// epoll
// ---------------------------------------------------------------------

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: usize = 0x80000;

/// One epoll readiness record. Layout matches the kernel's
/// `struct epoll_event`, which is packed on x86_64 only.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready event mask (`EPOLLIN` | …).
    pub events: u32,
    /// The token registered with [`Epoll::add`].
    pub token: u64,
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent { events, token };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as usize,
                op as usize,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` for `events`, tagging readiness records with
    /// `token`.
    pub fn add(&self, fd: BorrowedFd<'_>, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), events, token)
    }

    /// Changes the registered interest set of `fd`.
    pub fn modify(&self, fd: BorrowedFd<'_>, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: BorrowedFd<'_>) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for readiness,
    /// filling `events`. Returns how many records are valid. A zero
    /// return is a timeout; `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            #[cfg(target_arch = "x86_64")]
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_WAIT,
                    self.fd.as_raw_fd() as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                    0,
                )
            };
            #[cfg(target_arch = "aarch64")]
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd.as_raw_fd() as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0, // null sigmask
                    8, // sigsetsize
                )
            };
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------
// eventfd
// ---------------------------------------------------------------------

const EFD_NONBLOCK: usize = 0x800;
const EFD_CLOEXEC: usize = 0x80000;

/// A nonblocking eventfd: the reactor's cross-thread doorbell. Any
/// thread may [`ring`](EventFd::ring); the reactor drains it from the
/// event loop.
#[derive(Debug)]
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0, 0, 0) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// The fd to register with epoll (level-triggered `EPOLLIN`).
    pub fn as_fd(&self) -> BorrowedFd<'_> {
        self.fd.as_fd()
    }

    /// Adds 1 to the counter, waking any `epoll_wait` on it. Safe from
    /// any thread; an `EAGAIN` (counter saturated) still leaves the fd
    /// readable, so the wakeup is never lost.
    pub fn ring(&self) {
        let one: u64 = 1;
        let _ = check(unsafe {
            syscall6(
                nr::WRITE,
                self.fd.as_raw_fd() as usize,
                std::ptr::addr_of!(one) as usize,
                8,
                0,
                0,
                0,
            )
        });
    }

    /// Resets the counter to 0 (clears readability).
    pub fn drain(&self) {
        let mut buf = 0u64;
        let _ = check(unsafe {
            syscall6(
                nr::READ,
                self.fd.as_raw_fd() as usize,
                std::ptr::addr_of_mut!(buf) as usize,
                8,
                0,
                0,
                0,
            )
        });
    }
}

// ---------------------------------------------------------------------
// Nonblocking connect
// ---------------------------------------------------------------------

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: usize = 1;
const SOCK_NONBLOCK: usize = 0x800;
const SOCK_CLOEXEC: usize = 0x80000;
const SOL_SOCKET: usize = 1;
const SO_ERROR: usize = 4;

/// `struct sockaddr_in` / `sockaddr_in6` serialized to kernel layout.
fn encode_sockaddr(addr: &SocketAddr) -> (Vec<u8>, u16) {
    match addr {
        SocketAddr::V4(v4) => {
            let mut raw = Vec::with_capacity(16);
            raw.extend_from_slice(&AF_INET.to_ne_bytes());
            raw.extend_from_slice(&v4.port().to_be_bytes());
            raw.extend_from_slice(&v4.ip().octets());
            raw.extend_from_slice(&[0u8; 8]); // sin_zero
            (raw, AF_INET)
        }
        SocketAddr::V6(v6) => {
            let mut raw = Vec::with_capacity(28);
            raw.extend_from_slice(&AF_INET6.to_ne_bytes());
            raw.extend_from_slice(&v6.port().to_be_bytes());
            raw.extend_from_slice(&v6.flowinfo().to_ne_bytes());
            raw.extend_from_slice(&v6.ip().octets());
            raw.extend_from_slice(&v6.scope_id().to_ne_bytes());
            (raw, AF_INET6)
        }
    }
}

/// What [`connect_nonblocking`] produced.
#[derive(Debug)]
pub enum ConnectStart {
    /// The three-way handshake completed immediately (loopback often
    /// does) — the socket is connected.
    Done(OwnedFd),
    /// The handshake is in flight; register `EPOLLOUT` and check
    /// [`take_socket_error`] when writable (or give up at a deadline).
    Pending(OwnedFd),
}

/// Starts a nonblocking TCP connect to `addr`. Never blocks: the
/// kernel's SYN retry schedule runs in the background while the caller
/// keeps its event loop turning — this is the reactor-side fix for the
/// blocking-dial hang.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<ConnectStart> {
    let (raw_addr, family) = encode_sockaddr(addr);
    let fd = check(unsafe {
        syscall6(
            nr::SOCKET,
            family as usize,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    })?;
    let fd = unsafe { OwnedFd::from_raw_fd(fd as RawFd) };
    let ret = check(unsafe {
        syscall6(
            nr::CONNECT,
            fd.as_raw_fd() as usize,
            raw_addr.as_ptr() as usize,
            raw_addr.len(),
            0,
            0,
            0,
        )
    });
    const EINPROGRESS: i32 = 115;
    match ret {
        Ok(_) => Ok(ConnectStart::Done(fd)),
        Err(e) if e.raw_os_error() == Some(EINPROGRESS) => Ok(ConnectStart::Pending(fd)),
        Err(e) => Err(e),
    }
}

/// Reads and clears `SO_ERROR`: `Ok(())` if the pending connect
/// succeeded, the mapped error otherwise.
pub fn take_socket_error(fd: BorrowedFd<'_>) -> io::Result<()> {
    let mut err: i32 = 0;
    let mut len: u32 = 4;
    check(unsafe {
        syscall6(
            nr::GETSOCKOPT,
            fd.as_raw_fd() as usize,
            SOL_SOCKET,
            SO_ERROR,
            std::ptr::addr_of_mut!(err) as usize,
            std::ptr::addr_of_mut!(len) as usize,
            0,
        )
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn eventfd_rings_and_drains_through_epoll() {
        let ep = Epoll::new().expect("epoll");
        let ev = EventFd::new().expect("eventfd");
        ep.add(ev.as_fd(), EPOLLIN, 7).expect("add");
        let mut events = [EpollEvent::default(); 4];
        // Nothing rung: a short wait times out.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
        ev.ring();
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].token }, 7);
        assert_ne!({ events[0].events } & EPOLLIN, 0);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0, "drained");
    }

    #[test]
    fn nonblocking_connect_completes_against_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let ep = Epoll::new().expect("epoll");
        let fd = match connect_nonblocking(&addr).expect("start connect") {
            ConnectStart::Done(fd) => fd,
            ConnectStart::Pending(fd) => {
                ep.add(fd.as_fd(), EPOLLOUT, 1).expect("add");
                let mut events = [EpollEvent::default(); 4];
                let n = ep.wait(&mut events, 5000).expect("wait");
                assert!(n >= 1, "connect became writable");
                take_socket_error(fd.as_fd()).expect("connect succeeded");
                ep.delete(fd.as_fd()).expect("del");
                fd
            }
        };
        // Promote to a std TcpStream and prove bytes flow.
        let mut stream = TcpStream::from(fd);
        stream.set_nonblocking(false).expect("blocking");
        let (mut peer, _) = listener.accept().expect("accept");
        stream.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        peer.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_the_error() {
        // Bind-then-drop finds a port that refuses connections.
        let dead = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = dead.local_addr().expect("addr");
        drop(dead);
        let started = Instant::now();
        match connect_nonblocking(&addr) {
            // Loopback RST can surface at connect() or via SO_ERROR.
            Err(_) | Ok(ConnectStart::Done(_)) => {}
            Ok(ConnectStart::Pending(fd)) => {
                let ep = Epoll::new().expect("epoll");
                ep.add(fd.as_fd(), EPOLLOUT, 1).expect("add");
                let mut events = [EpollEvent::default(); 4];
                let n = ep.wait(&mut events, 5000).expect("wait");
                assert!(n >= 1, "refused connect reports readiness");
                assert!(
                    take_socket_error(fd.as_fd()).is_err(),
                    "SO_ERROR carries the refusal"
                );
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "nonblocking connect never blocked the caller"
        );
    }
}
