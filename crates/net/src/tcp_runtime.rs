//! Loopback TCP runtime: the same protocol automata over real sockets.
//!
//! The paper's deployment target (§2.1) is n servers connected by an
//! *asynchronous point-to-point network* — the open Internet. The
//! deterministic simulator and the crossbeam thread runtime substitute
//! for that network in tests; this module closes the last gap by
//! running the automata over genuine `TcpStream`s with length-prefixed
//! binary frames (see [`crate::codec`]), so a message must actually
//! survive serialization, the kernel socket buffers, and a hostile
//! peer's framing before a protocol acts on it.
//!
//! Two entry points:
//!
//! * [`run_tcp`] / [`run_tcp_observed`] — in-process harness mirroring
//!   [`run_threaded`](crate::thread_runtime::run_threaded): n nodes on
//!   ephemeral loopback ports, one OS thread per node plus the mesh's
//!   I/O threads, a stop predicate over the global outputs.
//! * [`run_tcp_node`] — a *single* replica given explicit peer
//!   addresses, for true multi-process deployments (each OS process
//!   runs one replica; see `bench`'s `tcp_cluster` binary). The stop
//!   predicate only sees local outputs, and a configurable linger keeps
//!   the replica forwarding traffic after it has decided so slower
//!   peers can finish.
//!
//! ## Mesh layout
//!
//! Links are unidirectional: party i dials one send-socket to every
//! peer j and accepts one receive-socket from each. A connection opens
//! with an 8-byte handshake (`magic ‖ sender id`, both u32 BE); frames
//! are `u32` BE length + body, capped at [`MAX_FRAME`](crate::codec::MAX_FRAME). Outbound
//! frames pass through a per-peer writer thread that coalesces every
//! frame already queued into a single `write_all`, connects lazily
//! with exponential backoff (peers boot at different times), and
//! reconnects on write failure without losing the batch in hand.
//! Malformed inbound traffic — bad magic, absurd lengths, bodies that
//! fail to decode — kills that connection only; the counters record
//! what was seen either way.
//!
//! Per-direction byte counters are plain atomics that I/O threads
//! update and the node thread folds into its [`Obs`] metrics at exit
//! (`net.tcp_bytes_sent` / `net.tcp_bytes_recv`), honoring the flight
//! recorder's single-writer contract — sockets never touch the
//! recorder directly.

use crate::codec::{encode_frame, read_frame, WireCodec};
use crate::protocol::{Context, Effects, Protocol};
use crate::thread_runtime::ThreadRunReport;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use sintra_adversary::party::PartyId;
use sintra_obs::{Layer, MetricsSnapshot, Obs};
use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handshake magic ("SNTR"): rejects strays that are not a sintra peer.
const MAGIC: u32 = 0x534E_5452;

/// Why an inbound connection's handshake was refused. The connection is
/// dropped either way; the variants exist so rejects are *countable*
/// and diagnosable rather than silently swallowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeError {
    /// The peer closed (or stalled past the deadline) before sending
    /// the full 8-byte preamble.
    Truncated,
    /// The first word was not [`MAGIC`] — a stray or a port scanner.
    BadMagic(u32),
    /// The claimed sender id is outside `0..n`.
    BadParty {
        /// The id the peer claimed.
        claimed: u32,
        /// The mesh size it must be below.
        n: usize,
    },
}

impl core::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => write!(f, "handshake truncated"),
            Self::BadMagic(m) => write!(f, "bad handshake magic {m:#010x}"),
            Self::BadParty { claimed, n } => {
                write!(f, "claimed party {claimed} outside mesh of {n}")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Parses the 8-byte preamble (`magic ‖ sender id`, both u32 BE).
fn parse_handshake(hs: &[u8; 8], n: usize) -> Result<PartyId, HandshakeError> {
    let (magic, peer) = hs.split_at(4);
    let magic = u32::from_be_bytes(magic.try_into().map_err(|_| HandshakeError::Truncated)?);
    let claimed = u32::from_be_bytes(peer.try_into().map_err(|_| HandshakeError::Truncated)?);
    if magic != MAGIC {
        return Err(HandshakeError::BadMagic(magic));
    }
    if claimed as usize >= n {
        return Err(HandshakeError::BadParty { claimed, n });
    }
    Ok(claimed as usize)
}

/// Writer threads coalesce queued frames up to this many bytes per
/// syscall.
const COALESCE_BYTES: usize = 64 * 1024;

/// Node-loop granularity: inbox poll timeout and tick period, matching
/// the thread runtime so tick-counted protocol timeouts behave the
/// same on both runtimes.
const TICK_EVERY: Duration = Duration::from_millis(5);

/// Configuration for one replica of a TCP mesh (see [`run_tcp_node`]).
#[derive(Clone, Debug)]
pub struct TcpNodeConfig {
    /// This replica's party id (an index into `addrs`).
    pub me: PartyId,
    /// Listen/dial addresses of every party, indexed by party id.
    pub addrs: Vec<SocketAddr>,
    /// Overall wall-clock budget; the run reports `completed = false`
    /// if the stop predicate has not held by then.
    pub timeout: Duration,
    /// How long to keep processing and forwarding after the local stop
    /// predicate holds, so peers still mid-protocol can finish.
    pub linger: Duration,
    /// `Some(capacity)` enables per-node observability (flight
    /// recorder + metrics), as in
    /// [`run_threaded_observed`](crate::thread_runtime::run_threaded_observed).
    pub recorder_capacity: Option<usize>,
}

/// Outcome of a [`run_tcp_node`] run.
#[derive(Debug)]
pub struct TcpNodeReport<O> {
    /// Local outputs in delivery order.
    pub outputs: Vec<O>,
    /// Whether the stop predicate held before the timeout.
    pub completed: bool,
    /// Messages this replica addressed outside `0..n` (dropped).
    pub dropped: u64,
    /// Frame bytes written to peers (handshakes excluded).
    pub bytes_sent: u64,
    /// Frame bytes read from peers (handshakes excluded).
    pub bytes_recv: u64,
    /// Inbound connections dropped for a bad handshake (see
    /// [`HandshakeError`]).
    pub handshake_rejects: u64,
    /// Metrics snapshot — empty unless a recorder capacity was set.
    pub metrics: MetricsSnapshot,
}

/// An `io::Read` adapter that charges everything read to an atomic
/// counter, so [`read_frame`] stays oblivious to accounting.
struct CountingReader<R> {
    inner: R,
    counter: Arc<AtomicU64>,
}

impl<R: io::Read> io::Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counter.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// One replica's view of the mesh: an inbox fed by accepted
/// connections and a framed outbound lane per peer.
struct TcpMesh<M> {
    me: PartyId,
    inbox_tx: Sender<(PartyId, M)>,
    inbox_rx: Receiver<(PartyId, M)>,
    outbound: Vec<Option<Sender<Vec<u8>>>>,
    bytes_sent: Arc<AtomicU64>,
    bytes_recv: Arc<AtomicU64>,
    handshake_rejects: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
}

impl<M: WireCodec + Send + 'static> TcpMesh<M> {
    /// Starts the mesh: spawns the acceptor on `listener` and one lazy
    /// writer per peer. Returns immediately — connections establish in
    /// the background with retry/backoff while the node already runs.
    fn start(me: PartyId, addrs: &[SocketAddr], listener: TcpListener) -> io::Result<TcpMesh<M>> {
        let n = addrs.len();
        let (inbox_tx, inbox_rx) = unbounded::<(PartyId, M)>();
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let bytes_recv = Arc::new(AtomicU64::new(0));
        let handshake_rejects = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut io_threads = Vec::new();

        // Acceptor: polls non-blocking so it can observe shutdown, and
        // hands each handshaken connection to a reader thread.
        listener.set_nonblocking(true)?;
        {
            let inbox_tx = inbox_tx.clone();
            let bytes_recv = Arc::clone(&bytes_recv);
            let handshake_rejects = Arc::clone(&handshake_rejects);
            let shutdown = Arc::clone(&shutdown);
            io_threads.push(std::thread::spawn(move || {
                accept_loop::<M>(
                    listener,
                    n,
                    inbox_tx,
                    bytes_recv,
                    handshake_rejects,
                    shutdown,
                );
            }));
        }

        // Writers: one per remote peer; self-sends bypass the wire.
        let mut outbound = Vec::with_capacity(n);
        for (peer, addr) in addrs.iter().enumerate() {
            if peer == me {
                outbound.push(None);
                continue;
            }
            let (tx, rx) = unbounded::<Vec<u8>>();
            let addr = *addr;
            let bytes_sent = Arc::clone(&bytes_sent);
            let shutdown = Arc::clone(&shutdown);
            io_threads.push(std::thread::spawn(move || {
                writer_loop(addr, me, rx, bytes_sent, shutdown);
            }));
            outbound.push(Some(tx));
        }

        Ok(TcpMesh {
            me,
            inbox_tx,
            inbox_rx,
            outbound,
            bytes_sent,
            bytes_recv,
            handshake_rejects,
            shutdown,
            io_threads,
        })
    }

    /// Queues a message. Self-sends short-circuit into the inbox;
    /// remote sends are framed here (once) and handed to the peer's
    /// writer. Returns `false` for an unroutable destination.
    fn send(&self, to: PartyId, msg: M) -> bool {
        if to == self.me {
            return self.inbox_tx.send((self.me, msg)).is_ok();
        }
        let Some(lane) = self.outbound.get(to).and_then(|o| o.as_ref()) else {
            return false;
        };
        match encode_frame(&msg) {
            Some(frame) => lane.send(frame).is_ok(),
            None => false, // exceeds MAX_FRAME: refuse at origin
        }
    }

    /// Waits up to `timeout` for the next inbound message.
    fn recv_timeout(&self, timeout: Duration) -> Option<(PartyId, M)> {
        self.inbox_rx.recv_timeout(timeout).ok()
    }

    /// Flushes and tears down: writers drain their queues, close their
    /// sockets (peers see EOF), and are joined along with the acceptor.
    /// Reader threads exit on their peers' EOF and are left detached.
    fn shutdown(mut self) -> (u64, u64, u64) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.outbound.clear(); // drop senders: writers exit after drain
        for h in self.io_threads.drain(..) {
            let _ = h.join();
        }
        (
            self.bytes_sent.load(Ordering::Relaxed),
            self.bytes_recv.load(Ordering::Relaxed),
            self.handshake_rejects.load(Ordering::Relaxed),
        )
    }
}

fn accept_loop<M: WireCodec + Send + 'static>(
    listener: TcpListener,
    n: usize,
    inbox_tx: Sender<(PartyId, M)>,
    bytes_recv: Arc<AtomicU64>,
    handshake_rejects: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                // Handshake with a deadline so a silent stray cannot
                // park this loop's connection slot forever.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let mut hs = [0u8; 8];
                let verdict = match stream.read_exact(&mut hs) {
                    Ok(()) => parse_handshake(&hs, n),
                    Err(_) => Err(HandshakeError::Truncated),
                };
                let peer = match verdict {
                    Ok(peer) => peer,
                    Err(_) => {
                        handshake_rejects.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                let _ = stream.set_read_timeout(None);
                let inbox = inbox_tx.clone();
                let counter = Arc::clone(&bytes_recv);
                // Readers block on the socket and exit on EOF/error
                // (peers close their write half at shutdown) or when
                // the inbox is gone; they are not joined.
                std::thread::spawn(move || {
                    let mut counted = CountingReader {
                        inner: stream,
                        counter,
                    };
                    loop {
                        match read_frame::<M, _>(&mut counted) {
                            Ok(Some(msg)) => {
                                if inbox.send((peer, msg)).is_err() {
                                    return;
                                }
                            }
                            Ok(None) | Err(_) => return,
                        }
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn writer_loop(
    addr: SocketAddr,
    me: PartyId,
    rx: Receiver<Vec<u8>>,
    bytes_sent: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = Duration::from_millis(10);
    let mut batch: Vec<u8> = Vec::new();
    loop {
        // Pull the next batch (unless a failed write left one pending).
        if batch.is_empty() {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(frame) => {
                    batch = frame;
                    while batch.len() < COALESCE_BYTES {
                        match rx.try_recv() {
                            Ok(f) => batch.extend_from_slice(&f),
                            Err(_) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    continue;
                }
                // Queue drained and mesh torn down: flush is complete.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Ensure a connection; peers boot at their own pace, so dial
        // failures back off and retry rather than dropping frames.
        if stream.is_none() {
            stream = dial(addr, me);
            if stream.is_none() {
                if shutdown.load(Ordering::Relaxed) {
                    break; // give up; the batch is undeliverable
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
                continue;
            }
            backoff = Duration::from_millis(10);
        }
        let s = stream.as_mut().expect("connected above");
        match s.write_all(&batch) {
            Ok(()) => {
                bytes_sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
                batch.clear();
            }
            // Keep the batch; reconnect on the next iteration.
            Err(_) => stream = None,
        }
    }
    if let Some(s) = stream {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// Dials a peer and sends the handshake. `None` on any failure.
fn dial(addr: SocketAddr, me: PartyId) -> Option<TcpStream> {
    let mut s = TcpStream::connect(addr).ok()?;
    let _ = s.set_nodelay(true);
    let mut hs = [0u8; 8];
    hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
    hs[4..].copy_from_slice(&(me as u32).to_be_bytes());
    s.write_all(&hs).ok()?;
    Some(s)
}

/// Runs one replica of a TCP mesh to completion — the multi-process
/// entry point (one call per OS process; see `tcp_cluster` in the
/// bench crate).
///
/// Binds `cfg.addrs[cfg.me]`, connects to every peer with
/// retry/backoff, injects `inputs` locally, then drives the automaton:
/// inbox messages, periodic ticks, and outbound effects over the wire.
/// After `stop` first holds over the local outputs, the replica keeps
/// running for `cfg.linger` so its shares/acks still reach slower
/// peers, then tears the mesh down.
///
/// # Errors
///
/// Returns an error only for local socket setup failures (bind);
/// peer-level connection trouble is retried, not surfaced.
pub fn run_tcp_node<P>(
    cfg: &TcpNodeConfig,
    mut node: P,
    inputs: Vec<P::Input>,
    stop: impl Fn(&[P::Output]) -> bool,
) -> io::Result<TcpNodeReport<P::Output>>
where
    P: Protocol,
    P::Message: WireCodec + Send + 'static,
{
    let n = cfg.addrs.len();
    let listener = TcpListener::bind(cfg.addrs[cfg.me])?;
    let mesh: TcpMesh<P::Message> = TcpMesh::start(cfg.me, &cfg.addrs, listener)?;
    let obs = match cfg.recorder_capacity {
        Some(cap) => Obs::enabled(cap),
        None => Obs::disabled(),
    };

    let started = Instant::now();
    let deadline = started + cfg.timeout;
    let mut fx: Effects<P::Message, P::Output> = Effects::for_parties(n);
    let mut outputs: Vec<P::Output> = Vec::new();
    let mut dropped = 0u64;
    let mut completed = false;
    let mut linger_until: Option<Instant> = None;
    let mut last_tick = Instant::now();

    let ctx_at = |started: Instant, obs: &Obs| Context {
        me: cfg.me,
        n,
        at: started.elapsed().as_nanos() as u64,
        obs: obs.clone(),
    };

    {
        let ctx = ctx_at(started, &obs);
        for input in inputs {
            node.on_input_ctx(&ctx, input, &mut fx);
        }
    }

    loop {
        let now = Instant::now();
        if now > deadline {
            break;
        }
        if let Some(until) = linger_until {
            if now >= until {
                break;
            }
        }
        let mut worked = !fx.sends().is_empty() || !fx.outputs().is_empty();
        let ctx = ctx_at(started, &obs);
        if let Some((from, msg)) = mesh.recv_timeout(TICK_EVERY) {
            let handle_started = Instant::now();
            node.on_message_ctx(&ctx, from, msg, &mut fx);
            if obs.is_enabled() {
                obs.inc(Layer::Net, "recv");
                obs.observe(
                    Layer::Net,
                    "handle_ns",
                    handle_started.elapsed().as_nanos() as u64,
                );
            }
            worked = true;
        }
        if last_tick.elapsed() >= TICK_EVERY {
            last_tick = Instant::now();
            node.on_tick_ctx(&ctx, &mut fx);
            if obs.is_enabled() {
                obs.inc(Layer::Net, "tick");
            }
            worked = true;
        }
        if worked {
            outputs.extend(fx.take_outputs());
            for (to, msg) in fx.take_sends() {
                if obs.is_enabled() {
                    obs.inc(Layer::Net, "sent");
                }
                if !mesh.send(to, msg) {
                    dropped += 1;
                    if obs.is_enabled() {
                        obs.inc(Layer::Net, "dropped_route");
                    }
                }
            }
            if !completed && stop(&outputs) {
                completed = true;
                linger_until = Some(Instant::now() + cfg.linger);
            }
        }
    }

    let (bytes_sent, bytes_recv, handshake_rejects) = mesh.shutdown();
    if obs.is_enabled() {
        obs.add(Layer::Net, "tcp_bytes_sent", bytes_sent);
        obs.add(Layer::Net, "tcp_bytes_recv", bytes_recv);
        obs.add(Layer::Net, "handshake_rejected", handshake_rejects);
    }
    Ok(TcpNodeReport {
        outputs,
        completed,
        dropped,
        bytes_sent,
        bytes_recv,
        handshake_rejects,
        metrics: obs.metrics_snapshot(),
    })
}

/// Runs `nodes` against each other over loopback TCP until `stop`
/// holds over the global output vectors or `timeout` elapses — the
/// socket-backed mirror of
/// [`run_threaded`](crate::thread_runtime::run_threaded).
///
/// # Errors
///
/// Returns an error if binding the loopback listeners fails.
pub fn run_tcp<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool,
    timeout: Duration,
) -> io::Result<ThreadRunReport<P::Output>>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec + Send + 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    run_tcp_observed(nodes, inputs, stop, timeout, None)
}

/// [`run_tcp`] with per-node instrumentation (see
/// [`run_threaded_observed`](crate::thread_runtime::run_threaded_observed));
/// additionally folds the mesh byte counters into each node's metrics
/// as `net.tcp_bytes_sent` / `net.tcp_bytes_recv`.
///
/// # Errors
///
/// Returns an error if binding the loopback listeners fails.
pub fn run_tcp_observed<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool,
    timeout: Duration,
    recorder_capacity: Option<usize>,
) -> io::Result<ThreadRunReport<P::Output>>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec + Send + 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    let n = nodes.len();
    // Bind every listener first so the addresses exist before any node
    // dials out.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }

    let obs: Vec<Obs> = match recorder_capacity {
        Some(cap) => (0..n).map(|_| Obs::enabled(cap)).collect(),
        None => vec![Obs::disabled(); n],
    };
    let outputs: Arc<Mutex<Vec<Vec<P::Output>>>> =
        Arc::new(Mutex::new((0..n).map(|_| Vec::new()).collect()));
    let delivered = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let mut input_map: Vec<Vec<P::Input>> = (0..n).map(|_| Vec::new()).collect();
    for (party, input) in inputs {
        input_map[party].push(input);
    }

    let mut handles = Vec::with_capacity(n);
    for (party, mut node) in nodes.into_iter().enumerate() {
        let listener = listeners.remove(0);
        let addrs = addrs.clone();
        let my_inputs = std::mem::take(&mut input_map[party]);
        let outputs = Arc::clone(&outputs);
        let delivered = Arc::clone(&delivered);
        let dropped = Arc::clone(&dropped);
        let done = Arc::clone(&done);
        let my_obs = obs[party].clone();
        handles.push(std::thread::spawn(move || {
            let mesh: TcpMesh<P::Message> = match TcpMesh::start(party, &addrs, listener) {
                Ok(mesh) => mesh,
                Err(_) => return,
            };
            let started = Instant::now();
            let mut fx: Effects<P::Message, P::Output> = Effects::for_parties(n);
            let mut last_tick = Instant::now();
            {
                let ctx = Context {
                    me: party,
                    n,
                    at: 0,
                    obs: my_obs.clone(),
                };
                for input in my_inputs {
                    node.on_input_ctx(&ctx, input, &mut fx);
                }
            }
            loop {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                let mut worked = !fx.sends().is_empty() || !fx.outputs().is_empty();
                let ctx = Context {
                    me: party,
                    n,
                    at: started.elapsed().as_nanos() as u64,
                    obs: my_obs.clone(),
                };
                if let Some((from, msg)) = mesh.recv_timeout(TICK_EVERY) {
                    let handle_started = Instant::now();
                    node.on_message_ctx(&ctx, from, msg, &mut fx);
                    if my_obs.is_enabled() {
                        my_obs.inc(Layer::Net, "recv");
                        my_obs.observe(
                            Layer::Net,
                            "handle_ns",
                            handle_started.elapsed().as_nanos() as u64,
                        );
                    }
                    delivered.fetch_add(1, Ordering::Relaxed);
                    worked = true;
                }
                if last_tick.elapsed() >= TICK_EVERY {
                    last_tick = Instant::now();
                    node.on_tick_ctx(&ctx, &mut fx);
                    if my_obs.is_enabled() {
                        my_obs.inc(Layer::Net, "tick");
                    }
                    worked = true;
                }
                if worked {
                    let outs = fx.take_outputs();
                    if !outs.is_empty() {
                        outputs.lock()[party].extend(outs);
                    }
                    for (to, msg) in fx.take_sends() {
                        if my_obs.is_enabled() {
                            my_obs.inc(Layer::Net, "sent");
                        }
                        if !mesh.send(to, msg) {
                            dropped.fetch_add(1, Ordering::Relaxed);
                            if my_obs.is_enabled() {
                                my_obs.inc(Layer::Net, "dropped_route");
                            }
                        }
                    }
                }
            }
            let (bytes_sent, bytes_recv, handshake_rejects) = mesh.shutdown();
            if my_obs.is_enabled() {
                my_obs.add(Layer::Net, "tcp_bytes_sent", bytes_sent);
                my_obs.add(Layer::Net, "tcp_bytes_recv", bytes_recv);
                my_obs.add(Layer::Net, "handshake_rejected", handshake_rejects);
            }
        }));
    }

    let deadline = Instant::now() + timeout;
    let mut completed = false;
    while Instant::now() < deadline {
        if stop(&outputs.lock()) {
            completed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let outputs = Arc::try_unwrap(outputs)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    Ok(ThreadRunReport {
        outputs,
        delivered: delivered.load(Ordering::Relaxed),
        dropped: dropped.load(Ordering::Relaxed),
        completed,
        metrics: obs.iter().map(|o| o.metrics_snapshot()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecError, Reader};

    /// Gossip over real sockets: each node broadcasts its input; every
    /// node outputs what it hears.
    #[derive(Debug)]
    struct Gossip;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Word(u64);

    impl WireCodec for Word {
        fn encode_into(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_be_bytes());
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Word(r.u64()?))
        }
    }

    impl Protocol for Gossip {
        type Message = Word;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, v: u64, fx: &mut Effects<Word, (PartyId, u64)>) {
            fx.broadcast(Word(v));
        }

        fn on_message(&mut self, from: PartyId, w: Word, fx: &mut Effects<Word, (PartyId, u64)>) {
            fx.output((from, w.0));
        }
    }

    #[test]
    fn tcp_gossip_delivers_everything() {
        let n = 4;
        let nodes: Vec<Gossip> = (0..n).map(|_| Gossip).collect();
        let inputs: Vec<(PartyId, u64)> = (0..n).map(|p| (p, p as u64 * 3)).collect();
        let report = run_tcp_observed(
            nodes,
            inputs,
            move |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| o.len() >= n),
            Duration::from_secs(30),
            Some(128),
        )
        .expect("loopback sockets bind");
        assert!(report.completed, "all parties hear all four broadcasts");
        for (party, outs) in report.outputs.iter().enumerate() {
            for from in 0..n {
                assert!(
                    outs.contains(&(from, from as u64 * 3)),
                    "party {party} heard {from}"
                );
            }
        }
        let mut merged = MetricsSnapshot::default();
        for m in &report.metrics {
            merged.merge(m);
        }
        assert!(
            merged.counter("net.tcp_bytes_sent") > 0,
            "bytes crossed real sockets"
        );
        assert!(merged.counter("net.tcp_bytes_recv") > 0);
    }

    #[test]
    fn handshake_parse_classifies_errors() {
        let mut hs = [0u8; 8];
        hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
        hs[4..].copy_from_slice(&2u32.to_be_bytes());
        assert_eq!(parse_handshake(&hs, 4), Ok(2));
        assert_eq!(
            parse_handshake(&hs, 2),
            Err(HandshakeError::BadParty { claimed: 2, n: 2 })
        );
        hs[..4].copy_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        assert_eq!(
            parse_handshake(&hs, 4),
            Err(HandshakeError::BadMagic(0xDEAD_BEEF))
        );
    }

    #[test]
    fn garbage_handshakes_are_rejected_and_counted() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Peer 1's address is never dialed in this test; port 1 refuses.
        let addrs = vec![addr, "127.0.0.1:1".parse().expect("addr")];
        let mesh: TcpMesh<Word> = TcpMesh::start(0, &addrs, listener).expect("mesh");

        // Wrong magic: dropped, and the socket sees EOF, not a frame.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut hs = [0u8; 8];
            hs[..4].copy_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
            s.write_all(&hs).expect("write");
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let mut buf = [0u8; 1];
            assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "connection dropped");
        }
        // Truncated handshake: close after three bytes.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&MAGIC.to_be_bytes()[..3]).expect("write");
        }
        // Out-of-range sender id.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut hs = [0u8; 8];
            hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
            hs[4..].copy_from_slice(&7u32.to_be_bytes());
            s.write_all(&hs).expect("write");
        }
        // An honest peer still gets through afterwards.
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut hs = [0u8; 8];
        hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
        hs[4..].copy_from_slice(&1u32.to_be_bytes());
        s.write_all(&hs).expect("write");
        s.write_all(&encode_frame(&Word(7)).expect("fits"))
            .expect("write");
        let got = mesh
            .recv_timeout(Duration::from_secs(10))
            .expect("frame delivered");
        assert_eq!(got, (1, Word(7)));
        let (_, _, rejects) = mesh.shutdown();
        assert_eq!(rejects, 3, "each garbage connection counted once");
    }

    #[test]
    fn single_node_mesh_loops_back_to_itself() {
        let cfg = TcpNodeConfig {
            me: 0,
            addrs: vec!["127.0.0.1:0".parse().expect("addr")],
            timeout: Duration::from_secs(10),
            linger: Duration::from_millis(0),
            recorder_capacity: None,
        };
        let report = run_tcp_node(&cfg, Gossip, vec![42], |outs: &[(PartyId, u64)]| {
            !outs.is_empty()
        })
        .expect("bind");
        assert!(report.completed);
        assert_eq!(report.outputs, vec![(0, 42)]);
    }
}
