//! Loopback TCP runtime: the same protocol automata over real sockets.
//!
//! The paper's deployment target (§2.1) is n servers connected by an
//! *asynchronous point-to-point network* — the open Internet. The
//! deterministic simulator and the crossbeam thread runtime substitute
//! for that network in tests; this module closes the last gap by
//! running the automata over genuine `TcpStream`s with length-prefixed
//! binary frames (see [`crate::codec`]), so a message must actually
//! survive serialization, the kernel socket buffers, and a hostile
//! peer's framing before a protocol acts on it.
//!
//! Two entry points:
//!
//! * [`run_tcp`] / [`run_tcp_observed`] — in-process harness mirroring
//!   [`run_threaded`](crate::thread_runtime::run_threaded): n nodes on
//!   ephemeral loopback ports, one OS thread per node plus the mesh's
//!   I/O threads, a stop predicate over the global outputs.
//! * [`run_tcp_node`] / [`run_tcp_node_driven`] — a *single* replica
//!   given explicit peer addresses, for true multi-process deployments
//!   (each OS process runs one replica; see `bench`'s `tcp_cluster`
//!   and `tcp_chaos` binaries). The stop predicate only sees local
//!   state, and a configurable linger keeps the replica forwarding
//!   traffic after it has decided so slower peers can finish.
//!
//! ## Mesh layout
//!
//! Links are unidirectional: party i dials one send-socket to every
//! peer j and accepts one receive-socket from each. A connection opens
//! with an 8-byte handshake (`magic ‖ sender id`, both u32 BE); frames
//! are `u32` BE length + body, capped at [`MAX_FRAME`]; a zero length
//! is an idle heartbeat, not a message. Outbound frames pass through a
//! *bounded* per-peer queue (drop-oldest past a byte cap, counted as
//! `tcp_outbound_dropped`, so a crashed peer cannot grow sender memory
//! without limit) drained by a writer thread that coalesces queued
//! frames into a single `write_all`, connects lazily with jittered
//! exponential backoff (peers boot — and restart — at different
//! times), and reconnects on write failure without losing the batch in
//! hand. Malformed inbound traffic — bad magic, absurd lengths, bodies
//! that fail to decode — kills that connection only; the counters
//! record what was seen either way.
//!
//! ## Supervision
//!
//! Every outbound link runs a small state machine
//! (Connecting → Up ⇄ Degraded → Down): the writer owns the
//! connectivity transitions, readers stamp a last-heard clock that
//! idle heartbeats keep fresh, and the node loop derives Degraded from
//! staleness, exports link gauges, and — on every completed
//! dial-plus-handshake — fires
//! [`Protocol::on_link_up_ctx`], which is how the replicated state
//! machine learns that a restarted peer is back and probes it into
//! state transfer.
//!
//! ## Chaos
//!
//! A [`ChaosConfig`](crate::chaos::ChaosConfig) in [`TcpNodeConfig`]
//! interposes seeded link faults (drop/garble/delay/reorder/throttle/
//! reset and scheduled partitions — see [`crate::chaos`]) between the
//! queue and the socket of every outbound link.
//!
//! Per-direction byte counters are plain atomics that I/O threads
//! update and the node thread folds into its [`Obs`] metrics at exit
//! (`net.tcp_bytes_sent` / `net.tcp_bytes_recv`), honoring the flight
//! recorder's single-writer contract — sockets never touch the
//! recorder directly.

use crate::chaos::{ChaosConfig, ChaosCounters, LinkChaos};
use crate::codec::{encode_frame, WireCodec, MAX_FRAME};
use crate::protocol::{Context, Effects, Protocol};
use crate::thread_runtime::ThreadRunReport;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sintra_adversary::party::PartyId;
use sintra_crypto::rng::SeededRng;
use sintra_obs::{Layer, MetricsSnapshot, Obs};
use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handshake magic ("SNTR"): rejects strays that are not a sintra peer.
pub(crate) const MAGIC: u32 = 0x534E_5452;

/// Why an inbound connection's handshake was refused. The connection is
/// dropped either way; the variants exist so rejects are *countable*
/// and diagnosable rather than silently swallowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeError {
    /// The peer closed (or stalled past the deadline) before sending
    /// the full 8-byte preamble.
    Truncated,
    /// The first word was not [`MAGIC`] — a stray or a port scanner.
    BadMagic(u32),
    /// The claimed sender id is outside `0..n`.
    BadParty {
        /// The id the peer claimed.
        claimed: u32,
        /// The mesh size it must be below.
        n: usize,
    },
}

impl core::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => write!(f, "handshake truncated"),
            Self::BadMagic(m) => write!(f, "bad handshake magic {m:#010x}"),
            Self::BadParty { claimed, n } => {
                write!(f, "claimed party {claimed} outside mesh of {n}")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Parses the 8-byte preamble (`magic ‖ sender id`, both u32 BE).
pub(crate) fn parse_handshake(hs: &[u8; 8], n: usize) -> Result<PartyId, HandshakeError> {
    let (magic, peer) = hs.split_at(4);
    let magic = u32::from_be_bytes(magic.try_into().map_err(|_| HandshakeError::Truncated)?);
    let claimed = u32::from_be_bytes(peer.try_into().map_err(|_| HandshakeError::Truncated)?);
    if magic != MAGIC {
        return Err(HandshakeError::BadMagic(magic));
    }
    if claimed as usize >= n {
        return Err(HandshakeError::BadParty { claimed, n });
    }
    Ok(claimed as usize)
}

/// Writer threads coalesce queued frames up to this many bytes per
/// syscall.
pub(crate) const COALESCE_BYTES: usize = 64 * 1024;

/// Node-loop granularity: inbox poll timeout and tick period, matching
/// the thread runtime so tick-counted protocol timeouts behave the
/// same on both runtimes.
pub(crate) const TICK_EVERY: Duration = Duration::from_millis(5);

/// Default per-peer outbound queue cap. Roomy next to [`MAX_FRAME`]
/// (a single frame always fits) yet small enough that a peer that is
/// Down for minutes costs megabytes, not gigabytes.
pub const DEFAULT_QUEUE_BYTES: usize = 4 * 1024 * 1024;

/// How long the accept loop waits for a dialer's 8-byte handshake
/// before dropping the connection as [`HandshakeError::Truncated`].
pub(crate) const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(2);

/// An idle writer sends a zero-length heartbeat frame at this period so
/// the receiving side's staleness detector has something to hear.
pub(crate) const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// An Up link that has heard nothing (not even heartbeats) for this
/// long is marked Degraded.
const STALE_AFTER_MS: u64 = 1_000;

/// Hard deadline on a single outbound dial attempt. Without one, a
/// blackholed peer (SYN silently dropped — no RST) parks the blocking
/// `connect` for the kernel's SYN-retry schedule (minutes), during
/// which the jittered backoff never runs and the link never degrades.
pub(crate) const DIAL_TIMEOUT: Duration = Duration::from_secs(2);

/// Reconnect backoff bounds (the actual sleep is jittered ±50%).
pub(crate) const BACKOFF_MIN: Duration = Duration::from_millis(10);
pub(crate) const BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Which transport implementation a TCP node runs on. Both speak the
/// same wire protocol (handshake, frames, heartbeats) and honor the
/// same contracts (bounded lanes, supervision, chaos interposition),
/// so meshes of mixed runtimes interoperate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TcpRuntime {
    /// One writer thread per peer plus one detached reader per
    /// accepted connection — simple, blocking I/O.
    #[default]
    Threaded,
    /// A single epoll event loop per node driving every socket
    /// nonblocking (see [`crate::reactor`]) — O(1) threads per node
    /// regardless of mesh size.
    Reactor,
}

impl std::str::FromStr for TcpRuntime {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(TcpRuntime::Threaded),
            "reactor" => Ok(TcpRuntime::Reactor),
            other => Err(format!("unknown runtime {other:?} (threaded|reactor)")),
        }
    }
}

impl core::fmt::Display for TcpRuntime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            TcpRuntime::Threaded => "threaded",
            TcpRuntime::Reactor => "reactor",
        })
    }
}

/// Where a supervised outbound link stands. Transitions are advisory
/// timing signals (the asynchronous model admits no failure
/// detectors): Connecting/Up/Down are owned by the link's writer
/// thread, Degraded is derived by the node loop from inbound
/// staleness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkState {
    /// Dial in progress (or first dial not attempted yet).
    Connecting,
    /// Dial + handshake succeeded; writes are flowing.
    Up,
    /// Writes flow but the peer has been silent past the staleness
    /// horizon.
    Degraded,
    /// Last write or dial failed (or a partition window cut the link);
    /// redial pending.
    Down,
}

impl LinkState {
    fn as_u8(self) -> u8 {
        match self {
            LinkState::Connecting => 0,
            LinkState::Up => 1,
            LinkState::Degraded => 2,
            LinkState::Down => 3,
        }
    }

    fn from_u8(v: u8) -> LinkState {
        match v {
            0 => LinkState::Connecting,
            1 => LinkState::Up,
            2 => LinkState::Degraded,
            _ => LinkState::Down,
        }
    }
}

/// Shared per-peer link telemetry: the writer publishes connectivity,
/// readers stamp the last-heard clock, the node loop consumes both.
#[derive(Debug)]
pub(crate) struct LinkSupervisor {
    state: AtomicU8,
    /// Successful dial+handshake count; every increment is a Down→Up
    /// (or first) transition the node loop turns into an
    /// `on_link_up_ctx` callback.
    pub(crate) up_epochs: AtomicU64,
    /// Milliseconds since mesh start when the peer was last heard
    /// (frame or heartbeat), plus one; 0 means never.
    pub(crate) last_rx_ms: AtomicU64,
}

impl LinkSupervisor {
    pub(crate) fn new() -> LinkSupervisor {
        LinkSupervisor {
            state: AtomicU8::new(LinkState::Connecting.as_u8()),
            up_epochs: AtomicU64::new(0),
            last_rx_ms: AtomicU64::new(0),
        }
    }

    pub(crate) fn set(&self, s: LinkState) {
        self.state.store(s.as_u8(), Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> LinkState {
        LinkState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Stamps the last-heard clock with `elapsed` since the mesh epoch.
    pub(crate) fn touch(&self, elapsed: Duration) {
        self.last_rx_ms
            .store(elapsed.as_millis() as u64 + 1, Ordering::Relaxed);
    }
}

/// Bounded outbound queue for one peer: drop-oldest past `cap` bytes,
/// every drop counted. Bounding here is what keeps a sender's memory
/// flat while a peer is Down — the PR-5 bounded-memory guarantee
/// extended to the wire.
///
/// Locking is *poison-tolerant*: a writer thread that panics while
/// holding the mutex used to poison it, converting one dead link into
/// a panic on the protocol thread's next `push` — a whole-node crash
/// bought by a single I/O failure. Now the guard is recovered (the
/// queue state is always consistent at every await point: byte
/// accounting happens under the same critical section as the queue
/// mutation), the recovery is counted in `lane_poisoned`, and the link
/// merely stays Down until redial.
#[derive(Debug)]
pub(crate) struct Lane {
    inner: std::sync::Mutex<LaneInner>,
    cv: std::sync::Condvar,
    cap: usize,
    dropped: Arc<AtomicU64>,
    poisoned: Arc<AtomicU64>,
}

#[derive(Debug, Default)]
struct LaneInner {
    q: VecDeque<Vec<u8>>,
    bytes: usize,
    closed: bool,
}

impl Lane {
    pub(crate) fn new(cap: usize, dropped: Arc<AtomicU64>, poisoned: Arc<AtomicU64>) -> Lane {
        Lane {
            inner: std::sync::Mutex::new(LaneInner::default()),
            cv: std::sync::Condvar::new(),
            cap: cap.max(MAX_FRAME + 4),
            dropped,
            poisoned,
        }
    }

    /// Locks the queue, recovering (and counting) a poisoned mutex
    /// instead of propagating the dead thread's panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, LaneInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(e) => {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                e.into_inner()
            }
        }
    }

    /// Queues a frame, evicting oldest frames past the cap (the newest
    /// frame always survives). Returns `false` once closed.
    pub(crate) fn push(&self, frame: Vec<u8>) -> bool {
        let mut g = self.lock();
        if g.closed {
            return false;
        }
        g.bytes += frame.len();
        g.q.push_back(frame);
        while g.bytes > self.cap && g.q.len() > 1 {
            if let Some(old) = g.q.pop_front() {
                g.bytes -= old.len();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(g);
        self.cv.notify_one();
        true
    }

    /// Takes up to `max_bytes` of queued frames, waiting up to
    /// `timeout` when empty. The boolean is true once the lane is
    /// closed *and* drained — the writer's signal to exit.
    pub(crate) fn pop_batch(&self, max_bytes: usize, timeout: Duration) -> (Vec<Vec<u8>>, bool) {
        let mut g = self.lock();
        if g.q.is_empty() && !g.closed && !timeout.is_zero() {
            g = match self.cv.wait_timeout(g, timeout) {
                Ok((guard, _)) => guard,
                Err(e) => {
                    self.poisoned.fetch_add(1, Ordering::Relaxed);
                    e.into_inner().0
                }
            };
        }
        let mut out = Vec::new();
        let mut taken = 0usize;
        while taken < max_bytes {
            let Some(f) = g.q.pop_front() else { break };
            g.bytes -= f.len();
            taken += f.len();
            out.push(f);
        }
        let drained = g.closed && g.q.is_empty();
        (out, drained)
    }

    /// Bytes currently queued (the bounded-memory tests assert on it).
    #[cfg(test)]
    fn queued_bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Whether nothing is queued (the reactor's park gate checks this
    /// before sleeping).
    pub(crate) fn is_empty(&self) -> bool {
        self.lock().q.is_empty()
    }

    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

/// Configuration for one replica of a TCP mesh (see [`run_tcp_node`]).
#[derive(Clone, Debug)]
pub struct TcpNodeConfig {
    /// This replica's party id (an index into `addrs`).
    pub me: PartyId,
    /// Listen/dial addresses of every party, indexed by party id.
    pub addrs: Vec<SocketAddr>,
    /// Overall wall-clock budget; the run reports `completed = false`
    /// if the stop predicate has not held by then.
    pub timeout: Duration,
    /// How long to keep processing and forwarding after the local stop
    /// predicate holds, so peers still mid-protocol can finish.
    pub linger: Duration,
    /// `Some(capacity)` enables per-node observability (flight
    /// recorder + metrics), as in
    /// [`run_threaded_observed`](crate::thread_runtime::run_threaded_observed).
    pub recorder_capacity: Option<usize>,
    /// Seeded link-fault schedule for this node's outbound links;
    /// `None` runs a clean network.
    pub chaos: Option<ChaosConfig>,
    /// Per-peer outbound queue cap in bytes (see
    /// [`DEFAULT_QUEUE_BYTES`]); drop-oldest past it.
    pub queue_bytes: usize,
    /// Keep retrying a failed listener bind for this long — a replica
    /// restarted onto its old port races the kernel's TIME_WAIT
    /// teardown of its predecessor's sockets.
    pub bind_retry: Duration,
    /// Which transport implementation drives the sockets (see
    /// [`TcpRuntime`]); both speak the same wire protocol.
    pub runtime: TcpRuntime,
}

impl TcpNodeConfig {
    /// A clean-network config with default queue bound, no chaos, no
    /// bind retry, and no recorder.
    pub fn new(me: PartyId, addrs: Vec<SocketAddr>, timeout: Duration, linger: Duration) -> Self {
        TcpNodeConfig {
            me,
            addrs,
            timeout,
            linger,
            recorder_capacity: None,
            chaos: None,
            queue_bytes: DEFAULT_QUEUE_BYTES,
            bind_retry: Duration::ZERO,
            runtime: TcpRuntime::default(),
        }
    }
}

/// Outcome of a [`run_tcp_node`] run.
#[derive(Debug)]
pub struct TcpNodeReport<O> {
    /// Local outputs in delivery order.
    pub outputs: Vec<O>,
    /// Whether the stop predicate held before the timeout.
    pub completed: bool,
    /// Messages this replica addressed outside `0..n` (dropped).
    pub dropped: u64,
    /// Frame bytes written to peers (handshakes excluded).
    pub bytes_sent: u64,
    /// Frame bytes read from peers (handshakes excluded).
    pub bytes_recv: u64,
    /// Inbound connections dropped for a bad handshake (see
    /// [`HandshakeError`]).
    pub handshake_rejects: u64,
    /// Frames evicted from bounded outbound queues (drop-oldest).
    pub outbound_dropped: u64,
    /// Poisoned-lane recoveries: a writer thread died mid-lock and the
    /// guard was recovered instead of propagating the panic. Nonzero
    /// means a link failed hard but the node kept running.
    pub lane_poisoned: u64,
    /// Chaos interposer tallies: (dropped, garbled, resets, delayed,
    /// reordered) — all zero without a [`ChaosConfig`].
    pub chaos_counts: (u64, u64, u64, u64, u64),
    /// Metrics snapshot — empty unless a recorder capacity was set.
    pub metrics: MetricsSnapshot,
}

/// Event-loop telemetry the reactor runtime folds into its stats;
/// all-zero on the threaded runtime.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ReactorStats {
    /// High-water mark of fds registered with epoll at once.
    pub(crate) fds_peak: u64,
    /// `epoll_wait` returns (each is one batch of events or a tick).
    pub(crate) wakeups: u64,
    /// Read-buffer pool: fresh allocations vs. recycled buffers.
    pub(crate) pool_allocations: u64,
    pub(crate) pool_recycles: u64,
}

/// Counters a mesh returns at teardown.
pub(crate) struct MeshStats {
    pub(crate) bytes_sent: u64,
    pub(crate) bytes_recv: u64,
    pub(crate) handshake_rejects: u64,
    pub(crate) outbound_dropped: u64,
    pub(crate) lane_poisoned: u64,
    pub(crate) chaos: (u64, u64, u64, u64, u64),
    pub(crate) reactor: ReactorStats,
}

/// An `io::Read` adapter that charges everything read to an atomic
/// counter, so frame reading stays oblivious to accounting.
struct CountingReader<R> {
    inner: R,
    counter: Arc<AtomicU64>,
}

impl<R: io::Read> io::Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counter.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

/// What one read from a peer connection produced.
enum WireEvent<M> {
    /// A decoded message frame.
    Msg(M),
    /// A zero-length heartbeat frame (liveness only, nothing to
    /// deliver).
    Heartbeat,
    /// Clean end-of-stream at a frame boundary.
    Closed,
}

/// Reads one frame like [`crate::codec::read_frame`] but treats a
/// zero length prefix as a heartbeat instead of an empty body.
fn read_event<M: WireCodec, R: io::Read>(stream: &mut R) -> io::Result<WireEvent<M>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(WireEvent::Closed),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len == 0 {
        return Ok(WireEvent::Heartbeat);
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let msg = M::decode_exact(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(WireEvent::Msg(msg))
}

/// Tracks, per peer, the inbound socket currently owned by a reader
/// thread, so a fresh handshake from the same peer can `shutdown()`
/// its predecessor (waking the old reader into an orderly exit)
/// instead of leaking one blocked thread + fd per reconnect.
type InboundSlots = Arc<Vec<Mutex<Option<TcpStream>>>>;

/// Decrements the live-reader gauge when a reader thread exits by any
/// path (EOF, error, poisoned inbox) — Drop makes the accounting
/// panic-proof.
struct ReaderGuard(Arc<AtomicU64>);

impl Drop for ReaderGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One replica's view of the mesh: an inbox fed by accepted
/// connections, a framed bounded outbound lane per peer, and a link
/// supervisor per peer.
pub(crate) struct TcpMesh<M> {
    me: PartyId,
    epoch: Instant,
    inbox_tx: Sender<(PartyId, M)>,
    inbox_rx: Receiver<(PartyId, M)>,
    outbound: Vec<Option<Arc<Lane>>>,
    supervisors: Vec<Option<Arc<LinkSupervisor>>>,
    inbound: InboundSlots,
    #[cfg_attr(not(test), allow(dead_code))]
    live_readers: Arc<AtomicU64>,
    bytes_sent: Arc<AtomicU64>,
    bytes_recv: Arc<AtomicU64>,
    handshake_rejects: Arc<AtomicU64>,
    outbound_dropped: Arc<AtomicU64>,
    lane_poisoned: Arc<AtomicU64>,
    chaos_counters: Arc<ChaosCounters>,
    shutdown: Arc<AtomicBool>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
}

impl<M: WireCodec + Send + 'static> TcpMesh<M> {
    /// Starts the mesh: spawns the acceptor on `listener` and one lazy
    /// writer per peer. Returns immediately — connections establish in
    /// the background with retry/backoff while the node already runs.
    fn start(
        me: PartyId,
        addrs: &[SocketAddr],
        listener: TcpListener,
        chaos: Option<&ChaosConfig>,
        queue_bytes: usize,
    ) -> io::Result<TcpMesh<M>> {
        let n = addrs.len();
        let epoch = Instant::now();
        let (inbox_tx, inbox_rx) = unbounded::<(PartyId, M)>();
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let bytes_recv = Arc::new(AtomicU64::new(0));
        let handshake_rejects = Arc::new(AtomicU64::new(0));
        let outbound_dropped = Arc::new(AtomicU64::new(0));
        let lane_poisoned = Arc::new(AtomicU64::new(0));
        let chaos_counters = Arc::new(ChaosCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let inbound: InboundSlots = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let live_readers = Arc::new(AtomicU64::new(0));
        let mut io_threads = Vec::new();

        let supervisors: Vec<Option<Arc<LinkSupervisor>>> = (0..n)
            .map(|p| (p != me).then(|| Arc::new(LinkSupervisor::new())))
            .collect();

        // Acceptor: polls non-blocking so it can observe shutdown, and
        // hands each handshaken connection to a reader thread.
        listener.set_nonblocking(true)?;
        {
            let inbox_tx = inbox_tx.clone();
            let bytes_recv = Arc::clone(&bytes_recv);
            let handshake_rejects = Arc::clone(&handshake_rejects);
            let shutdown = Arc::clone(&shutdown);
            let supervisors = supervisors.clone();
            let inbound = Arc::clone(&inbound);
            let live_readers = Arc::clone(&live_readers);
            io_threads.push(std::thread::spawn(move || {
                accept_loop::<M>(
                    listener,
                    n,
                    inbox_tx,
                    bytes_recv,
                    handshake_rejects,
                    shutdown,
                    supervisors,
                    inbound,
                    live_readers,
                    epoch,
                );
            }));
        }

        // Writers: one per remote peer; self-sends bypass the wire.
        let mut outbound = Vec::with_capacity(n);
        for (peer, addr) in addrs.iter().enumerate() {
            if peer == me {
                outbound.push(None);
                continue;
            }
            let lane = Arc::new(Lane::new(
                queue_bytes,
                Arc::clone(&outbound_dropped),
                Arc::clone(&lane_poisoned),
            ));
            let task = WriterTask {
                addr: *addr,
                me,
                lane: Arc::clone(&lane),
                sup: Arc::clone(supervisors[peer].as_ref().expect("remote peer")),
                chaos: chaos.map(|c| LinkChaos::new(c, me, peer, Arc::clone(&chaos_counters))),
                epoch,
                bytes_sent: Arc::clone(&bytes_sent),
                shutdown: Arc::clone(&shutdown),
                // Jitter decorrelates *processes*, not replays: seeded
                // off the pid so n−1 survivors of a crash don't redial
                // the restarted replica in lockstep.
                jitter: SeededRng::new(
                    (std::process::id() as u64) << 32 | ((me as u64) << 16) | peer as u64,
                ),
            };
            io_threads.push(std::thread::spawn(move || writer_loop(task)));
            outbound.push(Some(lane));
        }

        Ok(TcpMesh {
            me,
            epoch,
            inbox_tx,
            inbox_rx,
            outbound,
            supervisors,
            inbound,
            live_readers,
            bytes_sent,
            bytes_recv,
            handshake_rejects,
            outbound_dropped,
            lane_poisoned,
            chaos_counters,
            shutdown,
            io_threads,
        })
    }

    /// Queues a message. Self-sends short-circuit into the inbox;
    /// remote sends are framed here (once) and handed to the peer's
    /// bounded lane. Returns `false` for an unroutable destination.
    fn send(&self, to: PartyId, msg: M) -> bool {
        if to == self.me {
            return self.inbox_tx.send((self.me, msg)).is_ok();
        }
        let Some(lane) = self.outbound.get(to).and_then(|o| o.as_ref()) else {
            return false;
        };
        match encode_frame(&msg) {
            Some(frame) => lane.push(frame),
            None => false, // exceeds MAX_FRAME: refuse at origin
        }
    }

    /// Waits up to `timeout` for the next inbound message.
    fn recv_timeout(&self, timeout: Duration) -> Option<(PartyId, M)> {
        self.inbox_rx.recv_timeout(timeout).ok()
    }

    /// Flushes and tears down: writers drain their lanes, close their
    /// sockets (peers see EOF), and are joined along with the acceptor.
    /// Inbound sockets are shut down explicitly so their reader
    /// threads exit promptly instead of waiting for peer EOF.
    fn shutdown(mut self) -> MeshStats {
        self.shutdown.store(true, Ordering::Relaxed);
        for lane in self.outbound.iter().flatten() {
            lane.close();
        }
        for h in self.io_threads.drain(..) {
            let _ = h.join();
        }
        for slot in self.inbound.iter() {
            if let Some(s) = slot.lock().take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        MeshStats {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            handshake_rejects: self.handshake_rejects.load(Ordering::Relaxed),
            outbound_dropped: self.outbound_dropped.load(Ordering::Relaxed),
            lane_poisoned: self.lane_poisoned.load(Ordering::Relaxed),
            chaos: self.chaos_counters.snapshot(),
            reactor: ReactorStats::default(),
        }
    }

    /// Reader threads currently alive (flap-leak regression gauge).
    #[cfg(test)]
    fn live_readers(&self) -> u64 {
        self.live_readers.load(Ordering::Relaxed)
    }
}

#[allow(clippy::too_many_arguments)] // internal: mirrors the mesh fields
fn accept_loop<M: WireCodec + Send + 'static>(
    listener: TcpListener,
    n: usize,
    inbox_tx: Sender<(PartyId, M)>,
    bytes_recv: Arc<AtomicU64>,
    handshake_rejects: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    supervisors: Vec<Option<Arc<LinkSupervisor>>>,
    inbound: InboundSlots,
    live_readers: Arc<AtomicU64>,
    epoch: Instant,
) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                // Handshake with a deadline so a silent stray cannot
                // park this loop's connection slot forever.
                let _ = stream.set_read_timeout(Some(HANDSHAKE_DEADLINE));
                let mut hs = [0u8; 8];
                let verdict = match stream.read_exact(&mut hs) {
                    Ok(()) => parse_handshake(&hs, n),
                    Err(_) => Err(HandshakeError::Truncated),
                };
                let peer = match verdict {
                    Ok(peer) => peer,
                    Err(_) => {
                        handshake_rejects.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                let _ = stream.set_read_timeout(None);
                // Reap the previous reader for this peer: a flapping
                // or crashed-without-close peer re-handshakes while
                // the old reader is still parked in `read` on a dead
                // socket. SHUT_RD wakes that reader into an orderly
                // exit — but, unlike a full shutdown, frames already
                // acked into the receive buffer stay readable until
                // EOF, so frames the sender counted delivered are
                // never discarded by the reap. A reconnect then costs
                // a swap instead of leaking one thread + fd each time.
                let prev = match stream.try_clone() {
                    Ok(dup) => inbound[peer].lock().replace(dup),
                    // A failed dup (fd exhaustion) only means this
                    // connection cannot be reaped early; still evict
                    // the predecessor.
                    Err(_) => inbound[peer].lock().take(),
                };
                if let Some(old) = prev {
                    let _ = old.shutdown(Shutdown::Read);
                }
                let inbox = inbox_tx.clone();
                let counter = Arc::clone(&bytes_recv);
                let sup = supervisors.get(peer).and_then(|s| s.clone());
                live_readers.fetch_add(1, Ordering::Relaxed);
                let guard = ReaderGuard(Arc::clone(&live_readers));
                // Readers block on the socket and exit on EOF/error
                // (peers close their write half at shutdown, and a
                // replacement handshake shuts the socket down) or when
                // the inbox is gone; they are not joined.
                std::thread::spawn(move || {
                    let _guard = guard;
                    let mut counted = CountingReader {
                        inner: stream,
                        counter,
                    };
                    let touch = |sup: &Option<Arc<LinkSupervisor>>| {
                        if let Some(sup) = sup {
                            sup.last_rx_ms
                                .store(epoch.elapsed().as_millis() as u64 + 1, Ordering::Relaxed);
                        }
                    };
                    loop {
                        match read_event::<M, _>(&mut counted) {
                            Ok(WireEvent::Msg(msg)) => {
                                touch(&sup);
                                if inbox.send((peer, msg)).is_err() {
                                    return;
                                }
                            }
                            Ok(WireEvent::Heartbeat) => touch(&sup),
                            Ok(WireEvent::Closed) | Err(_) => return,
                        }
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Everything one writer thread owns.
struct WriterTask {
    addr: SocketAddr,
    me: PartyId,
    lane: Arc<Lane>,
    sup: Arc<LinkSupervisor>,
    chaos: Option<LinkChaos>,
    epoch: Instant,
    bytes_sent: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    jitter: SeededRng,
}

fn writer_loop(mut t: WriterTask) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = BACKOFF_MIN;
    // `raw` holds frames not yet rolled through the chaos interposer;
    // `ready` holds frames that must reach the wire (survivors of a
    // failed write are retried, never re-rolled).
    let mut raw: VecDeque<Vec<u8>> = VecDeque::new();
    let mut ready: Vec<Vec<u8>> = Vec::new();
    let mut last_write = Instant::now();
    loop {
        // Scheduled partitions: a cut link closes and holds. Frames
        // wait in the bounded lane (drop-oldest under pressure), so
        // healing resumes delivery without unbounded sender memory.
        if t.chaos
            .as_ref()
            .is_some_and(|c| c.cut_at(t.epoch.elapsed()))
        {
            if stream.take().is_some() {
                t.sup.set(LinkState::Down);
            }
            if t.shutdown.load(Ordering::Relaxed) {
                break; // don't hold teardown hostage to a window
            }
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        // Pull the next batch (unless earlier frames are pending).
        if ready.is_empty() && raw.is_empty() {
            let (frames, drained) = t.lane.pop_batch(COALESCE_BYTES, Duration::from_millis(50));
            if frames.is_empty() {
                if drained {
                    break; // lane closed and flushed: exit
                }
                // A frame held back for reordering must not starve
                // when the link goes idle: with no successor coming,
                // release it now (it already rolled its faults, so it
                // goes straight to the write path).
                if let Some(held) = t.chaos.as_mut().and_then(|c| c.flush_held()) {
                    ready.push(held);
                } else {
                    match stream.as_mut() {
                        // Idle: keep the peer's staleness detector fed.
                        Some(s) => {
                            if last_write.elapsed() >= HEARTBEAT_EVERY
                                && !s.write_all(&0u32.to_be_bytes()).is_ok_and(|()| {
                                    last_write = Instant::now();
                                    true
                                })
                            {
                                stream = None;
                                t.sup.set(LinkState::Down);
                            }
                        }
                        // Down and nothing queued: still redial (with
                        // the same jittered backoff), so heartbeats
                        // resume and a restarted peer gets its link-up
                        // probe even on an otherwise-quiet mesh.
                        None => {
                            t.sup.set(LinkState::Connecting);
                            stream = dial(t.addr, t.me);
                            match stream {
                                Some(_) => {
                                    backoff = BACKOFF_MIN;
                                    t.sup.set(LinkState::Up);
                                    t.sup.up_epochs.fetch_add(1, Ordering::Relaxed);
                                }
                                None => {
                                    t.sup.set(LinkState::Down);
                                    if t.shutdown.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    let nominal = backoff.as_nanos() as u64;
                                    let sleep_ns =
                                        nominal / 2 + t.jitter.next_below(nominal.max(1));
                                    std::thread::sleep(Duration::from_nanos(sleep_ns));
                                    backoff = (backoff * 2).min(BACKOFF_MAX);
                                }
                            }
                        }
                    }
                    continue;
                }
            } else {
                raw.extend(frames);
            }
        }
        // Roll link faults frame by frame, in queue order.
        if ready.is_empty() {
            match t.chaos.as_mut() {
                Some(c) if c.frame_faults_active() => {
                    let mut reset = false;
                    while ready.is_empty() && !reset {
                        let Some(f) = raw.pop_front() else { break };
                        let plan = c.plan(f);
                        if let Some(d) = plan.delay {
                            std::thread::sleep(d);
                        }
                        ready.extend(plan.frames);
                        reset = plan.reset_first;
                    }
                    if reset && stream.take().is_some() {
                        t.sup.set(LinkState::Down);
                    }
                    if ready.is_empty() {
                        continue; // everything dropped or held back
                    }
                }
                _ => ready.extend(raw.drain(..)),
            }
        }
        // Ensure a connection; peers boot (and restart) at their own
        // pace, so dial failures back off with jitter and retry rather
        // than dropping frames.
        if stream.is_none() {
            t.sup.set(LinkState::Connecting);
            stream = dial(t.addr, t.me);
            if stream.is_none() {
                t.sup.set(LinkState::Down);
                if t.shutdown.load(Ordering::Relaxed) {
                    break; // give up; the frames are undeliverable
                }
                // Jittered exponential backoff (50%–150% of nominal):
                // lockstep redials from n−1 survivors would hammer a
                // restarting replica in synchronized waves.
                let nominal = backoff.as_nanos() as u64;
                let sleep_ns = nominal / 2 + t.jitter.next_below(nominal.max(1));
                std::thread::sleep(Duration::from_nanos(sleep_ns));
                backoff = (backoff * 2).min(BACKOFF_MAX);
                continue;
            }
            backoff = BACKOFF_MIN;
            t.sup.set(LinkState::Up);
            t.sup.up_epochs.fetch_add(1, Ordering::Relaxed);
        }
        let s = stream.as_mut().expect("connected above");
        let batch_len: usize = ready.iter().map(Vec::len).sum();
        match write_frames(s, &ready) {
            Ok(()) => {
                t.bytes_sent.fetch_add(batch_len as u64, Ordering::Relaxed);
                last_write = Instant::now();
                ready.clear();
                if let Some(d) = t.chaos.as_ref().and_then(|c| c.throttle_for(batch_len)) {
                    std::thread::sleep(d);
                }
            }
            // Keep the frames; reconnect on the next iteration.
            Err(_) => {
                stream = None;
                t.sup.set(LinkState::Down);
            }
        }
    }
    // A frame held for reordering must not become silent loss at
    // teardown: flush it best-effort.
    if let Some(h) = t.chaos.as_mut().and_then(|c| c.flush_held()) {
        if let Some(s) = stream.as_mut() {
            let _ = s.write_all(&h);
        }
    }
    t.sup.set(LinkState::Down);
    if let Some(s) = stream {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// Writes a coalesced batch of frames with vectored I/O instead of
/// copying them into one contiguous buffer — at batched-proposal rates
/// the copy was a measurable per-round cost on the writer thread.
/// Advances across slice boundaries manually because `write_vectored`
/// may accept any prefix of the total.
fn write_frames(s: &mut TcpStream, frames: &[Vec<u8>]) -> std::io::Result<()> {
    use std::io::IoSlice;
    // Index of the first unwritten frame and the offset into it.
    let mut frame = 0usize;
    let mut offset = 0usize;
    while frame < frames.len() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len() - frame);
        slices.push(IoSlice::new(&frames[frame][offset..]));
        slices.extend(frames[frame + 1..].iter().map(|f| IoSlice::new(f)));
        let mut wrote = match s.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ));
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while frame < frames.len() {
            let remaining = frames[frame].len() - offset;
            if wrote < remaining {
                offset += wrote;
                break;
            }
            wrote -= remaining;
            frame += 1;
            offset = 0;
        }
    }
    Ok(())
}

/// Dials a peer and sends the handshake. `None` on any failure.
///
/// The connect carries a hard deadline ([`DIAL_TIMEOUT`]): a
/// blackholed peer (packets silently dropped, no RST — a firewalled
/// host or a dead VM with a live route) must fail the dial in bounded
/// time so the jittered backoff keeps running, instead of parking the
/// writer thread on the kernel's SYN-retry schedule for minutes. The
/// handshake write gets the same deadline for the same reason, then
/// the socket reverts to blocking writes for the steady state.
fn dial(addr: SocketAddr, me: PartyId) -> Option<TcpStream> {
    let mut s = TcpStream::connect_timeout(&addr, DIAL_TIMEOUT).ok()?;
    let _ = s.set_nodelay(true);
    let _ = s.set_write_timeout(Some(DIAL_TIMEOUT));
    let mut hs = [0u8; 8];
    hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
    hs[4..].copy_from_slice(&(me as u32).to_be_bytes());
    s.write_all(&hs).ok()?;
    let _ = s.set_write_timeout(None);
    Some(s)
}

/// Per-node link bookkeeping for the node loops: turns writer-side
/// up-epoch increments into `on_link_up_ctx` callbacks, derives the
/// Degraded state from inbound staleness, and exports link gauges.
/// Runtime-agnostic: both meshes expose the same supervisor array.
pub(crate) struct LinkWatch {
    seen_epochs: Vec<u64>,
}

impl LinkWatch {
    pub(crate) fn new(n: usize) -> LinkWatch {
        LinkWatch {
            seen_epochs: vec![0; n],
        }
    }

    pub(crate) fn poll<P: Protocol>(
        &mut self,
        epoch: Instant,
        supervisors: &[Option<Arc<LinkSupervisor>>],
        node: &mut P,
        ctx: &Context,
        fx: &mut Effects<P::Message, P::Output>,
    ) {
        let now_ms = epoch.elapsed().as_millis() as u64;
        let mut up = 0u64;
        for (peer, sup) in supervisors.iter().enumerate() {
            let Some(sup) = sup else { continue };
            let e = sup.up_epochs.load(Ordering::Relaxed);
            if e > self.seen_epochs[peer] {
                self.seen_epochs[peer] = e;
                ctx.obs.inc(Layer::Net, "link_up");
                node.on_link_up_ctx(ctx, peer, fx);
            }
            let last = sup.last_rx_ms.load(Ordering::Relaxed);
            let stale = last != 0 && now_ms.saturating_sub(last) > STALE_AFTER_MS;
            match sup.get() {
                LinkState::Up if stale => {
                    sup.set(LinkState::Degraded);
                    ctx.obs.inc(Layer::Net, "link_degraded");
                }
                LinkState::Degraded if !stale => sup.set(LinkState::Up),
                _ => {}
            }
            if matches!(sup.get(), LinkState::Up | LinkState::Degraded) {
                up += 1;
            }
        }
        if ctx.obs.is_enabled() {
            ctx.obs.gauge_set(Layer::Net, "links_up", up);
        }
    }
}

/// Runtime-dispatching mesh handle: the node loops talk to this and
/// it forwards to whichever transport the config selected. Both
/// variants expose identical semantics (same wire protocol, same
/// bounded lanes, same supervisor array), so everything above the
/// mesh is runtime-oblivious.
pub(crate) enum Mesh<M> {
    Threaded(TcpMesh<M>),
    Reactor(crate::reactor::ReactorMesh<M>),
}

impl<M: WireCodec + Send + 'static> Mesh<M> {
    pub(crate) fn start(
        runtime: TcpRuntime,
        me: PartyId,
        addrs: &[SocketAddr],
        listener: TcpListener,
        chaos: Option<&ChaosConfig>,
        queue_bytes: usize,
    ) -> io::Result<Mesh<M>> {
        match runtime {
            TcpRuntime::Threaded => Ok(Mesh::Threaded(TcpMesh::start(
                me,
                addrs,
                listener,
                chaos,
                queue_bytes,
            )?)),
            TcpRuntime::Reactor => Ok(Mesh::Reactor(crate::reactor::ReactorMesh::start(
                me,
                addrs,
                listener,
                chaos,
                queue_bytes,
            )?)),
        }
    }

    pub(crate) fn send(&self, to: PartyId, msg: M) -> bool {
        match self {
            Mesh::Threaded(m) => m.send(to, msg),
            Mesh::Reactor(m) => m.send(to, msg),
        }
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Option<(PartyId, M)> {
        match self {
            Mesh::Threaded(m) => m.recv_timeout(timeout),
            Mesh::Reactor(m) => m.recv_timeout(timeout),
        }
    }

    pub(crate) fn epoch(&self) -> Instant {
        match self {
            Mesh::Threaded(m) => m.epoch,
            Mesh::Reactor(m) => m.epoch(),
        }
    }

    pub(crate) fn supervisors(&self) -> &[Option<Arc<LinkSupervisor>>] {
        match self {
            Mesh::Threaded(m) => &m.supervisors,
            Mesh::Reactor(m) => m.supervisors(),
        }
    }

    pub(crate) fn shutdown(self) -> MeshStats {
        match self {
            Mesh::Threaded(m) => m.shutdown(),
            Mesh::Reactor(m) => m.shutdown(),
        }
    }
}

/// Binds the local listener, retrying for `cfg.bind_retry` — a
/// restarted replica can race TIME_WAIT teardown on its own port.
fn bind_with_retry(cfg: &TcpNodeConfig) -> io::Result<TcpListener> {
    let deadline = Instant::now() + cfg.bind_retry;
    loop {
        match TcpListener::bind(cfg.addrs[cfg.me]) {
            Ok(l) => return Ok(l),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Runs one replica of a TCP mesh to completion — the multi-process
/// entry point (one call per OS process; see `tcp_cluster` in the
/// bench crate).
///
/// Binds `cfg.addrs[cfg.me]`, connects to every peer with
/// retry/backoff, injects `inputs` locally, then drives the automaton:
/// inbox messages, periodic ticks, link-up callbacks, and outbound
/// effects over the wire. After `stop` first holds over the local
/// outputs, the replica keeps running for `cfg.linger` so its
/// shares/acks still reach slower peers, then tears the mesh down.
///
/// # Errors
///
/// Returns an error only for local socket setup failures (bind);
/// peer-level connection trouble is retried, not surfaced.
pub fn run_tcp_node<P>(
    cfg: &TcpNodeConfig,
    node: P,
    inputs: Vec<P::Input>,
    stop: impl Fn(&[P::Output]) -> bool,
) -> io::Result<TcpNodeReport<P::Output>>
where
    P: Protocol,
    P::Message: WireCodec + Send + 'static,
{
    let mut pending = Some(inputs);
    let (report, _node) = run_tcp_node_driven(
        cfg,
        node,
        move |node, ctx, fx| {
            if let Some(inputs) = pending.take() {
                for input in inputs {
                    node.on_input_ctx(ctx, input, fx);
                }
            }
        },
        |_node, outputs| stop(outputs),
    )?;
    Ok(report)
}

/// [`run_tcp_node`] with a *driver* instead of a fixed input vector:
/// the driver runs on every tick (and once at startup) with mutable
/// access to the automaton, so a campaign can pace inputs over wall
/// time; the stop predicate sees the automaton itself, so completion
/// can key off internal state (a replica's applied watermark) rather
/// than only emitted outputs — a restarted replica that caught up by
/// state transfer never re-emits the replies it missed. Returns the
/// final automaton alongside the report for post-run inspection.
///
/// # Errors
///
/// Returns an error only for local socket setup failures (bind);
/// peer-level connection trouble is retried, not surfaced.
pub fn run_tcp_node_driven<P>(
    cfg: &TcpNodeConfig,
    mut node: P,
    mut driver: impl FnMut(&mut P, &Context, &mut Effects<P::Message, P::Output>),
    stop: impl Fn(&P, &[P::Output]) -> bool,
) -> io::Result<(TcpNodeReport<P::Output>, P)>
where
    P: Protocol,
    P::Message: WireCodec + Send + 'static,
{
    let n = cfg.addrs.len();
    let listener = bind_with_retry(cfg)?;
    let mesh: Mesh<P::Message> = Mesh::start(
        cfg.runtime,
        cfg.me,
        &cfg.addrs,
        listener,
        cfg.chaos.as_ref(),
        cfg.queue_bytes,
    )?;
    let obs = match cfg.recorder_capacity {
        Some(cap) => Obs::enabled(cap),
        None => Obs::disabled(),
    };

    let started = Instant::now();
    let deadline = started + cfg.timeout;
    let mut fx: Effects<P::Message, P::Output> = Effects::for_parties(n);
    let mut outputs: Vec<P::Output> = Vec::new();
    let mut dropped = 0u64;
    let mut completed = false;
    let mut linger_until: Option<Instant> = None;
    let mut last_tick = Instant::now();
    let mut links = LinkWatch::new(n);

    let ctx_at = |started: Instant, obs: &Obs| Context {
        me: cfg.me,
        n,
        at: started.elapsed().as_nanos() as u64,
        obs: obs.clone(),
    };

    {
        let ctx = ctx_at(started, &obs);
        driver(&mut node, &ctx, &mut fx);
    }

    loop {
        let now = Instant::now();
        if now > deadline {
            break;
        }
        if let Some(until) = linger_until {
            if now >= until {
                break;
            }
        }
        let mut worked = !fx.sends().is_empty() || !fx.outputs().is_empty();
        let ctx = ctx_at(started, &obs);
        if let Some((from, msg)) = mesh.recv_timeout(TICK_EVERY) {
            let handle_started = Instant::now();
            node.on_message_ctx(&ctx, from, msg, &mut fx);
            if obs.is_enabled() {
                obs.inc(Layer::Net, "recv");
                obs.observe(
                    Layer::Net,
                    "handle_ns",
                    handle_started.elapsed().as_nanos() as u64,
                );
            }
            worked = true;
        }
        if last_tick.elapsed() >= TICK_EVERY {
            last_tick = Instant::now();
            driver(&mut node, &ctx, &mut fx);
            node.on_tick_ctx(&ctx, &mut fx);
            if obs.is_enabled() {
                obs.inc(Layer::Net, "tick");
            }
            links.poll(mesh.epoch(), mesh.supervisors(), &mut node, &ctx, &mut fx);
            worked = true;
        }
        if worked {
            outputs.extend(fx.take_outputs());
            for (to, msg) in fx.take_sends() {
                if obs.is_enabled() {
                    obs.inc(Layer::Net, "sent");
                }
                if !mesh.send(to, msg) {
                    dropped += 1;
                    if obs.is_enabled() {
                        obs.inc(Layer::Net, "dropped_route");
                    }
                }
            }
            if !completed && stop(&node, &outputs) {
                completed = true;
                linger_until = Some(Instant::now() + cfg.linger);
            }
        }
    }

    let stats = mesh.shutdown();
    if obs.is_enabled() {
        obs.add(Layer::Net, "tcp_bytes_sent", stats.bytes_sent);
        obs.add(Layer::Net, "tcp_bytes_recv", stats.bytes_recv);
        obs.add(Layer::Net, "handshake_rejected", stats.handshake_rejects);
        obs.add(Layer::Net, "tcp_outbound_dropped", stats.outbound_dropped);
        obs.add(Layer::Net, "lane_poisoned", stats.lane_poisoned);
        let (cd, cg, cr, cl, co) = stats.chaos;
        obs.add(Layer::Net, "chaos_dropped", cd);
        obs.add(Layer::Net, "chaos_garbled", cg);
        obs.add(Layer::Net, "chaos_resets", cr);
        obs.add(Layer::Net, "chaos_delayed", cl);
        obs.add(Layer::Net, "chaos_reordered", co);
        if cfg.runtime == TcpRuntime::Reactor {
            obs.gauge_set(Layer::Net, "reactor_fds_peak", stats.reactor.fds_peak);
            obs.add(Layer::Net, "reactor_wakeups", stats.reactor.wakeups);
            obs.add(
                Layer::Net,
                "pool_allocations",
                stats.reactor.pool_allocations,
            );
            obs.add(Layer::Net, "pool_recycles", stats.reactor.pool_recycles);
        }
    }
    Ok((
        TcpNodeReport {
            outputs,
            completed,
            dropped,
            bytes_sent: stats.bytes_sent,
            bytes_recv: stats.bytes_recv,
            handshake_rejects: stats.handshake_rejects,
            outbound_dropped: stats.outbound_dropped,
            lane_poisoned: stats.lane_poisoned,
            chaos_counts: stats.chaos,
            metrics: obs.metrics_snapshot(),
        },
        node,
    ))
}

/// Runs `nodes` against each other over loopback TCP until `stop`
/// holds over the global output vectors or `timeout` elapses — the
/// socket-backed mirror of
/// [`run_threaded`](crate::thread_runtime::run_threaded).
///
/// # Errors
///
/// Returns an error if binding the loopback listeners fails.
pub fn run_tcp<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool,
    timeout: Duration,
) -> io::Result<ThreadRunReport<P::Output>>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec + Send + 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    run_tcp_observed_with(nodes, inputs, stop, timeout, None, TcpRuntime::Threaded)
}

/// [`run_tcp`] on an explicit [`TcpRuntime`] — the parameterized entry
/// the runtime-equivalence tests drive both transports through.
///
/// # Errors
///
/// Returns an error if binding the loopback listeners fails.
pub fn run_tcp_with<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool,
    timeout: Duration,
    runtime: TcpRuntime,
) -> io::Result<ThreadRunReport<P::Output>>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec + Send + 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    run_tcp_observed_with(nodes, inputs, stop, timeout, None, runtime)
}

/// [`run_tcp`] with per-node instrumentation (see
/// [`run_threaded_observed`](crate::thread_runtime::run_threaded_observed));
/// additionally folds the mesh byte counters into each node's metrics
/// as `net.tcp_bytes_sent` / `net.tcp_bytes_recv`.
///
/// # Errors
///
/// Returns an error if binding the loopback listeners fails.
pub fn run_tcp_observed<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool,
    timeout: Duration,
    recorder_capacity: Option<usize>,
) -> io::Result<ThreadRunReport<P::Output>>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec + Send + 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    run_tcp_observed_with(
        nodes,
        inputs,
        stop,
        timeout,
        recorder_capacity,
        TcpRuntime::Threaded,
    )
}

/// [`run_tcp_observed`] on an explicit [`TcpRuntime`].
///
/// # Errors
///
/// Returns an error if binding the loopback listeners fails.
pub fn run_tcp_observed_with<P>(
    nodes: Vec<P>,
    inputs: Vec<(PartyId, P::Input)>,
    stop: impl Fn(&[Vec<P::Output>]) -> bool,
    timeout: Duration,
    recorder_capacity: Option<usize>,
    runtime: TcpRuntime,
) -> io::Result<ThreadRunReport<P::Output>>
where
    P: Protocol + Send + 'static,
    P::Message: WireCodec + Send + 'static,
    P::Input: Send + 'static,
    P::Output: Clone + Send + 'static,
{
    let n = nodes.len();
    // Bind every listener first so the addresses exist before any node
    // dials out.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }

    let obs: Vec<Obs> = match recorder_capacity {
        Some(cap) => (0..n).map(|_| Obs::enabled(cap)).collect(),
        None => vec![Obs::disabled(); n],
    };
    let outputs: Arc<Mutex<Vec<Vec<P::Output>>>> =
        Arc::new(Mutex::new((0..n).map(|_| Vec::new()).collect()));
    let delivered = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let mut input_map: Vec<Vec<P::Input>> = (0..n).map(|_| Vec::new()).collect();
    for (party, input) in inputs {
        input_map[party].push(input);
    }

    let mut handles = Vec::with_capacity(n);
    for (party, mut node) in nodes.into_iter().enumerate() {
        let listener = listeners.remove(0);
        let addrs = addrs.clone();
        let my_inputs = std::mem::take(&mut input_map[party]);
        let outputs = Arc::clone(&outputs);
        let delivered = Arc::clone(&delivered);
        let dropped = Arc::clone(&dropped);
        let done = Arc::clone(&done);
        let my_obs = obs[party].clone();
        handles.push(std::thread::spawn(move || {
            let mesh: Mesh<P::Message> =
                match Mesh::start(runtime, party, &addrs, listener, None, DEFAULT_QUEUE_BYTES) {
                    Ok(mesh) => mesh,
                    Err(_) => return,
                };
            let started = Instant::now();
            let mut fx: Effects<P::Message, P::Output> = Effects::for_parties(n);
            let mut last_tick = Instant::now();
            let mut links = LinkWatch::new(n);
            {
                let ctx = Context {
                    me: party,
                    n,
                    at: 0,
                    obs: my_obs.clone(),
                };
                for input in my_inputs {
                    node.on_input_ctx(&ctx, input, &mut fx);
                }
            }
            loop {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                let mut worked = !fx.sends().is_empty() || !fx.outputs().is_empty();
                let ctx = Context {
                    me: party,
                    n,
                    at: started.elapsed().as_nanos() as u64,
                    obs: my_obs.clone(),
                };
                if let Some((from, msg)) = mesh.recv_timeout(TICK_EVERY) {
                    let handle_started = Instant::now();
                    node.on_message_ctx(&ctx, from, msg, &mut fx);
                    if my_obs.is_enabled() {
                        my_obs.inc(Layer::Net, "recv");
                        my_obs.observe(
                            Layer::Net,
                            "handle_ns",
                            handle_started.elapsed().as_nanos() as u64,
                        );
                    }
                    delivered.fetch_add(1, Ordering::Relaxed);
                    worked = true;
                }
                if last_tick.elapsed() >= TICK_EVERY {
                    last_tick = Instant::now();
                    node.on_tick_ctx(&ctx, &mut fx);
                    if my_obs.is_enabled() {
                        my_obs.inc(Layer::Net, "tick");
                    }
                    links.poll(mesh.epoch(), mesh.supervisors(), &mut node, &ctx, &mut fx);
                    worked = true;
                }
                if worked {
                    let outs = fx.take_outputs();
                    if !outs.is_empty() {
                        outputs.lock()[party].extend(outs);
                    }
                    for (to, msg) in fx.take_sends() {
                        if my_obs.is_enabled() {
                            my_obs.inc(Layer::Net, "sent");
                        }
                        if !mesh.send(to, msg) {
                            dropped.fetch_add(1, Ordering::Relaxed);
                            if my_obs.is_enabled() {
                                my_obs.inc(Layer::Net, "dropped_route");
                            }
                        }
                    }
                }
            }
            let stats = mesh.shutdown();
            if my_obs.is_enabled() {
                my_obs.add(Layer::Net, "tcp_bytes_sent", stats.bytes_sent);
                my_obs.add(Layer::Net, "tcp_bytes_recv", stats.bytes_recv);
                my_obs.add(Layer::Net, "handshake_rejected", stats.handshake_rejects);
                my_obs.add(Layer::Net, "tcp_outbound_dropped", stats.outbound_dropped);
                my_obs.add(Layer::Net, "lane_poisoned", stats.lane_poisoned);
                if runtime == TcpRuntime::Reactor {
                    my_obs.gauge_set(Layer::Net, "reactor_fds_peak", stats.reactor.fds_peak);
                    my_obs.add(Layer::Net, "reactor_wakeups", stats.reactor.wakeups);
                    my_obs.add(
                        Layer::Net,
                        "pool_allocations",
                        stats.reactor.pool_allocations,
                    );
                    my_obs.add(Layer::Net, "pool_recycles", stats.reactor.pool_recycles);
                }
            }
        }));
    }

    let deadline = Instant::now() + timeout;
    let mut completed = false;
    while Instant::now() < deadline {
        if stop(&outputs.lock()) {
            completed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let outputs = Arc::try_unwrap(outputs)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    Ok(ThreadRunReport {
        outputs,
        delivered: delivered.load(Ordering::Relaxed),
        dropped: dropped.load(Ordering::Relaxed),
        completed,
        metrics: obs.iter().map(|o| o.metrics_snapshot()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{LinkFaults, Partition};
    use crate::codec::{CodecError, Reader};

    /// Gossip over real sockets: each node broadcasts its input; every
    /// node outputs what it hears.
    #[derive(Debug)]
    struct Gossip;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Word(u64);

    impl WireCodec for Word {
        fn encode_into(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_be_bytes());
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Word(r.u64()?))
        }
    }

    impl Protocol for Gossip {
        type Message = Word;
        type Input = u64;
        type Output = (PartyId, u64);

        fn on_input(&mut self, v: u64, fx: &mut Effects<Word, (PartyId, u64)>) {
            fx.broadcast(Word(v));
        }

        fn on_message(&mut self, from: PartyId, w: Word, fx: &mut Effects<Word, (PartyId, u64)>) {
            fx.output((from, w.0));
        }
    }

    fn honest_handshake(addr: SocketAddr, claim: u32) -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut hs = [0u8; 8];
        hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
        hs[4..].copy_from_slice(&claim.to_be_bytes());
        s.write_all(&hs).expect("write");
        s
    }

    /// Starts a two-party `(sender, receiver)` mesh pair on the given
    /// runtime — the harness the runtime-equivalence cases share.
    fn mesh_pair(rt: TcpRuntime, chaos: Option<&ChaosConfig>) -> (Mesh<Word>, Mesh<Word>) {
        let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addrs = vec![l0.local_addr().expect("a"), l1.local_addr().expect("a")];
        let a = Mesh::start(rt, 0, &addrs, l0, chaos, DEFAULT_QUEUE_BYTES).expect("mesh");
        let b = Mesh::start(rt, 1, &addrs, l1, None, DEFAULT_QUEUE_BYTES).expect("mesh");
        (a, b)
    }

    fn gossip_case(rt: TcpRuntime) {
        let n = 4;
        let nodes: Vec<Gossip> = (0..n).map(|_| Gossip).collect();
        let inputs: Vec<(PartyId, u64)> = (0..n).map(|p| (p, p as u64 * 3)).collect();
        let report = run_tcp_observed_with(
            nodes,
            inputs,
            move |outs: &[Vec<(PartyId, u64)>]| outs.iter().all(|o| o.len() >= n),
            Duration::from_secs(30),
            Some(128),
            rt,
        )
        .expect("loopback sockets bind");
        assert!(report.completed, "all parties hear all four broadcasts");
        for (party, outs) in report.outputs.iter().enumerate() {
            for from in 0..n {
                assert!(
                    outs.contains(&(from, from as u64 * 3)),
                    "party {party} heard {from}"
                );
            }
        }
        let mut merged = MetricsSnapshot::default();
        for m in &report.metrics {
            merged.merge(m);
        }
        assert!(
            merged.counter("net.tcp_bytes_sent") > 0,
            "bytes crossed real sockets"
        );
        assert!(merged.counter("net.tcp_bytes_recv") > 0);
        assert!(
            merged.counter("net.link_up") > 0,
            "link supervisors saw connections come up"
        );
        if rt == TcpRuntime::Reactor {
            assert!(
                merged.counter("net.reactor_wakeups") > 0,
                "the event loop actually span"
            );
        }
    }

    #[test]
    fn tcp_gossip_delivers_everything() {
        gossip_case(TcpRuntime::Threaded);
    }

    #[test]
    fn tcp_gossip_delivers_everything_on_reactor() {
        gossip_case(TcpRuntime::Reactor);
    }

    #[test]
    fn handshake_parse_classifies_errors() {
        let mut hs = [0u8; 8];
        hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
        hs[4..].copy_from_slice(&2u32.to_be_bytes());
        assert_eq!(parse_handshake(&hs, 4), Ok(2));
        assert_eq!(
            parse_handshake(&hs, 2),
            Err(HandshakeError::BadParty { claimed: 2, n: 2 })
        );
        hs[..4].copy_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        assert_eq!(
            parse_handshake(&hs, 4),
            Err(HandshakeError::BadMagic(0xDEAD_BEEF))
        );
    }

    fn garbage_handshake_case(rt: TcpRuntime) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Peer 1's address is never dialed in this test; port 1 refuses.
        let addrs = vec![addr, "127.0.0.1:1".parse().expect("addr")];
        let mesh: Mesh<Word> =
            Mesh::start(rt, 0, &addrs, listener, None, DEFAULT_QUEUE_BYTES).expect("mesh");

        // Wrong magic: dropped, and the socket sees EOF, not a frame.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut hs = [0u8; 8];
            hs[..4].copy_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
            s.write_all(&hs).expect("write");
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let mut buf = [0u8; 1];
            assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "connection dropped");
        }
        // Truncated handshake: close after three bytes.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&MAGIC.to_be_bytes()[..3]).expect("write");
        }
        // Out-of-range sender id.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut hs = [0u8; 8];
            hs[..4].copy_from_slice(&MAGIC.to_be_bytes());
            hs[4..].copy_from_slice(&7u32.to_be_bytes());
            s.write_all(&hs).expect("write");
        }
        // An honest peer still gets through afterwards.
        let mut s = honest_handshake(addr, 1);
        s.write_all(&encode_frame(&Word(7)).expect("fits"))
            .expect("write");
        let got = mesh
            .recv_timeout(Duration::from_secs(10))
            .expect("frame delivered");
        assert_eq!(got, (1, Word(7)));
        let stats = mesh.shutdown();
        assert_eq!(
            stats.handshake_rejects, 3,
            "each garbage connection counted once"
        );
    }

    #[test]
    fn garbage_handshakes_are_rejected_and_counted() {
        garbage_handshake_case(TcpRuntime::Threaded);
    }

    #[test]
    fn garbage_handshakes_are_rejected_and_counted_on_reactor() {
        garbage_handshake_case(TcpRuntime::Reactor);
    }

    fn mid_handshake_case(rt: TcpRuntime) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let addrs = vec![addr, "127.0.0.1:1".parse().expect("addr")];
        let mesh: Mesh<Word> =
            Mesh::start(rt, 0, &addrs, listener, None, DEFAULT_QUEUE_BYTES).expect("mesh");

        // Connect and vanish without a single byte.
        {
            let s = TcpStream::connect(addr).expect("connect");
            drop(s);
        }
        // Half a magic word, then a close.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&MAGIC.to_be_bytes()[..2]).expect("write");
            let _ = s.shutdown(Shutdown::Both);
            drop(s);
        }
        // Full magic but only half the party id.
        {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&MAGIC.to_be_bytes()).expect("write");
            s.write_all(&[0u8; 2]).expect("write");
            drop(s);
        }
        // The acceptor survives all three and still serves honest peers.
        let mut s = honest_handshake(addr, 1);
        s.write_all(&encode_frame(&Word(11)).expect("fits"))
            .expect("write");
        let got = mesh
            .recv_timeout(Duration::from_secs(10))
            .expect("frame delivered");
        assert_eq!(got, (1, Word(11)));
        let stats = mesh.shutdown();
        assert_eq!(
            stats.handshake_rejects, 3,
            "every aborted handshake counted"
        );
    }

    #[test]
    fn mid_handshake_disconnects_are_tolerated() {
        mid_handshake_case(TcpRuntime::Threaded);
    }

    #[test]
    fn mid_handshake_disconnects_are_tolerated_on_reactor() {
        mid_handshake_case(TcpRuntime::Reactor);
    }

    fn silent_stray_case(rt: TcpRuntime) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let addrs = vec![addr, "127.0.0.1:1".parse().expect("addr")];
        let mesh: Mesh<Word> =
            Mesh::start(rt, 0, &addrs, listener, None, DEFAULT_QUEUE_BYTES).expect("mesh");

        // A stray that connects and stays silent: the handshake
        // deadline (2s) must cut it loose rather than park the
        // acceptor forever.
        let stray = TcpStream::connect(addr).expect("connect");
        // An honest peer dialing *behind* the stray proves the slot is
        // freed: its frame can only be delivered after the stray is
        // rejected, because the accept loop is single-threaded until
        // the handshake resolves.
        let t = std::thread::spawn(move || {
            let mut s = honest_handshake(addr, 1);
            s.write_all(&encode_frame(&Word(23)).expect("fits"))
                .expect("write");
            s
        });
        let got = mesh
            .recv_timeout(Duration::from_secs(10))
            .expect("frame delivered after stray timed out");
        assert_eq!(got, (1, Word(23)));
        // The reactor serves honest peers *while* the stray's clock
        // runs (no serial accept), so wait out the deadline before
        // reading the reject counter.
        std::thread::sleep(HANDSHAKE_DEADLINE + Duration::from_millis(300));
        let stats = mesh.shutdown();
        assert_eq!(stats.handshake_rejects, 1, "silent stray counted");
        drop(stray);
        drop(t.join());
    }

    #[test]
    fn handshake_timeout_rejects_silent_strays() {
        silent_stray_case(TcpRuntime::Threaded);
    }

    #[test]
    fn handshake_timeout_rejects_silent_strays_on_reactor() {
        silent_stray_case(TcpRuntime::Reactor);
    }

    #[test]
    fn bounded_lane_drops_oldest_and_counts() {
        let dropped = Arc::new(AtomicU64::new(0));
        // Cap clamps up to one max frame; use frames big enough to
        // overflow quickly.
        let lane = Lane::new(
            MAX_FRAME + 4,
            Arc::clone(&dropped),
            Arc::new(AtomicU64::new(0)),
        );
        let frame = vec![7u8; MAX_FRAME / 4];
        for _ in 0..16 {
            assert!(lane.push(frame.clone()));
        }
        assert!(
            dropped.load(Ordering::Relaxed) >= 11,
            "oldest frames evicted past the cap"
        );
        assert!(
            lane.queued_bytes() <= MAX_FRAME + 4,
            "memory stays bounded: {} bytes queued",
            lane.queued_bytes()
        );
        // The newest writes survive.
        let (frames, _) = lane.pop_batch(usize::MAX, Duration::ZERO);
        assert!(!frames.is_empty());
        lane.close();
        let (rest, drained) = lane.pop_batch(usize::MAX, Duration::ZERO);
        assert!(rest.is_empty() && drained);
        assert!(!lane.push(frame), "closed lane refuses frames");
    }

    #[test]
    fn sender_memory_stays_bounded_while_peer_is_down() {
        // Peer 1 is permanently unreachable (nothing listens); the
        // sender keeps broadcasting. Without the bounded lane this
        // grows without limit — the eviction counter proves the cap
        // engaged and the queue stayed flat.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dead = TcpListener::bind("127.0.0.1:0").expect("bind");
        let dead_addr = dead.local_addr().expect("addr");
        drop(dead); // port now refuses connections
        let addrs = vec![addr, dead_addr];
        // Caps clamp up to one max frame (MAX_FRAME + 4), so the
        // effective bound here is ~1MiB; push several times that.
        let cap = 64 * 1024;
        let effective = MAX_FRAME + 4;
        let mesh: TcpMesh<Word> = TcpMesh::start(0, &addrs, listener, None, cap).expect("mesh");
        for i in 0..300_000u64 {
            assert!(mesh.send(1, Word(i)), "sends keep being accepted");
        }
        let queued = mesh.outbound[1].as_ref().expect("lane").queued_bytes();
        assert!(
            queued <= effective + MAX_FRAME + 4,
            "queue bounded at ~{effective} bytes, got {queued}"
        );
        let stats = mesh.shutdown();
        assert!(
            stats.outbound_dropped > 0,
            "evictions were counted: {}",
            stats.outbound_dropped
        );
    }

    fn chaos_case(rt: TcpRuntime) {
        // Node 0 → node 1 under heavy budgeted loss: every frame past
        // the budgets must still arrive (garbles kill the connection,
        // so this also exercises reconnect), and the counters tally
        // what the interposer did.
        let chaos = ChaosConfig {
            seed: 42,
            default: LinkFaults {
                drop_per_mille: 200,
                drop_budget: 8,
                garble_per_mille: 200,
                garble_budget: 8,
                reset_per_mille: 50,
                ..LinkFaults::none()
            },
            ..ChaosConfig::default()
        };
        let (sender, receiver) = mesh_pair(rt, Some(&chaos));
        let total = 400u64;
        for i in 0..total {
            assert!(sender.send(1, Word(i)));
        }
        let mut got = std::collections::BTreeSet::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        // At most drop_budget + garble_budget frames may be lost (a
        // garbled frame reaches the peer but fails decode); chaos past
        // the budgets only adds latency.
        while (got.len() as u64) < total - 16 && Instant::now() < deadline {
            if let Some((from, w)) = receiver.recv_timeout(Duration::from_millis(100)) {
                assert_eq!(from, 0);
                got.insert(w.0);
            }
        }
        assert!(
            got.len() as u64 >= total - 16,
            "budgeted chaos keeps liveness: {}/{total} delivered",
            got.len()
        );
        let stats = sender.shutdown();
        let (dropped, garbled, _resets, _delayed, _reordered) = stats.chaos;
        assert!(dropped > 0, "drops happened and were counted");
        assert!(garbled > 0, "garbles happened and were counted");
        assert!(dropped <= 8 && garbled <= 8, "budgets bound the damage");
        receiver.shutdown();
    }

    #[test]
    fn chaos_faults_are_survivable_and_counted() {
        chaos_case(TcpRuntime::Threaded);
    }

    #[test]
    fn chaos_faults_are_survivable_and_counted_on_reactor() {
        chaos_case(TcpRuntime::Reactor);
    }

    fn partition_case(rt: TcpRuntime) {
        // A 250ms window cutting 0|1: frames sent during the window
        // arrive only after it ends — blocked, not dropped.
        let chaos = ChaosConfig {
            seed: 1,
            partitions: vec![Partition {
                group: vec![0],
                start: Duration::ZERO,
                end: Duration::from_millis(250),
            }],
            ..ChaosConfig::default()
        };
        let (sender, receiver) = mesh_pair(rt, Some(&chaos));
        let t0 = Instant::now();
        assert!(sender.send(1, Word(99)));
        let got = receiver
            .recv_timeout(Duration::from_secs(10))
            .expect("frame delivered after heal");
        let waited = t0.elapsed();
        assert_eq!(got, (0, Word(99)));
        assert!(
            waited >= Duration::from_millis(200),
            "frame held for the window, not leaked early ({waited:?})"
        );
        sender.shutdown();
        receiver.shutdown();
    }

    #[test]
    fn partition_blocks_then_heals() {
        partition_case(TcpRuntime::Threaded);
    }

    #[test]
    fn partition_blocks_then_heals_on_reactor() {
        partition_case(TcpRuntime::Reactor);
    }

    fn heartbeat_case(rt: TcpRuntime) {
        let (a, b) = mesh_pair(rt, None);
        // One frame each way to establish both unidirectional links.
        assert!(a.send(1, Word(1)));
        assert!(b.send(0, Word(2)));
        assert_eq!(b.recv_timeout(Duration::from_secs(10)), Some((0, Word(1))));
        assert_eq!(a.recv_timeout(Duration::from_secs(10)), Some((1, Word(2))));
        // Now both go idle. Heartbeats (200ms cadence) must keep the
        // last-heard clocks advancing on both sides.
        let before = b.supervisors()[0]
            .as_ref()
            .expect("sup")
            .last_rx_ms
            .load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(600));
        let after = b.supervisors()[0]
            .as_ref()
            .expect("sup")
            .last_rx_ms
            .load(Ordering::Relaxed);
        assert!(
            after > before,
            "idle link stayed audible: {before} → {after}"
        );
        // And the writer-side supervisor reports the link Up.
        assert_eq!(
            a.supervisors()[1].as_ref().expect("sup").get(),
            LinkState::Up
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn heartbeats_keep_an_idle_link_fresh() {
        heartbeat_case(TcpRuntime::Threaded);
    }

    #[test]
    fn heartbeats_keep_an_idle_link_fresh_on_reactor() {
        heartbeat_case(TcpRuntime::Reactor);
    }

    #[test]
    fn single_node_mesh_loops_back_to_itself() {
        let cfg = TcpNodeConfig::new(
            0,
            vec!["127.0.0.1:0".parse().expect("addr")],
            Duration::from_secs(10),
            Duration::from_millis(0),
        );
        let report = run_tcp_node(&cfg, Gossip, vec![42], |outs: &[(PartyId, u64)]| {
            !outs.is_empty()
        })
        .expect("bind");
        assert!(report.completed);
        assert_eq!(report.outputs, vec![(0, 42)]);
    }

    #[test]
    fn driven_node_paces_inputs_and_sees_state() {
        // The driver injects one input per tick until three are out;
        // the stop predicate keys off the automaton (via the report's
        // returned node), proving &P access works.
        let cfg = TcpNodeConfig::new(
            0,
            vec!["127.0.0.1:0".parse().expect("addr")],
            Duration::from_secs(10),
            Duration::from_millis(0),
        );
        let mut injected = 0u64;
        let (report, node) = run_tcp_node_driven(
            &cfg,
            Gossip,
            move |node, ctx, fx| {
                if injected < 3 {
                    node.on_input_ctx(ctx, injected, fx);
                    injected += 1;
                }
            },
            |_node: &Gossip, outs: &[(PartyId, u64)]| outs.len() >= 3,
        )
        .expect("bind");
        assert!(report.completed);
        assert_eq!(report.outputs.len(), 3);
        let _ = node;
    }

    // -- link-layer bug-sweep regressions ------------------------------

    /// A local blackhole: a listener that never accepts, with its
    /// accept queue wedged full, silently drops further SYNs (no RST)
    /// — the same behavior as a firewalled host or a dead VM with a
    /// live route, but reproducible on loopback. Returns the address
    /// and the sockets keeping the queue full.
    fn blackholed_addr() -> (SocketAddr, TcpListener, Vec<TcpStream>) {
        let victim = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = victim.local_addr().expect("addr");
        let mut fillers = Vec::new();
        while let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            fillers.push(s);
            assert!(fillers.len() < 2048, "backlog never filled");
        }
        (addr, victim, fillers)
    }

    #[test]
    fn dial_fails_fast_against_blackholed_address() {
        // The old blocking `TcpStream::connect` parked the writer
        // thread on the kernel's SYN-retry schedule (minutes) against
        // a blackholed peer, and the jittered backoff never ran;
        // `connect_timeout` must bound the attempt.
        let (addr, _victim, _fillers) = blackholed_addr();
        let t0 = Instant::now();
        let got = dial(addr, 0);
        let waited = t0.elapsed();
        assert!(got.is_none(), "blackholed dial cannot succeed");
        assert!(
            waited <= DIAL_TIMEOUT + Duration::from_secs(1),
            "dial returned within its deadline ({waited:?})"
        );
    }

    #[test]
    fn reactor_survives_blackholed_peer_and_shuts_down_promptly() {
        // Same blackhole on the reactor path: the nonblocking connect
        // carries its own deadline, so the event loop keeps ticking
        // and teardown stays bounded instead of waiting on a SYN.
        let (dark, _victim, _fillers) = blackholed_addr();
        let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addrs = vec![l0.local_addr().expect("a"), dark];
        let mesh: Mesh<Word> = Mesh::start(
            TcpRuntime::Reactor,
            0,
            &addrs,
            l0,
            None,
            DEFAULT_QUEUE_BYTES,
        )
        .expect("mesh");
        assert!(mesh.send(1, Word(5)), "send queues while the peer is dark");
        std::thread::sleep(Duration::from_millis(300));
        let t0 = Instant::now();
        let stats = mesh.shutdown();
        assert!(
            t0.elapsed() <= Duration::from_secs(5),
            "teardown bounded despite the dark peer"
        );
        assert_eq!(stats.bytes_sent, 0, "nothing could have been delivered");
    }

    #[test]
    fn flapping_peer_does_not_leak_reader_threads() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let addrs = vec![addr, "127.0.0.1:1".parse().expect("addr")];
        let mesh: TcpMesh<Word> =
            TcpMesh::start(0, &addrs, listener, None, DEFAULT_QUEUE_BYTES).expect("mesh");
        // Crash-without-close flaps: every handshake supersedes the
        // previous connection, and the "crashed" sockets never FIN —
        // pre-fix, each one parked a reader thread forever.
        let mut zombies = Vec::new();
        for _ in 0..25 {
            zombies.push(honest_handshake(addr, 1));
            std::thread::sleep(Duration::from_millis(20));
        }
        // The newest connection still delivers.
        let mut live = zombies.pop().expect("kept the last");
        live.write_all(&encode_frame(&Word(9)).expect("fits"))
            .expect("write");
        assert_eq!(
            mesh.recv_timeout(Duration::from_secs(10)),
            Some((1, Word(9)))
        );
        // Reaping keeps the reader population flat.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let alive = mesh.live_readers();
            if alive <= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "reader threads leaked: {alive} still alive"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        mesh.shutdown();
    }

    #[test]
    fn reactor_flapping_peer_keeps_fd_count_flat() {
        let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l0.local_addr().expect("addr");
        let addrs = vec![addr, "127.0.0.1:1".parse().expect("addr")];
        let mesh: Mesh<Word> = Mesh::start(
            TcpRuntime::Reactor,
            0,
            &addrs,
            l0,
            None,
            DEFAULT_QUEUE_BYTES,
        )
        .expect("mesh");
        let mut zombies = Vec::new();
        for _ in 0..30 {
            zombies.push(honest_handshake(addr, 1));
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut live = zombies.pop().expect("kept the last");
        live.write_all(&encode_frame(&Word(9)).expect("fits"))
            .expect("write");
        assert_eq!(
            mesh.recv_timeout(Duration::from_secs(10)),
            Some((1, Word(9)))
        );
        let stats = mesh.shutdown();
        // 30 flaps without reaping would peak >30 fds; with reaping
        // the loop holds listener + doorbell + a couple of transients.
        assert!(
            stats.reactor.fds_peak <= 10,
            "inbound fds reaped on reconnect (peak {})",
            stats.reactor.fds_peak
        );
    }

    #[test]
    fn poisoned_lane_degrades_link_instead_of_panicking() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let addrs = vec![addr, "127.0.0.1:1".parse().expect("addr")];
        let mesh: TcpMesh<Word> =
            TcpMesh::start(0, &addrs, listener, None, DEFAULT_QUEUE_BYTES).expect("mesh");
        let lane = Arc::clone(mesh.outbound[1].as_ref().expect("lane"));
        // Poison the lane mutex the way a dying writer would: panic
        // while holding the guard. The old `.expect("lane lock")`
        // turned this into a panic on the protocol thread's next send
        // — one dead link crashing the whole node.
        let l2 = Arc::clone(&lane);
        let _ = std::thread::spawn(move || {
            let _g = l2.inner.lock().expect("first lock");
            panic!("simulated writer death");
        })
        .join();
        assert!(
            mesh.send(1, Word(3)),
            "send survives and recovers the poisoned lock"
        );
        let stats = mesh.shutdown();
        assert!(
            stats.lane_poisoned >= 1,
            "poison recovery was counted ({})",
            stats.lane_poisoned
        );
    }

    // -- crash-restart rejoin (both runtimes) --------------------------

    fn late_peer_rejoin_case(rt: TcpRuntime) {
        // "Crash" = nothing listening at the peer's address; "restart"
        // = a listener appears there later. The mesh must keep
        // redialing under backoff and deliver the queued frame once
        // the peer returns.
        let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let park = TcpListener::bind("127.0.0.1:0").expect("bind");
        let peer_addr = park.local_addr().expect("a");
        drop(park); // the peer is now "down"
        let addrs = vec![l0.local_addr().expect("a"), peer_addr];
        let mesh: Mesh<Word> =
            Mesh::start(rt, 0, &addrs, l0, None, DEFAULT_QUEUE_BYTES).expect("mesh");
        assert!(mesh.send(1, Word(77)), "frame queues while peer is down");
        std::thread::sleep(Duration::from_millis(300)); // several failed dials
        let revived = TcpListener::bind(peer_addr).expect("rebind");
        let (mut conn, _) = revived.accept().expect("mesh redialed after restart");
        let mut hs = [0u8; 8];
        conn.read_exact(&mut hs).expect("handshake first");
        assert_eq!(parse_handshake(&hs, 2), Ok(0));
        let mut len4 = [0u8; 4];
        conn.read_exact(&mut len4).expect("frame length");
        let len = u32::from_be_bytes(len4) as usize;
        let mut body = vec![0u8; len];
        conn.read_exact(&mut body).expect("frame body");
        let mut expect = Vec::new();
        Word(77).encode_into(&mut expect);
        assert_eq!(body, expect, "the pre-crash frame arrived post-restart");
        // And the restarted peer can speak back — by dialing the
        // mesh's own listener, as a real restarted replica would.
        let mut back = honest_handshake(addrs[0], 1);
        back.write_all(&encode_frame(&Word(88)).expect("fits"))
            .expect("reply");
        assert_eq!(
            mesh.recv_timeout(Duration::from_secs(10)),
            Some((1, Word(88)))
        );
        mesh.shutdown();
    }

    #[test]
    fn late_peer_rejoin_delivers_queued_frames() {
        late_peer_rejoin_case(TcpRuntime::Threaded);
    }

    #[test]
    fn late_peer_rejoin_delivers_queued_frames_on_reactor() {
        late_peer_rejoin_case(TcpRuntime::Reactor);
    }

    #[test]
    fn runtime_selector_parses_and_prints() {
        assert_eq!("threaded".parse(), Ok(TcpRuntime::Threaded));
        assert_eq!("reactor".parse(), Ok(TcpRuntime::Reactor));
        assert!("epoll".parse::<TcpRuntime>().is_err());
        assert_eq!(TcpRuntime::Reactor.to_string(), "reactor");
        assert_eq!(TcpRuntime::default(), TcpRuntime::Threaded);
    }
}
