//! The protocol automaton abstraction.
//!
//! Every protocol in the architecture — from reliable broadcast up to
//! the replicated services — is written as a time-free, event-driven
//! automaton: it reacts to local inputs and incoming messages by
//! emitting sends and outputs, and *never* consults a clock. This is
//! exactly the asynchronous model of §2.2: correctness must hold under
//! every message schedule, so the same automaton code runs unchanged
//! under the deterministic simulator (with any adversarial scheduler)
//! and under the real-thread runtime.
//!
//! The single concession to non-asynchronous designs is
//! [`Protocol::on_tick`], a no-op by default, which lets the
//! failure-detector *baseline* protocol (the comparison system of the
//! Figure 1 experiment) implement its timeouts; the SINTRA protocols
//! never override it.

use sintra_adversary::party::PartyId;

/// Effects accumulated while handling one event.
#[derive(Debug)]
pub struct Effects<M, O> {
    sends: Vec<(PartyId, M)>,
    outputs: Vec<O>,
}

impl<M, O> Effects<M, O> {
    /// Creates an empty effect buffer.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Queues a message to one party (including self).
    pub fn send(&mut self, to: PartyId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues the same message to every party in `0..n` (including the
    /// sender itself, which is how the broadcast protocols count their
    /// own votes).
    pub fn send_all(&mut self, n: usize, msg: M)
    where
        M: Clone,
    {
        for to in 0..n {
            self.sends.push((to, msg.clone()));
        }
    }

    /// Emits a protocol output to the local application.
    pub fn output(&mut self, out: O) {
        self.outputs.push(out);
    }

    /// Drains the queued sends.
    pub fn take_sends(&mut self) -> Vec<(PartyId, M)> {
        core::mem::take(&mut self.sends)
    }

    /// Drains the queued outputs.
    pub fn take_outputs(&mut self) -> Vec<O> {
        core::mem::take(&mut self.outputs)
    }

    /// Peeks at queued sends.
    pub fn sends(&self) -> &[(PartyId, M)] {
        &self.sends
    }

    /// Peeks at queued outputs.
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }
}

impl<M, O> Default for Effects<M, O> {
    fn default() -> Self {
        Self::new()
    }
}

/// A time-free protocol automaton replicated at every party.
pub trait Protocol {
    /// Wire message type exchanged between replicas of this automaton.
    type Message: Clone + core::fmt::Debug + Send;
    /// Local input type (client request, propose value, ...).
    type Input;
    /// Output type delivered to the local application.
    type Output: core::fmt::Debug;

    /// Handles a local input.
    fn on_input(&mut self, input: Self::Input, effects: &mut Effects<Self::Message, Self::Output>);

    /// Handles a message from `from` (sender authenticity is the
    /// transport's responsibility; the simulator enforces it, and the
    /// protocols additionally verify signatures where the design
    /// requires them).
    fn on_message(
        &mut self,
        from: PartyId,
        msg: Self::Message,
        effects: &mut Effects<Self::Message, Self::Output>,
    );

    /// Local clock tick. **Asynchronous protocols must not override
    /// this**; it exists solely so the failure-detector baseline can be
    /// expressed for comparison experiments.
    fn on_tick(&mut self, effects: &mut Effects<Self::Message, Self::Output>) {
        let _ = effects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial echo automaton used to exercise the trait plumbing.
    struct Echo {
        me: PartyId,
        n: usize,
    }

    impl Protocol for Echo {
        type Message = String;
        type Input = String;
        type Output = (PartyId, String);

        fn on_input(&mut self, input: String, fx: &mut Effects<String, (PartyId, String)>) {
            fx.send_all(self.n, input);
        }

        fn on_message(
            &mut self,
            from: PartyId,
            msg: String,
            fx: &mut Effects<String, (PartyId, String)>,
        ) {
            let _ = self.me;
            fx.output((from, msg));
        }
    }

    #[test]
    fn effects_accumulate_and_drain() {
        let mut fx: Effects<String, (PartyId, String)> = Effects::new();
        let mut node = Echo { me: 0, n: 3 };
        node.on_input("hi".into(), &mut fx);
        assert_eq!(fx.sends().len(), 3);
        assert_eq!(fx.sends()[2].0, 2);
        let sends = fx.take_sends();
        assert_eq!(sends.len(), 3);
        assert!(fx.sends().is_empty());
        node.on_message(1, "yo".into(), &mut fx);
        assert_eq!(fx.take_outputs(), vec![(1, "yo".to_string())]);
    }

    #[test]
    fn default_tick_is_noop() {
        let mut fx: Effects<String, (PartyId, String)> = Effects::new();
        let mut node = Echo { me: 0, n: 3 };
        node.on_tick(&mut fx);
        assert!(fx.sends().is_empty());
        assert!(fx.outputs().is_empty());
    }
}
