//! The protocol automaton abstraction.
//!
//! Every protocol in the architecture — from reliable broadcast up to
//! the replicated services — is written as a time-free, event-driven
//! automaton: it reacts to local inputs and incoming messages by
//! emitting sends and outputs, and *never* consults a clock. This is
//! exactly the asynchronous model of §2.2: correctness must hold under
//! every message schedule, so the same automaton code runs unchanged
//! under the deterministic simulator (with any adversarial scheduler)
//! and under the real-thread runtime.
//!
//! The single concession to non-asynchronous designs is
//! [`Protocol::on_tick`], a no-op by default, which lets the
//! failure-detector *baseline* protocol (the comparison system of the
//! Figure 1 experiment) implement its timeouts; the SINTRA protocols
//! never override it.

use sintra_adversary::party::PartyId;
use sintra_obs::Obs;

/// Per-delivery instrumentation context handed to the `*_ctx` automaton
/// hooks: who we are, how many parties the run has, where simulated (or
/// wall-clock) time stands, and the node's observability handle.
///
/// The context is how `Effects::broadcast` knows the group size without
/// every protocol threading its own `n`, and how instrumented automata
/// reach their per-node metrics registry. A context built with
/// [`Context::disabled`] records nothing and costs a branch per call.
#[derive(Clone, Debug)]
pub struct Context {
    /// The local party id.
    pub me: PartyId,
    /// Number of parties in the group.
    pub n: usize,
    /// Current simulator step (or a wall-clock ns reading under the
    /// thread runtime); 0 when the runtime has no notion of time yet.
    pub at: u64,
    /// This node's observability handle (disabled ⇒ all recording is a
    /// no-op).
    pub obs: Obs,
}

impl Context {
    /// A context with instrumentation off — what the legacy
    /// (non-`_ctx`) automaton hooks observe.
    pub fn disabled(me: PartyId, n: usize) -> Context {
        Context {
            me,
            n,
            at: 0,
            obs: Obs::disabled(),
        }
    }
}

/// Effects accumulated while handling one event.
#[derive(Debug)]
pub struct Effects<M, O> {
    sends: Vec<(PartyId, M)>,
    outputs: Vec<O>,
    /// Group size, when the constructing runtime knows it; enables
    /// [`broadcast`](Self::broadcast).
    n: Option<usize>,
}

impl<M, O> Effects<M, O> {
    /// Creates an empty effect buffer with no known group size
    /// ([`broadcast`](Self::broadcast) will panic; prefer
    /// [`for_parties`](Self::for_parties)).
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            outputs: Vec::new(),
            n: None,
        }
    }

    /// Creates an empty effect buffer for a group of `n` parties.
    pub fn for_parties(n: usize) -> Self {
        Effects {
            sends: Vec::new(),
            outputs: Vec::new(),
            n: Some(n),
        }
    }

    /// The group size this buffer was built for, if known.
    pub fn parties(&self) -> Option<usize> {
        self.n
    }

    /// Queues a message to one party (including self).
    pub fn send(&mut self, to: PartyId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues the same message to every party (including the sender
    /// itself, which is how the broadcast protocols count their own
    /// votes).
    ///
    /// # Panics
    /// If the buffer was built with [`Effects::new`], which has no
    /// group size. All runtimes in this workspace construct buffers
    /// with [`Effects::for_parties`].
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let n = self
            .n
            .expect("Effects::broadcast needs a group size: build with Effects::for_parties(n)");
        for to in 0..n {
            self.sends.push((to, msg.clone()));
        }
    }

    /// Queues the same message to every party in `0..n`.
    #[deprecated(since = "0.1.0", note = "use `broadcast(msg)`; the runtime knows `n`")]
    pub fn send_all(&mut self, n: usize, msg: M)
    where
        M: Clone,
    {
        for to in 0..n {
            self.sends.push((to, msg.clone()));
        }
    }

    /// Emits a protocol output to the local application.
    pub fn output(&mut self, out: O) {
        self.outputs.push(out);
    }

    /// Drains the queued sends.
    pub fn take_sends(&mut self) -> Vec<(PartyId, M)> {
        core::mem::take(&mut self.sends)
    }

    /// Drains the queued outputs.
    pub fn take_outputs(&mut self) -> Vec<O> {
        core::mem::take(&mut self.outputs)
    }

    /// Peeks at queued sends.
    pub fn sends(&self) -> &[(PartyId, M)] {
        &self.sends
    }

    /// Peeks at queued outputs.
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }
}

impl<M, O> Default for Effects<M, O> {
    fn default() -> Self {
        Self::new()
    }
}

/// A time-free protocol automaton replicated at every party.
pub trait Protocol {
    /// Wire message type exchanged between replicas of this automaton.
    type Message: Clone + core::fmt::Debug + Send;
    /// Local input type (client request, propose value, ...).
    type Input;
    /// Output type delivered to the local application.
    type Output: core::fmt::Debug;

    /// Handles a local input.
    fn on_input(&mut self, input: Self::Input, effects: &mut Effects<Self::Message, Self::Output>);

    /// Handles a message from `from` (sender authenticity is the
    /// transport's responsibility; the simulator enforces it, and the
    /// protocols additionally verify signatures where the design
    /// requires them).
    fn on_message(
        &mut self,
        from: PartyId,
        msg: Self::Message,
        effects: &mut Effects<Self::Message, Self::Output>,
    );

    /// Local clock tick. **Asynchronous protocols must not override
    /// this**; it exists solely so the failure-detector baseline can be
    /// expressed for comparison experiments.
    fn on_tick(&mut self, effects: &mut Effects<Self::Message, Self::Output>) {
        let _ = effects;
    }

    /// Context-aware variant of [`on_input`](Self::on_input). Runtimes
    /// call *this* hook; the default delegates to the legacy method, so
    /// existing automata compile and behave unchanged. Instrumented
    /// automata override it (and only it) to reach `ctx.obs`.
    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: Self::Input,
        effects: &mut Effects<Self::Message, Self::Output>,
    ) {
        let _ = ctx;
        self.on_input(input, effects);
    }

    /// Context-aware variant of [`on_message`](Self::on_message); see
    /// [`on_input_ctx`](Self::on_input_ctx) for the delegation contract.
    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: Self::Message,
        effects: &mut Effects<Self::Message, Self::Output>,
    ) {
        let _ = ctx;
        self.on_message(from, msg, effects);
    }

    /// Context-aware variant of [`on_tick`](Self::on_tick); see
    /// [`on_input_ctx`](Self::on_input_ctx) for the delegation contract.
    fn on_tick_ctx(&mut self, ctx: &Context, effects: &mut Effects<Self::Message, Self::Output>) {
        let _ = ctx;
        self.on_tick(effects);
    }

    /// The transport (re-)established an outbound link to `peer` —
    /// fired by runtimes with real connections (the TCP runtime) after
    /// every successful dial-plus-handshake, including the first.
    ///
    /// A no-op by default, and *must stay* advisory: link state is a
    /// timing signal, so nothing safety-critical may depend on it (the
    /// asynchronous model of §2.2 admits no failure detectors). It
    /// exists for recovery acceleration — e.g. the replicated state
    /// machine probes a reconnected peer with its stable checkpoint
    /// claim so a restarted replica starts state transfer without
    /// waiting for the next checkpoint boundary.
    fn on_link_up_ctx(
        &mut self,
        ctx: &Context,
        peer: PartyId,
        effects: &mut Effects<Self::Message, Self::Output>,
    ) {
        let _ = (ctx, peer, effects);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial echo automaton used to exercise the trait plumbing.
    struct Echo {
        me: PartyId,
        n: usize,
    }

    impl Protocol for Echo {
        type Message = String;
        type Input = String;
        type Output = (PartyId, String);

        fn on_input(&mut self, input: String, fx: &mut Effects<String, (PartyId, String)>) {
            let _ = self.n;
            fx.broadcast(input);
        }

        fn on_message(
            &mut self,
            from: PartyId,
            msg: String,
            fx: &mut Effects<String, (PartyId, String)>,
        ) {
            let _ = self.me;
            fx.output((from, msg));
        }
    }

    #[test]
    fn effects_accumulate_and_drain() {
        let mut fx: Effects<String, (PartyId, String)> = Effects::for_parties(3);
        let mut node = Echo { me: 0, n: 3 };
        node.on_input("hi".into(), &mut fx);
        assert_eq!(fx.sends().len(), 3);
        assert_eq!(fx.sends()[2].0, 2);
        let sends = fx.take_sends();
        assert_eq!(sends.len(), 3);
        assert!(fx.sends().is_empty());
        node.on_message(1, "yo".into(), &mut fx);
        assert_eq!(fx.take_outputs(), vec![(1, "yo".to_string())]);
    }

    #[test]
    fn default_tick_is_noop() {
        let mut fx: Effects<String, (PartyId, String)> = Effects::new();
        let mut node = Echo { me: 0, n: 3 };
        node.on_tick(&mut fx);
        assert!(fx.sends().is_empty());
        assert!(fx.outputs().is_empty());
    }

    #[test]
    fn ctx_hooks_default_to_legacy_hooks() {
        let mut fx: Effects<String, (PartyId, String)> = Effects::for_parties(3);
        let mut node = Echo { me: 0, n: 3 };
        let ctx = Context::disabled(0, 3);
        node.on_input_ctx(&ctx, "hi".into(), &mut fx);
        assert_eq!(fx.sends().len(), 3, "delegated to on_input");
        node.on_message_ctx(&ctx, 2, "yo".into(), &mut fx);
        assert_eq!(fx.outputs().len(), 1, "delegated to on_message");
        node.on_tick_ctx(&ctx, &mut fx);
        assert!(!ctx.obs.is_enabled());
        assert_eq!(ctx.n, 3);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn broadcast_without_group_size_panics() {
        let mut fx: Effects<String, (PartyId, String)> = Effects::new();
        fx.broadcast("boom".into());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_send_all_still_works() {
        let mut fx: Effects<String, (PartyId, String)> = Effects::new();
        #[allow(deprecated)]
        fx.send_all(2, "m".into());
        assert_eq!(fx.sends().len(), 2);
    }
}
