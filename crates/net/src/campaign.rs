//! Fault-injection campaigns: systematic sweeps of the adversary space.
//!
//! A *campaign* runs one protocol under the full cross-product of
//! scheduler × behavior × corruption-set × seed, checks per-protocol
//! invariants after every run, and reports failures with enough
//! coordinates to replay them bit-identically. This turns the paper's
//! threat model (§2: adversarial network, up to a corruptible set of
//! Byzantine servers) into a regression harness: every protocol change
//! is re-validated against the whole grid, and a violation is a single
//! [`CaseId`] away from a deterministic reproduction.
//!
//! The protocol-specific pieces — how to build replicas, how to
//! instantiate a [`BehaviorKind`] as a concrete [`Behavior`], what to
//! input, and which invariants must hold — are supplied as
//! [`CampaignHooks`]; everything else (grid iteration, scheduling,
//! replay bookkeeping) is generic.
//!
//! ```ignore
//! let report = run_campaign(&plan, &hooks);
//! assert!(report.passed(), "{}", report.summary());
//! // On failure: replay the minimal failing case under a debugger.
//! let outcome = replay_case(&plan, &hooks, &report.minimal_failure().unwrap().case);
//! ```

use crate::protocol::Protocol;
use crate::sim::{
    Behavior, FifoScheduler, LifoScheduler, LossyScheduler, PartitionScheduler, RandomScheduler,
    Scheduler, SimStats, Simulation, TargetedDelayScheduler,
};
use sintra_adversary::party::{PartyId, PartySet};
use sintra_obs::MetricsSnapshot;

/// Scheduler axis of the campaign grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Uniformly random delivery.
    Random,
    /// Oldest-first (global FIFO).
    Fifo,
    /// Newest-first (maximal reordering).
    Lifo,
    /// Starves traffic touching the victim set.
    TargetedDelay(PartySet),
    /// Withholds cross-group traffic until `heal_at`.
    Partition {
        /// One side of the partition.
        group: PartySet,
        /// Step at which the partition heals.
        heal_at: u64,
    },
    /// Random delivery plus bounded loss of duplicate copies.
    Lossy {
        /// Probability (percent) of attempting a drop each step.
        drop_percent: u64,
        /// Maximum number of duplicate copies destroyed.
        budget: u64,
    },
}

impl SchedulerKind {
    /// Instantiates the scheduler for a run.
    pub fn build<M>(&self) -> Box<dyn Scheduler<M>> {
        match self {
            SchedulerKind::Random => Box::new(RandomScheduler),
            SchedulerKind::Fifo => Box::new(FifoScheduler),
            SchedulerKind::Lifo => Box::new(LifoScheduler),
            SchedulerKind::TargetedDelay(victims) => {
                Box::new(TargetedDelayScheduler { victims: *victims })
            }
            SchedulerKind::Partition { group, heal_at } => Box::new(PartitionScheduler {
                group: *group,
                heal_at: *heal_at,
            }),
            SchedulerKind::Lossy {
                drop_percent,
                budget,
            } => Box::new(LossyScheduler::new(RandomScheduler, *drop_percent, *budget)),
        }
    }
}

/// Behavior axis of the campaign grid. The concrete [`Behavior`] for a
/// kind is built by [`CampaignHooks::behavior`], since most behaviors
/// are protocol-specific (they wrap a real replica or mutate concrete
/// message types).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BehaviorKind {
    /// Fail-stop: absorbs everything, says nothing.
    Crash,
    /// Different payloads to different receivers.
    Equivocate,
    /// Captures and re-sends traffic.
    Replay,
    /// Bit-flips/truncates outgoing messages.
    Mutate,
    /// Drops all traffic to a victim set.
    Mute,
    /// Crashes mid-run, rejoins later with amnesia.
    CrashRecover,
}

impl BehaviorKind {
    /// The five canned Byzantine behaviors (plus fail-stop).
    pub const ALL: [BehaviorKind; 6] = [
        BehaviorKind::Crash,
        BehaviorKind::Equivocate,
        BehaviorKind::Replay,
        BehaviorKind::Mutate,
        BehaviorKind::Mute,
        BehaviorKind::CrashRecover,
    ];
}

/// The grid to sweep plus per-run limits.
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    /// Scheduler kinds to try.
    pub schedulers: Vec<SchedulerKind>,
    /// Behavior kinds to try.
    pub behaviors: Vec<BehaviorKind>,
    /// Corruption sets to try (must each be corruptible for the
    /// protocol's trust structure — the hooks owner is responsible).
    pub corruption_sets: Vec<PartySet>,
    /// Seeds to try; each seed determines keys, schedule, and behavior
    /// randomness, so a case replays bit-identically.
    pub seeds: Vec<u64>,
    /// Per-run step budget (liveness horizon).
    pub max_steps: u64,
    /// Network duplication percentage applied to every run.
    pub duplication_percent: u64,
    /// When `Some(capacity)`, every run is instrumented: per-party
    /// metrics are collected (merged into [`RunOutcome::metrics`] and
    /// [`CampaignReport::metrics`]) and each party gets a flight
    /// recorder of that many event slots. `None` runs uninstrumented —
    /// the zero-overhead default.
    pub obs_recorder: Option<usize>,
}

/// Everything protocol-specific a campaign needs.
pub struct CampaignHooks<'a, P: Protocol> {
    /// Builds a fresh replica set for the given seed.
    #[allow(clippy::type_complexity)]
    pub nodes: Box<dyn Fn(u64) -> Vec<P> + 'a>,
    /// Instantiates a behavior kind at a corrupted party.
    #[allow(clippy::type_complexity)]
    pub behavior: Box<dyn Fn(BehaviorKind, PartyId, u64) -> Behavior<P> + 'a>,
    /// Inputs to inject, given the corrupted set.
    #[allow(clippy::type_complexity)]
    pub inputs: Box<dyn Fn(u64, &PartySet) -> Vec<(PartyId, P::Input)> + 'a>,
    /// Invariant checker run after every case.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&RunOutcome<P>) -> Result<(), String> + 'a>,
}

/// What one campaign case produced.
#[derive(Debug)]
pub struct RunOutcome<P: Protocol> {
    /// Outputs of every party (corrupted slots are empty).
    pub outputs: Vec<Vec<P::Output>>,
    /// Final node state of every party (`None` for corrupted slots), so
    /// invariant checks can inspect internal protocol state — e.g.
    /// whether batch verification attributed culprits correctly.
    pub nodes: Vec<Option<P>>,
    /// The corrupted set of this case.
    pub corrupted: PartySet,
    /// Simulator counters.
    pub stats: SimStats,
    /// Whether the run quiesced within the step budget (a run that hits
    /// the budget with traffic still in flight is a liveness suspect).
    pub quiesced: bool,
    /// All parties' metrics folded into one snapshot (empty unless the
    /// plan set [`CampaignPlan::obs_recorder`]).
    pub metrics: MetricsSnapshot,
}

impl<P: Protocol> RunOutcome<P> {
    /// Parties that were honest in this case.
    pub fn honest(&self) -> impl Iterator<Item = PartyId> + '_ {
        (0..self.outputs.len()).filter(|p| !self.corrupted.contains(*p))
    }
}

/// Coordinates of one case — enough to replay it exactly.
#[derive(Clone, Debug)]
pub struct CaseId {
    /// Scheduler used.
    pub scheduler: SchedulerKind,
    /// Behavior kind injected at every corrupted party.
    pub behavior: BehaviorKind,
    /// Which parties were corrupted.
    pub corrupted: PartySet,
    /// The seed.
    pub seed: u64,
}

/// A case whose invariant check failed.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Replay coordinates.
    pub case: CaseId,
    /// The invariant violation.
    pub error: String,
}

/// Results of a full sweep.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Cases executed.
    pub cases_run: usize,
    /// Cases whose invariant check failed.
    pub failures: Vec<CaseFailure>,
    /// Every case's metrics folded together (empty unless the plan set
    /// [`CampaignPlan::obs_recorder`]): counters add across the grid,
    /// gauges keep their high-water readings, histograms merge.
    pub metrics: MetricsSnapshot,
}

impl CampaignReport {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The failing case with the smallest seed (the canonical
    /// reproduction to debug first), if any.
    pub fn minimal_failure(&self) -> Option<&CaseFailure> {
        self.failures.iter().min_by_key(|f| f.case.seed)
    }

    /// Human-readable digest for assertion messages and soak logs.
    pub fn summary(&self) -> String {
        match self.minimal_failure() {
            None => format!("{} cases, all passed", self.cases_run),
            Some(f) => format!(
                "{} of {} cases FAILED; minimal seed {} [{:?} × {:?} × corrupted {:?}]: {}",
                self.failures.len(),
                self.cases_run,
                f.case.seed,
                f.case.scheduler,
                f.case.behavior,
                f.case.corrupted,
                f.error,
            ),
        }
    }
}

/// Runs a single case and returns its outcome (also the replay
/// entry point for a failure reported by [`run_campaign`]).
pub fn replay_case<P>(
    plan: &CampaignPlan,
    hooks: &CampaignHooks<'_, P>,
    case: &CaseId,
) -> RunOutcome<P>
where
    P: Protocol,
    P::Output: Clone,
{
    let nodes = (hooks.nodes)(case.seed);
    let n = nodes.len();
    let mut builder =
        Simulation::builder(nodes, case.scheduler.build()).seed(case.seed ^ 0x5ca1ab1e);
    if plan.duplication_percent > 0 {
        builder = builder.duplication(plan.duplication_percent);
    }
    if let Some(capacity) = plan.obs_recorder {
        builder = builder.instrument(capacity);
    }
    for party in case.corrupted.iter() {
        builder = builder.corrupt(
            party,
            (hooks.behavior)(case.behavior, party, case.seed ^ party as u64),
        );
    }
    let mut sim = builder.build();
    for (party, input) in (hooks.inputs)(case.seed, &case.corrupted) {
        sim.input(party, input);
    }
    let executed = sim.run_until_quiet(plan.max_steps);
    let outputs = (0..n).map(|p| sim.outputs(p).to_vec()).collect();
    let stats = sim.stats();
    let metrics = sim.metrics_merged();
    RunOutcome {
        outputs,
        nodes: sim.into_nodes(),
        corrupted: case.corrupted,
        stats,
        quiesced: executed < plan.max_steps,
        metrics,
    }
}

/// Sweeps the full grid, checking invariants after every case.
pub fn run_campaign<P>(plan: &CampaignPlan, hooks: &CampaignHooks<'_, P>) -> CampaignReport
where
    P: Protocol,
    P::Output: Clone,
{
    let mut report = CampaignReport::default();
    for scheduler in &plan.schedulers {
        for &behavior in &plan.behaviors {
            for corrupted in &plan.corruption_sets {
                for &seed in &plan.seeds {
                    let case = CaseId {
                        scheduler: scheduler.clone(),
                        behavior,
                        corrupted: *corrupted,
                        seed,
                    };
                    let outcome = replay_case(plan, hooks, &case);
                    report.cases_run += 1;
                    report.metrics.merge(&outcome.metrics);
                    if let Err(error) = (hooks.check)(&outcome) {
                        report.failures.push(CaseFailure { case, error });
                    }
                }
            }
        }
    }
    report
}

/// Ready-made invariant checkers to compose inside
/// [`CampaignHooks::check`].
pub mod invariants {
    use super::RunOutcome;
    use crate::protocol::Protocol;

    /// **Agreement** (single-shot protocols): any two honest parties
    /// that produced output produced the same first output.
    pub fn agreement<P>(outcome: &RunOutcome<P>) -> Result<(), String>
    where
        P: Protocol,
        P::Output: PartialEq,
    {
        let mut reference: Option<(usize, &P::Output)> = None;
        for p in outcome.honest() {
            if let Some(out) = outcome.outputs[p].first() {
                match reference {
                    None => reference = Some((p, out)),
                    Some((q, r)) => {
                        if out != r {
                            return Err(format!(
                                "agreement violated: party {p} disagrees with party {q}: \
                                 {:?} vs {:?}",
                                out, r
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// **Total order**: every honest party's output sequence is a prefix
    /// of every longer honest sequence.
    pub fn total_order<P>(outcome: &RunOutcome<P>) -> Result<(), String>
    where
        P: Protocol,
        P::Output: PartialEq,
    {
        let honest: Vec<usize> = outcome.honest().collect();
        for (i, &p) in honest.iter().enumerate() {
            for &q in &honest[i + 1..] {
                let (a, b) = (&outcome.outputs[p], &outcome.outputs[q]);
                let len = a.len().min(b.len());
                if a[..len] != b[..len] {
                    return Err(format!(
                        "total order violated between parties {p} and {q} within the first \
                         {len} outputs"
                    ));
                }
            }
        }
        Ok(())
    }

    /// **Liveness within the step budget**: the run quiesced and every
    /// honest party produced at least `min_outputs` outputs.
    pub fn liveness<P: Protocol>(
        outcome: &RunOutcome<P>,
        min_outputs: usize,
    ) -> Result<(), String> {
        if !outcome.quiesced {
            return Err("run did not quiesce within the step budget".into());
        }
        for p in outcome.honest() {
            let got = outcome.outputs[p].len();
            if got < min_outputs {
                return Err(format!(
                    "liveness violated: party {p} produced {got} outputs, needed {min_outputs}"
                ));
            }
        }
        Ok(())
    }

    /// **External validity**: every honest output satisfies `valid`.
    pub fn external_validity<P, F>(outcome: &RunOutcome<P>, valid: F) -> Result<(), String>
    where
        P: Protocol,
        F: Fn(&P::Output) -> bool,
    {
        for p in outcome.honest() {
            for (i, out) in outcome.outputs[p].iter().enumerate() {
                if !valid(out) {
                    return Err(format!(
                        "external validity violated: party {p} output #{i} is invalid: {:?}",
                        out
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults;
    use crate::protocol::Effects;

    /// Toy "agreement" protocol: every party broadcasts its input; each
    /// party outputs the smallest value it has heard from a strong
    /// majority... simplified: outputs the first value received from
    /// party 0 (so a mute/crash of party 0 yields no output — good for
    /// exercising the checker plumbing, not a real protocol).
    #[derive(Debug)]
    struct FollowLeader {
        decided: bool,
    }

    impl Protocol for FollowLeader {
        type Message = u64;
        type Input = u64;
        type Output = u64;

        fn on_input(&mut self, v: u64, fx: &mut Effects<u64, u64>) {
            fx.broadcast(v);
        }

        fn on_message(&mut self, from: PartyId, v: u64, fx: &mut Effects<u64, u64>) {
            if from == 0 && !self.decided {
                self.decided = true;
                fx.output(v);
            }
        }
    }

    fn hooks<'a>() -> CampaignHooks<'a, FollowLeader> {
        CampaignHooks {
            nodes: Box::new(|_seed| (0..4).map(|_| FollowLeader { decided: false }).collect()),
            behavior: Box::new(|kind, party, seed| match kind {
                BehaviorKind::Crash => Behavior::Crash,
                BehaviorKind::Equivocate => faults::equivocator(
                    party,
                    4,
                    FollowLeader { decided: false },
                    Some(7),
                    |to, m, _| m + to as u64,
                    seed,
                ),
                BehaviorKind::Replay => faults::replayer(4, 8, seed),
                BehaviorKind::Mutate => faults::mutator(
                    party,
                    4,
                    FollowLeader { decided: false },
                    Some(7),
                    |m, _| *m ^= 1,
                    50,
                    seed,
                ),
                BehaviorKind::Mute => faults::selective_mute(
                    party,
                    4,
                    FollowLeader { decided: false },
                    Some(7),
                    PartySet::singleton((party + 1) % 4),
                ),
                BehaviorKind::CrashRecover => {
                    faults::crash_recover(party, 4, || FollowLeader { decided: false }, None, 5, 20)
                }
            }),
            inputs: Box::new(|_seed, corrupted| {
                (0..4)
                    .filter(|p| !corrupted.contains(*p))
                    .map(|p| (p, 42))
                    .collect()
            }),
            check: Box::new(|outcome| {
                invariants::agreement(outcome)?;
                invariants::total_order(outcome)?;
                Ok(())
            }),
        }
    }

    fn small_plan() -> CampaignPlan {
        CampaignPlan {
            schedulers: vec![
                SchedulerKind::Random,
                SchedulerKind::Lifo,
                SchedulerKind::Lossy {
                    drop_percent: 50,
                    budget: 10,
                },
            ],
            behaviors: BehaviorKind::ALL.to_vec(),
            corruption_sets: vec![PartySet::singleton(3)],
            seeds: (0..4).collect(),
            max_steps: 50_000,
            duplication_percent: 10,
            obs_recorder: None,
        }
    }

    #[test]
    fn grid_is_fully_enumerated() {
        let plan = small_plan();
        let report = run_campaign(&plan, &hooks());
        assert_eq!(report.cases_run, 3 * 6 * 4);
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn violations_are_caught_and_minimal_seed_reported() {
        // Corrupting party 0 (the "leader" every honest node follows)
        // with an equivocator breaks agreement — the checker must see it.
        let mut plan = small_plan();
        plan.corruption_sets = vec![PartySet::singleton(0)];
        plan.behaviors = vec![BehaviorKind::Equivocate];
        let report = run_campaign(&plan, &hooks());
        assert!(!report.passed(), "equivocating leader must split outputs");
        let minimal = report.minimal_failure().expect("failure recorded");
        let min_seed = report.failures.iter().map(|f| f.case.seed).min().unwrap();
        assert_eq!(minimal.case.seed, min_seed);
        // And the reported case replays to the same verdict.
        let outcome = replay_case(&plan, &hooks(), &minimal.case);
        assert!(
            invariants::agreement(&outcome).is_err(),
            "replay reproduces"
        );
    }

    #[test]
    fn summary_mentions_coordinates() {
        let mut plan = small_plan();
        plan.corruption_sets = vec![PartySet::singleton(0)];
        plan.behaviors = vec![BehaviorKind::Equivocate];
        let report = run_campaign(&plan, &hooks());
        let s = report.summary();
        assert!(s.contains("FAILED") && s.contains("Equivocate"), "{s}");
    }
}
