//! Observability under fire: the instrumentation layer driven through
//! the fault-injection campaign grid.
//!
//! Three properties must hold for the metrics to be trustworthy:
//!
//! 1. **Determinism** — a campaign is replayed from seeds, so two runs
//!    of the same plan must produce *byte-identical* metrics dumps.
//!    Any drift would mean instrumentation observes nondeterministic
//!    state, which would also poison replay debugging.
//! 2. **Bounded memory** — the flight recorder is a fixed ring; a
//!    duplicating scheduler that multiplies traffic must not grow it
//!    past its capacity.
//! 3. **Signal** — the per-layer counters, decision histograms, and
//!    trace events actually fire: an instrumented grid reports nonzero
//!    sends/receives for every exercised layer and a decision round
//!    histogram for ABBA.

use sintra_adversary::party::PartySet;
use sintra_net::campaign::{run_campaign, BehaviorKind, CampaignPlan, SchedulerKind};
use sintra_net::sim::{RandomScheduler, Simulation};
use sintra_obs::sink::to_json;
use sintra_obs::{EventKind, Layer};
use sintra_protocols::harness::{abba_hooks, mvba_hooks, rbc_hooks};
use sintra_protocols::nodes::abba_nodes;

fn smoke_plan(max_steps: u64) -> CampaignPlan {
    CampaignPlan {
        schedulers: vec![SchedulerKind::Random, SchedulerKind::Lifo],
        behaviors: vec![BehaviorKind::Crash, BehaviorKind::Equivocate],
        corruption_sets: vec![PartySet::singleton(3)],
        seeds: (0..3).collect(),
        max_steps,
        duplication_percent: 15,
        obs_recorder: Some(1024),
    }
}

#[test]
fn metrics_are_byte_identical_across_replays() {
    let plan = smoke_plan(5_000_000);
    let a = run_campaign(&plan, &abba_hooks());
    let b = run_campaign(&plan, &abba_hooks());
    assert!(a.passed(), "{}", a.summary());
    assert_eq!(
        to_json(&a.metrics),
        to_json(&b.metrics),
        "identical plans must serialize to byte-identical dumps"
    );
    assert!(!a.metrics.is_empty(), "instrumented grid recorded nothing");
}

#[test]
fn abba_grid_reports_per_kind_traffic_and_round_histogram() {
    let plan = smoke_plan(5_000_000);
    let report = run_campaign(&plan, &abba_hooks());
    assert!(report.passed(), "{}", report.summary());
    let m = &report.metrics;
    for counter in [
        "abba.sent.pre_vote",
        "abba.sent.main_vote",
        "abba.sent.coin",
        "abba.recv.pre_vote",
        "abba.decided",
        "abba.rounds",
    ] {
        assert!(
            m.counter(counter) > 0,
            "missing {counter}: {:?}",
            m.counters
        );
    }
    let hist = m.hists.get("abba.decide_round").expect("round histogram");
    assert_eq!(
        hist.count,
        m.counter("abba.decided"),
        "one histogram sample per decision"
    );
    // Every decision took at least one round.
    assert!(m.counter("abba.rounds") >= m.counter("abba.decided"));
}

#[test]
fn mvba_grid_reports_sublayer_breakdown() {
    let mut plan = smoke_plan(50_000_000);
    plan.seeds = (0..2).collect();
    let report = run_campaign(&plan, &mvba_hooks());
    assert!(report.passed(), "{}", report.summary());
    let m = &report.metrics;
    // MVBA's embedded consistent-broadcast and binary-agreement
    // traffic must surface under those layers' counters.
    for counter in [
        "mvba.sent.proposal",
        "mvba.decided",
        "cbc.sent.send",
        "abba.sent.pre_vote",
    ] {
        assert!(
            m.counter(counter) > 0,
            "missing {counter}: {:?}",
            m.counters
        );
    }
}

#[test]
fn uninstrumented_campaign_records_nothing() {
    let mut plan = smoke_plan(500_000);
    plan.obs_recorder = None;
    let report = run_campaign(&plan, &rbc_hooks());
    assert!(report.passed(), "{}", report.summary());
    assert!(
        report.metrics.is_empty(),
        "disabled instrumentation must cost (and record) nothing: {:?}",
        report.metrics.counters
    );
}

#[test]
fn recorder_memory_stays_bounded_under_duplication() {
    // A duplicating network multiplies deliveries — and therefore
    // events — but the flight recorder is a ring: it must retain at
    // most `capacity` events no matter how long the run gets.
    let capacity = 64;
    let mut sim = Simulation::builder(abba_nodes(4, 1, 7), RandomScheduler)
        .seed(7)
        .instrument(capacity)
        .duplication(40)
        .build();
    for p in 0..4 {
        sim.input(p, p % 2 == 0);
    }
    sim.run_until_quiet(5_000_000);
    for p in 0..4 {
        let obs = sim.obs(p);
        assert!(
            obs.recorded() > 0,
            "party {p} recorded no events under an instrumented run"
        );
        assert!(
            obs.events().len() <= capacity,
            "party {p} retained {} events, capacity {capacity}",
            obs.events().len()
        );
        // Deliver/Decide events carry the layer they were observed at.
        assert!(obs
            .events()
            .iter()
            .all(|e| e.layer == Layer::Abba || e.layer == Layer::Net));
    }
    // At least one party traced its decision.
    let decided = (0..4)
        .flat_map(|p| sim.obs(p).events())
        .filter(|e| e.kind == EventKind::Decide && e.layer == Layer::Abba)
        .count();
    assert!(decided > 0, "no Decide event retained anywhere");
}
