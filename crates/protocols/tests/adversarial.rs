//! Adversarial integration tests: the protocol stack under targeted
//! starvation, partitions, crash+Byzantine mixes, and generalized
//! structures — the schedules the paper's proofs quantify over.

use std::sync::Arc;

use sintra_adversary::attributes::example1;
use sintra_adversary::party::PartySet;
use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::Dealer;
use sintra_crypto::rng::SeededRng;
use sintra_net::protocol::{Effects, Protocol};
use sintra_net::sim::{
    Behavior, LifoScheduler, PartitionScheduler, RandomScheduler, Simulation,
    TargetedDelayScheduler,
};
use sintra_protocols::abba::{Abba, AbbaMessage};
use sintra_protocols::abc::abc_nodes;
use sintra_protocols::common::{Outbox, Tag};
use sintra_protocols::rbc::{RbcMessage, ReliableBroadcast};

#[derive(Debug)]
struct AbbaNode {
    abba: Abba<()>,
    rng: SeededRng,
}

impl Protocol for AbbaNode {
    type Message = AbbaMessage<()>;
    type Input = bool;
    type Output = bool;

    fn on_input(&mut self, input: bool, fx: &mut Effects<Self::Message, bool>) {
        let mut out = Outbox::new(self.abba.n());
        if let Some(d) = self.abba.propose(input, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: usize,
        msg: Self::Message,
        fx: &mut Effects<Self::Message, bool>,
    ) {
        let mut out = Outbox::new(self.abba.n());
        if let Some(d) = self.abba.on_message(from, msg, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }
}

fn abba_nodes(n: usize, t: usize, seed: u64) -> Vec<AbbaNode> {
    let ts = TrustStructure::threshold(n, t).unwrap();
    let mut rng = SeededRng::new(seed);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let public = Arc::new(public);
    bundles
        .into_iter()
        .map(|b| AbbaNode {
            abba: Abba::new(Tag::root("adv"), Arc::clone(&public), Arc::new(b)),
            rng: SeededRng::new(seed ^ b"x"[0] as u64),
        })
        .collect()
}

#[test]
fn abba_agrees_under_targeted_starvation() {
    // Starve one honest party's links completely: agreement must still
    // hold among everyone (eventual delivery saves the victim).
    for victim in 0..4usize {
        let mut sim = Simulation::builder(
            abba_nodes(4, 1, 500 + victim as u64),
            TargetedDelayScheduler {
                victims: PartySet::singleton(victim),
            },
        )
        .seed(600 + victim as u64)
        .build();
        for p in 0..4 {
            sim.input(p, p % 2 == 0);
        }
        sim.run_until_quiet(10_000_000);
        let decisions: Vec<bool> = (0..4)
            .map(|p| *sim.outputs(p).first().expect("decides"))
            .collect();
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "agreement under starvation of {victim}: {decisions:?}"
        );
    }
}

#[test]
fn abba_agrees_across_partition_heal() {
    let group: PartySet = [0, 1].into_iter().collect();
    let mut sim = Simulation::builder(
        abba_nodes(4, 1, 700),
        PartitionScheduler {
            group,
            heal_at: 500,
        },
    )
    .seed(701)
    .build();
    for p in 0..4 {
        sim.input(p, p < 2);
    }
    sim.run_until_quiet(10_000_000);
    let decisions: Vec<bool> = (0..4)
        .map(|p| *sim.outputs(p).first().expect("decides after heal"))
        .collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn abc_under_combined_crash_and_lifo() {
    let ts = TrustStructure::threshold(7, 2).unwrap();
    let mut rng = SeededRng::new(710);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let mut sim = Simulation::builder(abc_nodes(public, bundles, 710), LifoScheduler)
        .seed(711)
        .build();
    sim.corrupt(5, Behavior::Crash);
    sim.corrupt(6, Behavior::Crash);
    sim.input(0, b"alpha".to_vec());
    sim.input(3, b"beta".to_vec());
    sim.run_until_quiet(200_000_000);
    let reference: Vec<_> = sim.outputs(0).to_vec();
    assert_eq!(reference.len(), 2);
    for p in 1..5 {
        assert_eq!(sim.outputs(p), reference.as_slice(), "party {p}");
    }
}

#[test]
fn abc_byzantine_flood_of_stale_rounds() {
    // A corrupted server floods old-round MVBA garbage; the stack drops
    // it and keeps ordering.
    let ts = TrustStructure::threshold(4, 1).unwrap();
    let mut rng = SeededRng::new(720);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let mut sim = Simulation::builder(abc_nodes(public, bundles, 720), RandomScheduler)
        .seed(721)
        .build();
    sim.corrupt(
        3,
        Behavior::Custom(Box::new(|_from, msg, _| {
            use sintra_protocols::abc::AbcMessage;
            match msg {
                // Replay everything claiming an absurd round.
                AbcMessage::Mvba { inner, .. } => (0..3)
                    .map(|p| {
                        (
                            p,
                            AbcMessage::Mvba {
                                round: 9999,
                                inner: inner.clone(),
                            },
                        )
                    })
                    .collect(),
                other => (0..3).map(|p| (p, other.clone())).collect(),
            }
        })),
    );
    sim.input(0, b"steady".to_vec());
    sim.input(1, b"on".to_vec());
    sim.run_until_quiet(200_000_000);
    let reference: Vec<_> = sim.outputs(0).to_vec();
    assert_eq!(reference.len(), 2);
    for p in 1..3 {
        assert_eq!(sim.outputs(p), reference.as_slice(), "party {p}");
    }
}

#[test]
fn rbc_on_generalized_structure_with_class_crash() {
    // Reliable broadcast under Example 1 with the whole class a crashed:
    // the surviving five parties deliver identically.
    #[derive(Debug)]
    struct Node {
        rbc: ReliableBroadcast,
    }
    impl Protocol for Node {
        type Message = RbcMessage;
        type Input = Vec<u8>;
        type Output = Vec<u8>;
        fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<RbcMessage, Vec<u8>>) {
            let mut out = Outbox::new(self.rbc.n());
            self.rbc.broadcast(input, &mut out);
            for (to, m) in out {
                fx.send(to, m);
            }
        }
        fn on_message(
            &mut self,
            from: usize,
            msg: RbcMessage,
            fx: &mut Effects<RbcMessage, Vec<u8>>,
        ) {
            let mut out = Outbox::new(self.rbc.n());
            if let Some(d) = self.rbc.on_message(from, msg, &mut out) {
                fx.output(d);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }
    }
    let ts = example1().unwrap();
    let nodes: Vec<Node> = (0..9)
        .map(|me| Node {
            rbc: ReliableBroadcast::new(me, ts.clone(), 4),
        })
        .collect();
    let mut sim = Simulation::builder(nodes, RandomScheduler)
        .seed(730)
        .build();
    for p in 0..4 {
        sim.corrupt(p, Behavior::Crash);
    }
    sim.input(4, b"class-b-speaks".to_vec());
    sim.run_until_quiet(10_000_000);
    for p in 4..9 {
        assert_eq!(
            sim.outputs(p),
            &[b"class-b-speaks".to_vec()],
            "party {p} delivers despite class-a wipeout"
        );
    }
}

#[test]
fn scabc_orders_identically_across_schedules_with_duplication() {
    // Secure causal atomic broadcast under message duplication and
    // random scheduling: plaintexts come out in one agreed order,
    // exactly once each.
    use sintra_protocols::scabc::scabc_nodes;
    let ts = TrustStructure::threshold(4, 1).unwrap();
    let mut rng = SeededRng::new(800);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let mut sim = Simulation::builder(scabc_nodes(public, bundles, 800), RandomScheduler)
        .seed(801)
        .build();
    sim.enable_duplication(30);
    for p in 0..3 {
        sim.input(p, (format!("causal-{p}").into_bytes(), b"l".to_vec()));
    }
    sim.run_until_quiet(500_000_000);
    let reference: Vec<Vec<u8>> = sim.outputs(0).iter().map(|d| d.plaintext.clone()).collect();
    assert_eq!(reference.len(), 3);
    for p in 1..4 {
        let got: Vec<Vec<u8>> = sim.outputs(p).iter().map(|d| d.plaintext.clone()).collect();
        assert_eq!(got, reference, "party {p}");
    }
}

#[test]
fn mvba_rejects_forged_vouchers_in_votes() {
    // A corrupted party injects ABBA 1-pre-votes whose "evidence" is a
    // voucher with a garbage signature; honest parties must treat them
    // as invalid and still decide a genuine proposal.
    use parking_lot::Mutex;
    use sintra_protocols::mvba::{Mvba, MvbaMessage};
    #[derive(Debug)]
    struct Node {
        mvba: Mvba,
        rng: SeededRng,
    }
    impl Protocol for Node {
        type Message = MvbaMessage;
        type Input = Vec<u8>;
        type Output = Vec<u8>;
        fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<MvbaMessage, Vec<u8>>) {
            let mut out = Outbox::new(self.mvba.n());
            if let Some(d) = self.mvba.propose(input, &mut self.rng, &mut out) {
                fx.output(d);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }
        fn on_message(
            &mut self,
            from: usize,
            msg: MvbaMessage,
            fx: &mut Effects<MvbaMessage, Vec<u8>>,
        ) {
            let mut out = Outbox::new(self.mvba.n());
            if let Some(d) = self.mvba.on_message(from, msg, &mut self.rng, &mut out) {
                fx.output(d);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }
    }
    let ts = TrustStructure::threshold(4, 1).unwrap();
    let mut rng = SeededRng::new(810);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let public = Arc::new(public);
    let nodes: Vec<Node> = bundles
        .iter()
        .map(|b| Node {
            mvba: Mvba::new(
                Tag::root("forge-test"),
                Arc::clone(&public),
                Arc::new(b.clone()),
                Arc::new(|_| true),
            ),
            rng: SeededRng::new(811 + b.party() as u64),
        })
        .collect();
    let mut sim = Simulation::builder(nodes, RandomScheduler)
        .seed(812)
        .build();
    // Corrupted party 3 mangles any Vote traffic it relays: it replaces
    // vote payload-evidence with garbage by corrupting the bytes it saw.
    let seen_votes = Arc::new(Mutex::new(0u64));
    let counter = Arc::clone(&seen_votes);
    sim.corrupt(
        3,
        Behavior::Custom(Box::new(move |_from, msg: MvbaMessage, _| {
            if matches!(msg, MvbaMessage::Vote { .. }) {
                *counter.lock() += 1;
            }
            // Replay traffic verbatim to keep pressure on validation.
            (0..3).map(|p| (p, msg.clone())).collect()
        })),
    );
    for p in 0..3 {
        sim.input(p, format!("genuine-{p}").into_bytes());
    }
    sim.run_until_quiet(200_000_000);
    let decisions: Vec<Vec<u8>> = (0..3)
        .map(|p| sim.outputs(p).first().cloned().expect("decides"))
        .collect();
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    assert!(decisions[0].starts_with(b"genuine-"));
}

#[test]
fn abba_decision_proofs_catch_up_late_party() {
    // Party 3 receives nothing until everyone else has decided; the
    // transferable decision proof lets it decide instantly afterwards.
    let mut sim = Simulation::builder(
        abba_nodes(4, 1, 740),
        TargetedDelayScheduler {
            victims: PartySet::singleton(3),
        },
    )
    .seed(741)
    .build();
    for p in 0..3 {
        sim.input(p, true);
    }
    // Party 3 never proposes — it still must decide via the proof.
    sim.run_until_quiet(10_000_000);
    assert_eq!(
        sim.outputs(3).first(),
        Some(&true),
        "laggard decides via proof"
    );
}
