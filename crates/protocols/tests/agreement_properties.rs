//! Randomized-schedule property tests for the protocol stack: over
//! arbitrary seeds (i.e. arbitrary adversarial-ish message orders),
//! agreement and total order must hold. Case counts are kept modest —
//! each case is a whole protocol run.

use proptest::prelude::*;
use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::Dealer;
use sintra_crypto::rng::SeededRng;
use sintra_net::sim::{Behavior, RandomScheduler, Simulation};
use sintra_protocols::abc::abc_nodes;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn abc_total_order_any_schedule(seed in any::<u64>(), crash in 0usize..4) {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(seed);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let nodes = abc_nodes(public, bundles, seed);
        let mut sim = Simulation::builder(nodes, RandomScheduler).seed(seed ^ 0xabcd).build();
        sim.corrupt(crash, Behavior::Crash);
        let honest: Vec<usize> = (0..4).filter(|p| *p != crash).collect();
        for (i, &p) in honest.iter().enumerate() {
            sim.input(p, format!("req-{i}").into_bytes());
        }
        sim.run_until_quiet(200_000_000);
        let reference: Vec<_> = sim.outputs(honest[0]).to_vec();
        prop_assert_eq!(reference.len(), honest.len(), "all honest requests ordered");
        for &p in &honest[1..] {
            prop_assert_eq!(sim.outputs(p), reference.as_slice());
        }
        // Sequence numbers are gapless from zero.
        for (i, d) in reference.iter().enumerate() {
            prop_assert_eq!(d.seq, i as u64);
        }
    }
}
