//! Codec round-trip and adversarial-decode tests for every wire enum.
//!
//! Three properties, each over *real* dealt crypto material (threshold
//! signature shares, combined signatures, coin and decryption shares
//! with live Chaum-Pedersen proofs):
//!
//! 1. **Identity** — `decode_exact(encode(m)) == m` for a generated
//!    corpus covering every variant of all eight protocol message
//!    enums (and the nested justification enums).
//! 2. **Size truth** — `wire_size() == encode().len()` exactly, so the
//!    byte accounting the experiments report is the byte count a real
//!    socket would carry.
//! 3. **No panic paths** — decoding any truncated prefix, any
//!    single-byte corruption, oversized length fields, and bad
//!    discriminants returns a typed [`CodecError`] instead of
//!    panicking or succeeding.

use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::{Dealer, PublicParameters, ServerKeyBundle};
use sintra_crypto::rng::SeededRng;
use sintra_crypto::tsig::{QuorumRule, SignatureShare, ThresholdSignature};
use sintra_protocols::abba::{
    AbbaMessage, MainVote, MainVoteJust, MainVoteValue, PreVote, PreVoteJust,
};
use sintra_protocols::abc::AbcMessage;
use sintra_protocols::cbc::{CbcMessage, Voucher};
use sintra_protocols::codec::{CodecError, WireCodec};
use sintra_protocols::fdabc::FdMessage;
use sintra_protocols::mvba::MvbaMessage;
use sintra_protocols::optimistic::OptMessage;
use sintra_protocols::rbc::RbcMessage;
use sintra_protocols::scabc::ScabcMessage;
use sintra_protocols::wire::WireSize;

const N: usize = 4;
const T: usize = 1;

struct Material {
    public: PublicParameters,
    bundles: Vec<ServerKeyBundle>,
    rng: SeededRng,
}

fn material(seed: u64) -> Material {
    let ts = TrustStructure::threshold(N, T).expect("4/1 threshold");
    let (public, bundles) = Dealer::deal(&ts, &mut SeededRng::new(seed));
    Material {
        public,
        bundles,
        rng: SeededRng::new(seed ^ 0xC0DEC),
    }
}

impl Material {
    fn sig_share(&mut self, msg: &[u8], party: usize) -> SignatureShare {
        self.bundles[party]
            .signing_key()
            .sign_share(msg, &mut self.rng)
    }

    fn tsig(&mut self, msg: &[u8]) -> ThresholdSignature {
        let shares: Vec<SignatureShare> = (0..N).map(|p| self.sig_share(msg, p)).collect();
        self.public
            .signing()
            .combine(msg, &shares, QuorumRule::Core)
            .expect("core quorum combines")
    }

    fn coin_share(&mut self, name: &[u8], party: usize) -> sintra_crypto::coin::CoinShare {
        self.bundles[party].coin_key().share(name, &mut self.rng)
    }

    fn decryption_share(
        &mut self,
        party: usize,
    ) -> ([u8; 32], sintra_crypto::tenc::DecryptionShare) {
        let ct = self
            .public
            .encryption()
            .encrypt(b"secret payload", b"label", &mut self.rng);
        let share = self.bundles[party]
            .decryption_key()
            .decrypt_share(self.public.encryption(), &ct, &mut self.rng)
            .expect("well-formed ciphertext yields a share");
        (ct.digest(), share)
    }

    fn auth_sig(&mut self, msg: &[u8], party: usize) -> sintra_crypto::schnorr::Signature {
        self.bundles[party].auth_key().sign(msg, &mut self.rng)
    }

    fn voucher(&mut self, payload: &[u8]) -> Voucher {
        Voucher {
            payload: payload.to_vec(),
            signature: self.tsig(payload),
        }
    }

    fn pre_vote(&mut self, round: u64, value: bool) -> PreVote<Voucher> {
        let just = match round {
            1 => {
                if value {
                    PreVoteJust::FirstRound(Some(self.voucher(b"candidate")))
                } else {
                    PreVoteJust::FirstRound(None)
                }
            }
            r if r % 2 == 0 => PreVoteJust::Hard(self.tsig(b"hard")),
            _ => PreVoteJust::Coin(self.tsig(b"coin")),
        };
        PreVote {
            round,
            value,
            just,
            share: self.sig_share(b"pre", (round as usize) % N),
        }
    }

    fn main_vote(&mut self, round: u64, vote: MainVoteValue) -> MainVote<Voucher> {
        let just = match vote {
            MainVoteValue::Abstain => MainVoteJust::Abstain(
                Box::new(self.pre_vote(round, false)),
                Box::new(self.pre_vote(round, true)),
            ),
            _ => MainVoteJust::Value(self.tsig(b"value")),
        };
        MainVote {
            round,
            vote,
            just,
            share: self.sig_share(b"main", (round as usize) % N),
        }
    }
}

/// Round-trips one message and checks the size accounting.
fn check<M: WireCodec + WireSize + PartialEq + std::fmt::Debug>(msg: M) {
    let bytes = msg.encode();
    assert_eq!(
        msg.wire_size(),
        bytes.len(),
        "WireSize must equal encoded length for {msg:?}"
    );
    let back = M::decode_exact(&bytes).expect("canonical encoding decodes");
    assert_eq!(back, msg, "decode(encode(m)) == m");
    // Every strict prefix must fail with an error, never panic.
    for cut in 0..bytes.len() {
        assert!(
            M::decode_exact(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
    // Trailing garbage is rejected.
    let mut padded = bytes.clone();
    padded.push(0xAA);
    assert!(M::decode_exact(&padded).is_err(), "trailing byte rejected");
}

/// Flips every byte (one at a time) and asserts decoding never panics;
/// the result may legitimately decode (e.g. a flipped payload byte)
/// but must not crash.
fn fuzz_bitflips<M: WireCodec>(bytes: &[u8]) {
    for i in 0..bytes.len() {
        let mut mutated = bytes.to_vec();
        mutated[i] ^= 0xFF;
        let _ = M::decode_exact(&mutated); // must return, not panic
    }
}

fn rbc_corpus() -> Vec<RbcMessage> {
    vec![
        RbcMessage::Send(vec![]),
        RbcMessage::Send(b"hello world".to_vec()),
        RbcMessage::Echo(vec![0xFF; 300]),
        RbcMessage::Ready(vec![7; 65]),
    ]
}

fn cbc_corpus(m: &mut Material) -> Vec<CbcMessage> {
    vec![
        CbcMessage::Send(b"proposal".to_vec()),
        CbcMessage::Echo(m.sig_share(b"echo", 2)),
        CbcMessage::Final(b"proposal".to_vec(), m.tsig(b"final")),
    ]
}

fn abba_corpus(m: &mut Material) -> Vec<AbbaMessage<Voucher>> {
    vec![
        AbbaMessage::PreVote(m.pre_vote(1, false)),
        AbbaMessage::PreVote(m.pre_vote(1, true)),
        AbbaMessage::PreVote(m.pre_vote(2, true)),
        AbbaMessage::PreVote(m.pre_vote(3, false)),
        AbbaMessage::MainVote(m.main_vote(2, MainVoteValue::Zero)),
        AbbaMessage::MainVote(m.main_vote(2, MainVoteValue::One)),
        AbbaMessage::MainVote(m.main_vote(4, MainVoteValue::Abstain)),
        AbbaMessage::Coin {
            round: 9,
            share: m.coin_share(b"abba/coin/9", 1),
        },
        AbbaMessage::Decided {
            round: 5,
            value: true,
            proof: m.tsig(b"decided"),
        },
    ]
}

fn mvba_corpus(m: &mut Material) -> Vec<MvbaMessage> {
    let mut corpus: Vec<MvbaMessage> = cbc_corpus(m)
        .into_iter()
        .map(|inner| MvbaMessage::Proposal { proposer: 3, inner })
        .collect();
    corpus.push(MvbaMessage::ElectCoin {
        election: 2,
        share: m.coin_share(b"mvba/elect/2", 0),
    });
    corpus.extend(
        abba_corpus(m)
            .into_iter()
            .map(|inner| MvbaMessage::Vote { election: 2, inner }),
    );
    corpus
}

fn abc_corpus(m: &mut Material) -> Vec<AbcMessage> {
    let mut corpus = vec![
        AbcMessage::Push(b"client request".to_vec()),
        AbcMessage::Queued {
            round: 3,
            batch: vec![b"head of queue".to_vec()],
            sig: m.auth_sig(b"queued", 2),
        },
        AbcMessage::Queued {
            round: 3,
            batch: vec![b"first".to_vec(), vec![9u8; 200], b"third".to_vec()],
            sig: m.auth_sig(b"batched", 1),
        },
        AbcMessage::Queued {
            round: 4,
            batch: vec![],
            sig: m.auth_sig(b"filler", 0),
        },
    ];
    corpus.extend(
        mvba_corpus(m)
            .into_iter()
            .map(|inner| AbcMessage::Mvba { round: 3, inner }),
    );
    corpus
}

fn scabc_corpus(m: &mut Material) -> Vec<ScabcMessage> {
    let (ct_digest, share) = m.decryption_share(1);
    let mut corpus = vec![ScabcMessage::Share { ct_digest, share }];
    corpus.extend(abc_corpus(m).into_iter().map(ScabcMessage::Abc));
    corpus
}

fn opt_corpus(m: &mut Material) -> Vec<OptMessage> {
    let mut corpus = vec![
        OptMessage::Push(b"req".to_vec()),
        OptMessage::Propose {
            epoch: 0,
            seq: 7,
            payload: b"assigned".to_vec(),
        },
        OptMessage::Prepare {
            epoch: 0,
            seq: 7,
            digest: [3; 32],
            share: m.sig_share(b"prepare", 1),
        },
        OptMessage::Commit {
            epoch: 0,
            seq: 7,
            digest: [3; 32],
            share: m.sig_share(b"commit", 2),
        },
        OptMessage::Deliver {
            epoch: 0,
            seq: 7,
            digest: [3; 32],
            cert: m.tsig(b"deliver"),
            payload: b"assigned".to_vec(),
        },
        OptMessage::Complain {
            epoch: 0,
            share: m.sig_share(b"complain", 3),
        },
        OptMessage::Report {
            epoch: 0,
            report: vec![9; 120],
        },
    ];
    corpus.extend(
        mvba_corpus(m)
            .into_iter()
            .take(3)
            .map(|inner| OptMessage::Change { epoch: 0, inner }),
    );
    corpus
}

fn fd_corpus() -> Vec<FdMessage> {
    vec![
        FdMessage::Push(b"payload".to_vec()),
        FdMessage::Order {
            view: 1,
            seq: 4,
            payload: b"payload".to_vec(),
        },
        FdMessage::Ack {
            view: 1,
            seq: 4,
            digest: [8; 32],
        },
        FdMessage::Suspect { view: 2 },
    ]
}

#[test]
fn rbc_round_trips() {
    for msg in rbc_corpus() {
        check(msg);
    }
}

#[test]
fn cbc_round_trips() {
    let mut m = material(11);
    for msg in cbc_corpus(&mut m) {
        check(msg);
    }
}

#[test]
fn abba_round_trips() {
    let mut m = material(12);
    for msg in abba_corpus(&mut m) {
        check(msg);
    }
}

#[test]
fn mvba_round_trips() {
    let mut m = material(13);
    for msg in mvba_corpus(&mut m) {
        check(msg);
    }
}

#[test]
fn abc_round_trips() {
    let mut m = material(14);
    for msg in abc_corpus(&mut m) {
        check(msg);
    }
}

#[test]
fn scabc_round_trips() {
    let mut m = material(15);
    for msg in scabc_corpus(&mut m) {
        check(msg);
    }
}

#[test]
fn opt_round_trips() {
    let mut m = material(16);
    for msg in opt_corpus(&mut m) {
        check(msg);
    }
}

#[test]
fn fd_round_trips() {
    for msg in fd_corpus() {
        check(msg);
    }
}

#[test]
fn voucher_round_trips() {
    let mut m = material(17);
    let v = m.voucher(b"standalone voucher");
    let bytes = v.encode();
    assert_eq!(v.wire_size(), bytes.len());
    let back = Voucher::decode_exact(&bytes).expect("decodes");
    assert_eq!(back.payload, v.payload);
    assert_eq!(back.signature, v.signature);
}

#[test]
fn bad_discriminants_are_rejected_not_panics() {
    // Leading discriminant out of range for each enum.
    assert!(matches!(
        RbcMessage::decode_exact(&[9]),
        Err(CodecError::BadDiscriminant {
            what: "RbcMessage",
            value: 9
        })
    ));
    assert!(matches!(
        CbcMessage::decode_exact(&[3]),
        Err(CodecError::BadDiscriminant { .. })
    ));
    assert!(matches!(
        AbbaMessage::<Voucher>::decode_exact(&[4]),
        Err(CodecError::BadDiscriminant { .. })
    ));
    assert!(matches!(
        MvbaMessage::decode_exact(&[3]),
        Err(CodecError::BadDiscriminant { .. })
    ));
    assert!(matches!(
        AbcMessage::decode_exact(&[3]),
        Err(CodecError::BadDiscriminant { .. })
    ));
    assert!(matches!(
        ScabcMessage::decode_exact(&[2]),
        Err(CodecError::BadDiscriminant { .. })
    ));
    assert!(matches!(
        OptMessage::decode_exact(&[8]),
        Err(CodecError::BadDiscriminant { .. })
    ));
    assert!(matches!(
        FdMessage::decode_exact(&[4]),
        Err(CodecError::BadDiscriminant { .. })
    ));
    // Non-0/1 boolean inside an ABBA pre-vote.
    let mut m = material(18);
    let mut bytes = AbbaMessage::<Voucher>::PreVote(m.pre_vote(1, false)).encode();
    bytes[9] = 2; // tag(1) + round(8), then the value byte
    assert!(matches!(
        AbbaMessage::<Voucher>::decode_exact(&bytes),
        Err(CodecError::BadDiscriminant { what: "bool", .. })
    ));
}

#[test]
fn oversized_length_fields_are_rejected() {
    // RBC Send claiming a 4 GiB payload: must be rejected on the
    // length field alone, without allocating.
    let mut bytes = vec![0u8];
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(
        RbcMessage::decode_exact(&bytes),
        Err(CodecError::Oversized { .. })
    ));
    // Coin share claiming u32::MAX components inside an ABBA coin.
    let mut bytes = vec![2u8]; // AbbaMessage::Coin
    bytes.extend_from_slice(&1u64.to_be_bytes()); // round
    bytes.extend_from_slice(&0u32.to_be_bytes()); // party
    bytes.extend_from_slice(&u32::MAX.to_be_bytes()); // component count
    assert!(matches!(
        AbbaMessage::<Voucher>::decode_exact(&bytes),
        Err(CodecError::Oversized { .. })
    ));
}

#[test]
fn corrupted_crypto_elements_are_rejected() {
    let mut m = material(19);
    // A threshold signature whose signer mask promises more signatures
    // than are present.
    let sig = m.tsig(b"msg");
    let mut bytes = CbcMessage::Final(b"p".to_vec(), sig).encode();
    let mask_at = 1 + 4 + 1; // tag + len("p") + payload
    bytes[mask_at..mask_at + 16].copy_from_slice(&u128::MAX.to_be_bytes());
    assert!(CbcMessage::decode_exact(&bytes).is_err());
}

#[test]
fn single_byte_corruptions_never_panic() {
    let mut m = material(20);
    let msgs = vec![
        ScabcMessage::Abc(AbcMessage::Mvba {
            round: 1,
            inner: MvbaMessage::Vote {
                election: 0,
                inner: AbbaMessage::MainVote(m.main_vote(2, MainVoteValue::Abstain)),
            },
        }),
        {
            let (ct_digest, share) = m.decryption_share(2);
            ScabcMessage::Share { ct_digest, share }
        },
    ];
    for msg in msgs {
        fuzz_bitflips::<ScabcMessage>(&msg.encode());
    }
    for msg in opt_corpus(&mut m).into_iter().take(4) {
        fuzz_bitflips::<OptMessage>(&msg.encode());
    }
}
