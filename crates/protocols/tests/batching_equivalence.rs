//! Ordering-equivalence properties for the batched, pipelined ABC hot
//! path: amortizing rounds (batch_cap > 1) and overlapping them
//! (pipeline depth K > 1) are throughput moves and must be *invisible*
//! to the service semantics. Over arbitrary seeds — i.e. arbitrary
//! adversarial-ish schedules, with the lossy/duplicating campaign
//! schedulers in the loop — a batched + pipelined cluster must agree on
//! one gapless total order containing exactly the payloads the
//! unbatched seed configuration orders (the paper's fairness condition:
//! no honest payload is starved), with the seed's delivery structure
//! (rounds ascend, carriers ascend within a round) and the seed's
//! carrier FIFO (a submitter's own carried payloads never reorder).
//! Exact global order equality is only well-defined under *sequential*
//! load — under concurrent load even the seed ordering depends on
//! per-carrier queue arrival order, which the scheduler permutes — so
//! that is where it is asserted exactly.

use proptest::prelude::*;
use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::Dealer;
use sintra_crypto::rng::SeededRng;
use sintra_net::sim::{LossyScheduler, RandomScheduler, Simulation};
use sintra_protocols::abc::{abc_nodes, AbcDeliver, AbcTuning};
use std::collections::BTreeSet;

/// Runs a 4-party cluster under the lossy/duplicating campaign
/// schedulers, with every node configured to
/// (`batch_cap`, `pipeline_depth`), and returns party 0's delivery
/// sequence after checking all parties agree on it and that sequence
/// numbers are gapless from zero. `sequential` quiesces the network
/// after every submission (the schedule where the total order is fully
/// determined); otherwise all inputs are submitted up front.
fn run_cluster(
    seed: u64,
    inputs: &[(usize, Vec<u8>)],
    batch_cap: usize,
    pipeline_depth: u64,
    sequential: bool,
) -> Vec<AbcDeliver> {
    let ts = TrustStructure::threshold(4, 1).unwrap();
    let mut rng = SeededRng::new(seed);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    let mut nodes = abc_nodes(public, bundles, seed);
    for node in &mut nodes {
        node.endpoint_mut().tune(&AbcTuning {
            batch_cap,
            pipeline_depth,
            ..AbcTuning::default()
        });
    }
    let scheduler = LossyScheduler::new(RandomScheduler, 40, 64);
    let mut sim = Simulation::builder(nodes, scheduler)
        .seed(seed ^ 0x00ba_7c4e)
        .duplication(30)
        .build();
    for (party, payload) in inputs {
        sim.input(*party, payload.clone());
        if sequential {
            sim.run_until_quiet(400_000_000);
        }
    }
    sim.run_until_quiet(400_000_000);
    let reference: Vec<AbcDeliver> = sim.outputs(0).to_vec();
    for p in 1..4 {
        assert_eq!(
            sim.outputs(p),
            reference.as_slice(),
            "party {p} disagrees with party 0 on the total order"
        );
    }
    for (i, d) in reference.iter().enumerate() {
        assert_eq!(d.seq, i as u64, "sequence numbers gapless from zero");
    }
    reference
}

/// Asserts `run` delivered exactly the submitted payload set (once
/// each) and that deliveries follow the seed structure: rounds ascend,
/// carriers ascend within a round.
fn check_set_and_structure(name: &str, run: &[AbcDeliver], inputs: &[(usize, Vec<u8>)]) {
    let submitted: BTreeSet<&[u8]> = inputs.iter().map(|(_, v)| v.as_slice()).collect();
    let got: BTreeSet<&[u8]> = run.iter().map(|d| d.payload.as_slice()).collect();
    assert_eq!(
        run.len(),
        inputs.len(),
        "{name} ordered everything exactly once"
    );
    assert_eq!(got, submitted, "{name} delivered exactly the submitted set");
    for w in run.windows(2) {
        assert!(
            w[0].round < w[1].round || (w[0].round == w[1].round && w[0].origin <= w[1].origin),
            "{name} delivery violates (round, carrier) order: {:?} then {:?}",
            (w[0].round, w[0].origin),
            (w[1].round, w[1].origin),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent multi-origin load: the batched + pipelined cluster
    /// must order exactly the payload set the unbatched seed
    /// configuration orders — every honest submission, nothing
    /// duplicated, nothing invented — in one agreed total order with
    /// the seed delivery structure. The global interleaving may legally
    /// differ between the configurations: both are functions of
    /// per-carrier queue arrival order, which the scheduler permutes.
    #[test]
    fn batched_pipelined_preserves_order_structure_and_fairness(seed in any::<u64>()) {
        let mut inputs = Vec::new();
        for party in 0..4usize {
            for k in 0..3usize {
                inputs.push((party, format!("p{party}-req{k}").into_bytes()));
            }
        }
        let unbatched = run_cluster(seed, &inputs, 1, 1, false);
        let batched = run_cluster(seed, &inputs, 8, 4, false);
        check_set_and_structure("unbatched", &unbatched, &inputs);
        check_set_and_structure("batched", &batched, &inputs);
    }

    /// Carrier FIFO under pipelining: a submitter's local queue is the
    /// submission order, every batch it proposes is a *prefix* of that
    /// queue, and an MVBA may decide a list that excludes any given
    /// round's proposal — so the payloads delivered *under the
    /// submitter's own carrier id* must still appear in submission
    /// order. This is the regression test for the in-flight batching
    /// rule: had pipelined rounds skipped in-flight payloads, a losing
    /// round-r proposal would let round r+1's later queue entries
    /// overtake it. Small batches and a deep pipeline maximize the
    /// chance of exactly that race.
    #[test]
    fn submitter_carried_payloads_keep_submission_order(seed in any::<u64>(), origin in 0usize..4) {
        let inputs: Vec<(usize, Vec<u8>)> = (0..8)
            .map(|k| (origin, format!("solo-req{k}").into_bytes()))
            .collect();
        for (cap, depth) in [(1usize, 1u64), (2, 4)] {
            let run = run_cluster(seed, &inputs, cap, depth, false);
            check_set_and_structure("single-origin", &run, &inputs);
            let carried: Vec<&[u8]> = run
                .iter()
                .filter(|d| d.origin == origin)
                .map(|d| d.payload.as_slice())
                .collect();
            let submitted: Vec<&[u8]> = inputs.iter().map(|(_, v)| v.as_slice()).collect();
            let mut cursor = 0usize;
            for payload in &carried {
                let pos = submitted[cursor..]
                    .iter()
                    .position(|s| s == payload)
                    .unwrap_or_else(|| panic!(
                        "cap={cap} K={depth}: submitter-carried payloads out of submission \
                         order: {:?}",
                        carried
                            .iter()
                            .map(|p| String::from_utf8_lossy(p))
                            .collect::<Vec<_>>()
                    ));
                cursor += pos + 1;
            }
        }
    }

    /// Sequential load is the schedule where the total order is fully
    /// determined (each submission settles before the next), so the
    /// batched + pipelined configuration must reproduce the unbatched
    /// seed ordering *exactly* — which is the submission order.
    #[test]
    fn sequential_load_order_is_identical_to_seed(seed in any::<u64>(), origin in 0usize..4) {
        let inputs: Vec<(usize, Vec<u8>)> = (0..5)
            .map(|k| (origin, format!("seq-req{k}").into_bytes()))
            .collect();
        let unbatched = run_cluster(seed, &inputs, 1, 1, true);
        let batched = run_cluster(seed, &inputs, 8, 4, true);
        let submitted: Vec<&[u8]> = inputs.iter().map(|(_, v)| v.as_slice()).collect();
        let a: Vec<&[u8]> = unbatched.iter().map(|d| d.payload.as_slice()).collect();
        let b: Vec<&[u8]> = batched.iter().map(|d| d.payload.as_slice()).collect();
        prop_assert_eq!(&a, &submitted, "seed config follows submission order");
        prop_assert_eq!(a, b, "batched + pipelined ordering differs from the seed ordering");
    }
}
