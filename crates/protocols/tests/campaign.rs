//! Fault-injection campaign sweeps over the real protocol stack.
//!
//! Every core protocol (RBC, CBC, ABBA, MVBA, ABC) is swept across the
//! scheduler × behavior × seed grid with one Byzantine party (n = 4,
//! t = 1) and network duplication enabled, and its defining invariants
//! are checked after every case: agreement/total order, liveness within
//! a step budget, and (where applicable) external validity. The
//! protocol-specific hooks live in `sintra_protocols::harness`; the grid
//! here is the smoke subset — the full grid (more schedulers, more
//! seeds) runs in release mode via the `campaign_soak` binary in
//! `sintra-bench`.
//!
//! A deliberately broken protocol (delivery quorum lowered below the
//! safety threshold) is also swept to prove the checker has teeth.

use sintra_adversary::party::{PartyId, PartySet};
use sintra_net::campaign::{
    invariants, replay_case, run_campaign, BehaviorKind, CampaignHooks, CampaignPlan, CaseId,
    SchedulerKind,
};
use sintra_net::faults;
use sintra_net::protocol::{Effects, Protocol};
use sintra_net::sim::{Behavior, RandomScheduler, Simulation};
use sintra_protocols::harness::{
    abba_coin_tamper_hooks, abba_hooks, abc_build, abc_hooks, abc_payloads, cbc_hooks, mvba_hooks,
    rbc_hooks, N, T,
};
use sintra_protocols::nodes::{abba_nodes, cbc_nodes, mvba_nodes, rbc_nodes, RbcNode};
use sintra_protocols::rbc::RbcMessage;
use std::collections::HashMap;
use std::sync::Arc;

/// The smoke grid: 3 schedulers × all 6 behaviors × 8 seeds, with
/// duplication so every case also exercises idempotent delivery.
fn plan(max_steps: u64) -> CampaignPlan {
    CampaignPlan {
        schedulers: vec![
            SchedulerKind::Random,
            SchedulerKind::Lifo,
            SchedulerKind::Lossy {
                drop_percent: 40,
                budget: 32,
            },
        ],
        behaviors: BehaviorKind::ALL.to_vec(),
        corruption_sets: vec![PartySet::singleton(3)],
        seeds: (0..8).collect(),
        max_steps,
        duplication_percent: 15,
        obs_recorder: None,
    }
}

#[test]
fn campaign_rbc_full_grid() {
    let report = run_campaign(&plan(500_000), &rbc_hooks());
    assert_eq!(report.cases_run, 3 * 6 * 8);
    assert!(report.passed(), "{}", report.summary());
}

#[test]
fn campaign_cbc_full_grid() {
    let report = run_campaign(&plan(500_000), &cbc_hooks());
    assert_eq!(report.cases_run, 3 * 6 * 8);
    assert!(report.passed(), "{}", report.summary());
}

#[test]
fn campaign_abba_full_grid() {
    let report = run_campaign(&plan(5_000_000), &abba_hooks());
    assert_eq!(report.cases_run, 3 * 6 * 8);
    assert!(report.passed(), "{}", report.summary());
}

/// The batch-verification attribution sweep: the corrupted party
/// tampers every outgoing coin share (structurally valid, proofs
/// broken). Agreement and liveness must hold, no honest party may ever
/// be attributed as a culprit, and the per-share fallback must actually
/// fire — and blame the tamperer — somewhere in the grid.
#[test]
fn campaign_abba_coin_tamper_attributes_culprits() {
    let attributions = std::cell::Cell::new(0usize);
    let mut plan = plan(5_000_000);
    plan.behaviors = vec![BehaviorKind::Mutate];
    let report = run_campaign(&plan, &abba_coin_tamper_hooks(&attributions));
    assert_eq!(report.cases_run, 3 * 8);
    assert!(report.passed(), "{}", report.summary());
    assert!(
        attributions.get() > 0,
        "coin tampering was never attributed to the corrupted party anywhere in the grid"
    );
}

/// Satellite of the cross-round verdict cache: a Byzantine party that
/// spams tampered coin shares is re-verified O(1) times per instance,
/// not once per round. The first failed batch attributes the tamperer
/// and instance-bans it; every later share from it is rejected at
/// insert, before any proof arithmetic. The thread-local fallback
/// counter measures exactly the per-share re-verifications taken after
/// a failed batch equation, so the whole sweep must stay within a small
/// per-case allowance (without the cache the count grows with every
/// coin round of every case).
#[test]
fn campaign_abba_coin_tamper_bounded_verify_cost() {
    let attributions = std::cell::Cell::new(0usize);
    let mut plan = plan(5_000_000);
    plan.behaviors = vec![BehaviorKind::Mutate];
    sintra_obs::global::reset_share_fallback();
    let report = run_campaign(&plan, &abba_coin_tamper_hooks(&attributions));
    assert!(report.passed(), "{}", report.summary());
    let fallback = sintra_obs::global::share_fallback_count();
    let cases = report.cases_run as u64;
    // Allowance: per case, each of the 3 honest nodes pays at most a
    // couple of failed batches (rounds already holding the tamperer's
    // share when the ban lands) of at most n = 4 shares each.
    let bound = cases * 3 * 2 * 4;
    assert!(
        fallback <= bound,
        "verify cost unbounded under coin-tamper spam: \
         {fallback} fallback re-verifications across {cases} cases (bound {bound})"
    );
}

#[test]
fn campaign_mvba_full_grid() {
    let report = run_campaign(&plan(20_000_000), &mvba_hooks());
    assert_eq!(report.cases_run, 3 * 6 * 8);
    assert!(report.passed(), "{}", report.summary());
}

#[test]
fn campaign_abc_full_grid() {
    let report = run_campaign(&plan(50_000_000), &abc_hooks());
    assert_eq!(report.cases_run, 3 * 6 * 8);
    assert!(report.passed(), "{}", report.summary());
}

// ------------------------------------------------ broken-protocol bait

/// RBC with its delivery quorum deliberately lowered: delivers as soon
/// as *two* parties (t + 1, a set coverable by one Byzantine party plus
/// one slow echo) echoed a payload, skipping the ready stage entirely.
/// An equivocating sender must split the honest parties — and the
/// campaign checker must catch it.
#[derive(Debug)]
struct BrokenRbc {
    me: PartyId,
    sender: PartyId,
    echoed: bool,
    delivered: bool,
    echoes: HashMap<Vec<u8>, PartySet>,
}

impl BrokenRbc {
    fn new(me: PartyId, n: usize, sender: PartyId) -> Self {
        let _ = n;
        BrokenRbc {
            me,
            sender,
            echoed: false,
            delivered: false,
            echoes: HashMap::new(),
        }
    }
}

impl Protocol for BrokenRbc {
    type Message = RbcMessage;
    type Input = Vec<u8>;
    type Output = Vec<u8>;

    fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<RbcMessage, Vec<u8>>) {
        if self.me == self.sender {
            fx.broadcast(RbcMessage::Send(input));
        } else {
            // Kick: a corrupted sender's behavior only runs when traffic
            // reaches it, so an honest party pokes it with a message the
            // protocol ignores.
            fx.send(self.sender, RbcMessage::Ready(input));
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: RbcMessage,
        fx: &mut Effects<RbcMessage, Vec<u8>>,
    ) {
        match msg {
            RbcMessage::Send(payload) => {
                if from == self.sender && !self.echoed {
                    self.echoed = true;
                    fx.broadcast(RbcMessage::Echo(payload));
                }
            }
            RbcMessage::Echo(payload) => {
                let voters = self.echoes.entry(payload.clone()).or_default();
                voters.insert(from);
                // BROKEN: t + 1 = 2 voters suffice (correct RBC needs a
                // core quorum for the ready stage and a strong quorum to
                // deliver).
                if voters.len() >= 2 && !self.delivered {
                    self.delivered = true;
                    fx.output(payload);
                }
            }
            RbcMessage::Ready(_) => {}
        }
    }
}

fn split_story(to: PartyId, m: RbcMessage) -> RbcMessage {
    // Full equivocation: party 1 is told "left", everyone else "right".
    let story = if to == 1 {
        b"left".to_vec()
    } else {
        b"right".to_vec()
    };
    match m {
        RbcMessage::Send(_) => RbcMessage::Send(story),
        RbcMessage::Echo(_) => RbcMessage::Echo(story),
        RbcMessage::Ready(_) => RbcMessage::Ready(story),
    }
}

fn broken_hooks<'a>() -> CampaignHooks<'a, BrokenRbc> {
    CampaignHooks {
        nodes: Box::new(|_seed| (0..N).map(|me| BrokenRbc::new(me, N, 0)).collect()),
        behavior: Box::new(|kind, party, seed| match kind {
            BehaviorKind::Equivocate => faults::equivocator(
                party,
                N,
                BrokenRbc::new(party, N, 0),
                Some(b"honest-looking".to_vec()),
                |to, m, _| split_story(to, m),
                seed,
            ),
            _ => Behavior::Crash,
        }),
        inputs: Box::new(|_seed, _corrupted| vec![(1, b"kick".to_vec())]),
        check: Box::new(invariants::agreement),
    }
}

/// [`RbcNode`] plus the same kick trick as [`BrokenRbc`]: a non-sender
/// input pokes the (corrupted) sender so its behavior starts running.
#[derive(Debug)]
struct KickRbc {
    node: RbcNode,
    is_sender: bool,
}

impl Protocol for KickRbc {
    type Message = RbcMessage;
    type Input = Vec<u8>;
    type Output = Vec<u8>;

    fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<RbcMessage, Vec<u8>>) {
        if self.is_sender {
            self.node.on_input(input, fx);
        } else {
            fx.send(0, RbcMessage::Ready(input));
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: RbcMessage,
        fx: &mut Effects<RbcMessage, Vec<u8>>,
    ) {
        self.node.on_message(from, msg, fx);
    }
}

fn kick_rbc_nodes() -> Vec<KickRbc> {
    rbc_nodes(N, T, 0)
        .into_iter()
        .enumerate()
        .map(|(me, node)| KickRbc {
            node,
            is_sender: me == 0,
        })
        .collect()
}

#[test]
fn broken_quorum_is_caught_by_the_checker() {
    // The *sender* is Byzantine and equivocates; the lowered quorum lets
    // a sender-plus-self echo pair deliver conflicting payloads.
    let mut plan = plan(200_000);
    plan.corruption_sets = vec![PartySet::singleton(0)];
    plan.behaviors = vec![BehaviorKind::Equivocate];
    let report = run_campaign(&plan, &broken_hooks());
    assert!(
        !report.passed(),
        "a quorum lowered to t + 1 must split honest parties somewhere in the grid"
    );
    // The minimal failing seed replays to the same verdict.
    let minimal = report.minimal_failure().expect("failure recorded").clone();
    let outcome = replay_case(&plan, &broken_hooks(), &minimal.case);
    assert!(
        invariants::agreement(&outcome).is_err(),
        "replay of {:?} must reproduce the violation",
        minimal.case
    );
    // And the hardened RBC survives the identical attack schedule.
    let fixed_case = CaseId {
        scheduler: minimal.case.scheduler.clone(),
        behavior: BehaviorKind::Equivocate,
        corrupted: PartySet::singleton(0),
        seed: minimal.case.seed,
    };
    let hooks = CampaignHooks::<KickRbc> {
        nodes: Box::new(|_seed| kick_rbc_nodes()),
        behavior: Box::new(|_kind, party, seed| {
            faults::equivocator(
                party,
                N,
                kick_rbc_nodes().remove(party),
                Some(b"honest-looking".to_vec()),
                |to, m, _| split_story(to, m),
                seed,
            )
        }),
        inputs: Box::new(|_seed, _corrupted| vec![(1, b"kick".to_vec())]),
        check: Box::new(invariants::agreement),
    };
    let outcome = replay_case(&plan, &hooks, &fixed_case);
    assert!(
        invariants::agreement(&outcome).is_ok(),
        "hardened RBC must not split under the same schedule"
    );
}

// ------------------------------------- idempotent delivery (satellite)

/// Every protocol, honest-only, under heavy duplication: outputs must be
/// exactly what a duplicate-free run yields (delivery is idempotent).
#[test]
fn idempotent_delivery_under_duplication() {
    // RBC
    let mut sim = Simulation::builder(rbc_nodes(N, T, 0), RandomScheduler)
        .seed(11)
        .build();
    sim.enable_duplication(80);
    sim.input(0, b"dup-test".to_vec());
    sim.run_until_quiet(500_000);
    for p in 0..N {
        assert_eq!(sim.outputs(p), &[b"dup-test".to_vec()], "rbc party {p}");
    }
    // CBC
    let mut sim = Simulation::builder(cbc_nodes(N, T, 0, 12), RandomScheduler)
        .seed(12)
        .build();
    sim.enable_duplication(80);
    sim.input(0, b"dup-test".to_vec());
    sim.run_until_quiet(500_000);
    for p in 0..N {
        assert_eq!(sim.outputs(p), &[b"dup-test".to_vec()], "cbc party {p}");
    }
    // ABBA
    let mut sim = Simulation::builder(abba_nodes(N, T, 13), RandomScheduler)
        .seed(13)
        .build();
    sim.enable_duplication(60);
    for p in 0..N {
        sim.input(p, true);
    }
    sim.run_until_quiet(5_000_000);
    for p in 0..N {
        assert_eq!(sim.outputs(p), &[true], "abba party {p} decides once");
    }
    // MVBA
    let mut sim = Simulation::builder(
        mvba_nodes(N, T, 14, Arc::new(|_: &[u8]| true)),
        RandomScheduler,
    )
    .seed(14)
    .build();
    sim.enable_duplication(60);
    for p in 0..N {
        sim.input(p, format!("v{p}").into_bytes());
    }
    sim.run_until_quiet(20_000_000);
    let reference = sim.outputs(0).to_vec();
    assert_eq!(reference.len(), 1, "mvba decides exactly once");
    for p in 1..N {
        assert_eq!(sim.outputs(p), reference.as_slice(), "mvba party {p}");
    }
    // ABC
    let mut sim = Simulation::builder(abc_build(15), RandomScheduler)
        .seed(15)
        .build();
    sim.enable_duplication(60);
    for p in 0..N {
        sim.input(p, format!("m{p}").into_bytes());
    }
    sim.run_until_quiet(50_000_000);
    let reference = abc_payloads(sim.outputs(0));
    assert_eq!(reference.len(), N, "each payload ordered exactly once");
    for p in 1..N {
        assert_eq!(abc_payloads(sim.outputs(p)), reference, "abc party {p}");
    }
}
