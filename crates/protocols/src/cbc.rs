//! Consistent broadcast (echo broadcast with threshold-signature
//! voucher; Reiter-style, cf. §3).
//!
//! The cheaper sibling of reliable broadcast: it guarantees
//! **uniqueness** — no two honest parties deliver different payloads for
//! the same instance — but *not* totality: a party may never deliver and
//! must learn of the message by other means (which is exactly how the
//! multi-valued agreement protocol uses it, recovering missing proposals
//! via their vouchers).
//!
//! Message flow: the sender disseminates the payload; each recipient
//! returns a threshold-signature share over the payload digest *to the
//! sender only*; once the shares form a core quorum the sender combines
//! them into a transferable voucher and broadcasts it. Total message
//! count is `O(n)` versus reliable broadcast's `O(n²)` — the difference
//! experiment E3 measures.

use crate::common::{digest, BatchedShares, Digest, Outbox, Tag, WireKind};
use crate::pool::{Verdict, VerdictChannel, VerifyPool};
use serde::{Deserialize, Serialize};
use sintra_adversary::party::PartyId;
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::rng::SeededRng;
use sintra_crypto::tsig::{QuorumRule, SignatureShare, ThresholdSignature};
use std::sync::Arc;

/// Consistent-broadcast wire messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CbcMessage {
    /// Sender's payload dissemination.
    Send(Vec<u8>),
    /// Recipient's signature share over the payload digest (to sender).
    Echo(SignatureShare),
    /// Sender's combined voucher: payload + core-quorum threshold
    /// signature. Transferable: anyone can convince anyone else.
    Final(Vec<u8>, ThresholdSignature),
}

impl WireKind for CbcMessage {
    fn kind(&self) -> &'static str {
        match self {
            CbcMessage::Send(_) => "send",
            CbcMessage::Echo(_) => "echo",
            CbcMessage::Final(_, _) => "final",
        }
    }
}

/// A delivered consistent broadcast: payload plus its transferable
/// voucher.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Voucher {
    /// The delivered payload.
    pub payload: Vec<u8>,
    /// Core-quorum threshold signature over the instance tag and payload
    /// digest.
    pub signature: ThresholdSignature,
}

/// One consistent-broadcast instance at one party.
#[derive(Debug)]
pub struct ConsistentBroadcast {
    me: PartyId,
    n: usize,
    tag: Tag,
    sender: PartyId,
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    /// Sender side: payload being vouched.
    my_payload: Option<(Vec<u8>, Digest)>,
    /// Sender side: collected echo shares, batch-verified only once a
    /// candidate core quorum exists (one share per party; duplicates and
    /// culled parties are rejected by the tracker).
    shares: BatchedShares<SignatureShare>,
    final_sent: bool,
    echoed: bool,
    delivered: bool,
    /// Optional off-thread verification pool for the sender-side echo
    /// batch (`None` = verify inline at quorum time).
    pool: Option<Arc<VerifyPool>>,
    /// Ordered verdict stream for the pooled echo batch.
    verdicts: VerdictChannel<u8>,
    /// Whether the echo batch is currently out at the pool.
    awaiting: bool,
}

impl ConsistentBroadcast {
    /// Number of parties in the group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Creates an instance for a designated sender under `tag`.
    pub fn new(
        tag: Tag,
        sender: PartyId,
        public: Arc<PublicParameters>,
        bundle: Arc<ServerKeyBundle>,
    ) -> Self {
        ConsistentBroadcast {
            me: bundle.party(),
            n: public.n(),
            tag,
            sender,
            public,
            bundle,
            my_payload: None,
            shares: BatchedShares::new(),
            final_sent: false,
            echoed: false,
            delivered: false,
            pool: None,
            verdicts: VerdictChannel::new(),
            awaiting: false,
        }
    }

    /// Attaches a verification pool: the sender-side echo batch is then
    /// verified off the protocol thread and the Final emission parks
    /// until [`drain_verifications`](Self::drain_verifications) applies
    /// the verdict.
    pub fn set_verify_pool(&mut self, pool: Arc<VerifyPool>) {
        self.pool = Some(pool);
    }

    fn signed_message(&self, d: &Digest) -> Vec<u8> {
        self.tag.message(&[b"cbc", d])
    }

    /// Whether this instance has delivered.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Starts the broadcast (sender only).
    ///
    /// # Panics
    ///
    /// Panics if called at a non-sender party or twice.
    pub fn broadcast(&mut self, payload: Vec<u8>, out: &mut Outbox<CbcMessage>) {
        assert_eq!(self.me, self.sender, "only the sender may broadcast");
        assert!(self.my_payload.is_none(), "broadcast may start only once");
        let d = digest(&payload);
        self.my_payload = Some((payload.clone(), d));
        out.broadcast(CbcMessage::Send(payload));
    }

    /// Verifies a voucher independently of protocol state (used by
    /// higher layers when a payload arrives through recovery paths).
    pub fn verify_voucher(public: &PublicParameters, tag: &Tag, voucher: &Voucher) -> bool {
        let d = digest(&voucher.payload);
        let msg = tag.message(&[b"cbc", &d]);
        public
            .signing()
            .verify(&msg, &voucher.signature, QuorumRule::Core)
    }

    /// Handles a message; returns the voucher when this party delivers.
    pub fn on_message(
        &mut self,
        from: PartyId,
        msg: CbcMessage,
        rng: &mut SeededRng,
        out: &mut Outbox<CbcMessage>,
    ) -> Option<Voucher> {
        if from >= self.n {
            return None; // out-of-range sender
        }
        match msg {
            CbcMessage::Send(payload) => {
                if from != self.sender || self.echoed {
                    return None;
                }
                self.echoed = true;
                let d = digest(&payload);
                let to_sign = self.signed_message(&d);
                let share = self.bundle.signing_key().sign_share(&to_sign, rng);
                out.send(self.sender, CbcMessage::Echo(share));
                None
            }
            CbcMessage::Echo(share) => {
                // Only the sender collects shares.
                if self.me != self.sender || self.final_sent {
                    return None;
                }
                let (payload, d) = match &self.my_payload {
                    Some(p) => p.clone(),
                    None => return None,
                };
                if share.party() != from || !self.shares.insert(from, share) {
                    return None; // relayed foreign shares, dupes, culprits
                }
                // Quorum-time batching: echo shares are only accepted
                // structurally here; once a candidate core quorum exists
                // they are verified together (one multi-exp) and invalid
                // senders culled before the voucher is combined.
                if !self.public.structure().is_core(&self.shares.holders()) {
                    return None;
                }
                let to_sign = self.signed_message(&d);
                if self.pool.is_some() {
                    // Ship the batch off-thread and park the Final; it is
                    // emitted from `drain_verifications` once the verdict
                    // lands.
                    self.submit_echo_batch(&to_sign, rng);
                    if self.awaiting {
                        return None;
                    }
                }
                let signing = self.public.signing();
                self.shares
                    .settle(|batch| signing.verify_shares(&to_sign, batch, rng));
                let verified: Vec<SignatureShare> =
                    self.shares.verified().values().cloned().collect();
                if let Ok(sig) = signing.combine_preverified(&verified, QuorumRule::Core) {
                    self.final_sent = true;
                    out.broadcast(CbcMessage::Final(payload, sig));
                }
                None
            }
            CbcMessage::Final(payload, sig) => self.deliver_final(payload, sig),
        }
    }

    fn deliver_final(&mut self, payload: Vec<u8>, sig: ThresholdSignature) -> Option<Voucher> {
        if self.delivered {
            return None;
        }
        let voucher = Voucher {
            payload,
            signature: sig,
        };
        if !Self::verify_voucher(&self.public, &self.tag, &voucher) {
            return None;
        }
        self.delivered = true;
        Some(voucher)
    }

    /// Ships the pending echo shares to the verify pool (no-op when the
    /// batch is already in flight or nothing is pending).
    fn submit_echo_batch(&mut self, to_sign: &[u8], rng: &mut SeededRng) {
        if self.awaiting || !self.shares.has_pending() {
            return;
        }
        let Some(pool) = self.pool.clone() else {
            return;
        };
        let snapshot = self.shares.pending_snapshot();
        let parties: Vec<PartyId> = snapshot.iter().map(|(p, _)| *p).collect();
        let shares: Vec<SignatureShare> = snapshot.into_iter().map(|(_, s)| s).collect();
        let public = Arc::clone(&self.public);
        let msg = to_sign.to_vec();
        let seed = rng.next_u64();
        let sender = self.verdicts.sender();
        self.awaiting = true;
        pool.submit(Box::new(move || {
            let culprits = public
                .signing()
                .verify_shares(&msg, &shares, &mut SeededRng::new(seed))
                .err()
                .unwrap_or_default();
            sender.send(Verdict {
                key: 0,
                parties,
                culprits,
            });
        }));
    }

    /// Applies pool verdicts for the sender-side echo batch and emits
    /// the parked Final if the surviving shares still combine to a core
    /// quorum. Cheap when nothing is in flight.
    pub fn drain_verifications(&mut self, out: &mut Outbox<CbcMessage>) -> Option<Voucher> {
        let verdicts = self.verdicts.drain();
        if verdicts.is_empty() {
            return None;
        }
        for v in verdicts {
            self.awaiting = false;
            self.shares.apply_verdict(&v.parties, &v.culprits);
        }
        if self.final_sent {
            return None;
        }
        let (payload, _) = self.my_payload.clone()?;
        let verified: Vec<SignatureShare> = self.shares.verified().values().cloned().collect();
        let signing = self.public.signing();
        if let Ok(sig) = signing.combine_preverified(&verified, QuorumRule::Core) {
            self.final_sent = true;
            out.broadcast(CbcMessage::Final(payload, sig));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::contexts;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;
    use sintra_net::protocol::{Effects, Protocol};
    use sintra_net::sim::{Behavior, RandomScheduler, Simulation};

    #[derive(Debug)]
    struct CbcNode {
        cbc: ConsistentBroadcast,
        rng: SeededRng,
    }

    impl Protocol for CbcNode {
        type Message = CbcMessage;
        type Input = Vec<u8>;
        type Output = Vec<u8>;

        fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<CbcMessage, Vec<u8>>) {
            let mut out = Outbox::new(self.cbc.n());
            self.cbc.broadcast(input, &mut out);
            for (to, m) in out {
                fx.send(to, m);
            }
        }

        fn on_message(
            &mut self,
            from: PartyId,
            msg: CbcMessage,
            fx: &mut Effects<CbcMessage, Vec<u8>>,
        ) {
            let mut out = Outbox::new(self.cbc.n());
            if let Some(v) = self.cbc.on_message(from, msg, &mut self.rng, &mut out) {
                fx.output(v.payload);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }
    }

    fn nodes(n: usize, t: usize, sender: PartyId, seed: u64) -> Vec<CbcNode> {
        let ts = TrustStructure::threshold(n, t).unwrap();
        let mut rng = SeededRng::new(seed);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        contexts(public, bundles, seed)
            .into_iter()
            .map(|c| CbcNode {
                cbc: ConsistentBroadcast::new(
                    Tag::root("cbc-test"),
                    sender,
                    Arc::new(c.public().clone()),
                    Arc::new(c.bundle().clone()),
                ),
                rng: c.rng.clone(),
            })
            .collect()
    }

    #[test]
    fn honest_sender_delivers_everywhere() {
        let mut sim = Simulation::builder(nodes(4, 1, 2, 1), RandomScheduler)
            .seed(2)
            .build();
        sim.input(2, b"payload".to_vec());
        sim.run_until_quiet(100_000);
        for p in 0..4 {
            assert_eq!(sim.outputs(p), &[b"payload".to_vec()], "party {p}");
        }
    }

    #[test]
    fn message_count_is_linear() {
        // CBC: n sends + n echoes + n finals = 3n messages (minus self
        // short-circuits), versus RBC's O(n²).
        let n = 7;
        let mut sim = Simulation::builder(nodes(n, 2, 0, 3), RandomScheduler)
            .seed(3)
            .build();
        sim.input(0, b"m".to_vec());
        sim.run_until_quiet(100_000);
        let sent = sim.stats().sent + sim.stats().local_deliveries;
        assert!(
            sent <= (3 * n) as u64 + 2,
            "expected ~3n messages, saw {sent}"
        );
        for p in 0..n {
            assert!(!sim.outputs(p).is_empty(), "party {p} delivered");
        }
    }

    #[test]
    fn tolerates_crashed_receivers() {
        let mut sim = Simulation::builder(nodes(4, 1, 0, 4), RandomScheduler)
            .seed(4)
            .build();
        sim.corrupt(3, Behavior::Crash);
        sim.input(0, b"m".to_vec());
        sim.run_until_quiet(100_000);
        for p in 0..3 {
            assert_eq!(sim.outputs(p), &[b"m".to_vec()], "party {p}");
        }
    }

    #[test]
    fn voucher_is_transferable() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(5);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let tag = Tag::root("transfer");
        let mut sender = ConsistentBroadcast::new(
            tag.clone(),
            0,
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        let mut receivers: Vec<ConsistentBroadcast> = (1..4)
            .map(|p| {
                ConsistentBroadcast::new(
                    tag.clone(),
                    0,
                    Arc::clone(&public),
                    Arc::new(bundles[p].clone()),
                )
            })
            .collect();
        // Drive the instance by hand.
        let mut out = Outbox::new(sender.n());
        sender.broadcast(b"m".to_vec(), &mut out);
        let mut echoes = Vec::new();
        for (to, msg) in out {
            if to == 0 {
                continue;
            }
            let mut sub = Outbox::new(receivers[to - 1].n());
            receivers[to - 1].on_message(0, msg, &mut rng, &mut sub);
            echoes.extend(sub);
        }
        // Deliver echoes to the sender.
        let mut finals = Vec::new();
        for (to, msg) in echoes {
            assert_eq!(to, 0, "echo goes to the sender only");
            // Identify originating party from the share inside.
            if let CbcMessage::Echo(share) = &msg {
                let from = share.party();
                let mut sub = Outbox::new(sender.n());
                sender.on_message(from, msg, &mut rng, &mut sub);
                finals.extend(sub);
            }
        }
        // Sender emitted Final once a core quorum was reached.
        let (_, final_msg) = finals.first().expect("final emitted").clone();
        let voucher = if let CbcMessage::Final(payload, sig) = final_msg {
            Voucher {
                payload,
                signature: sig,
            }
        } else {
            panic!("expected final");
        };
        // Any third party can verify the voucher offline.
        assert!(ConsistentBroadcast::verify_voucher(&public, &tag, &voucher));
        // And it does not verify under another tag.
        assert!(!ConsistentBroadcast::verify_voucher(
            &public,
            &Tag::root("other"),
            &voucher
        ));
    }

    #[test]
    fn forged_final_rejected() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(6);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let tag = Tag::root("forge");
        let mut node = ConsistentBroadcast::new(
            tag.clone(),
            0,
            Arc::clone(&public),
            Arc::new(bundles[1].clone()),
        );
        // Build a voucher for "good" but claim it for "evil".
        let d = digest(b"good");
        let msg = tag.message(&[b"cbc", &d]);
        let shares: Vec<SignatureShare> = bundles[..3]
            .iter()
            .map(|b| b.signing_key().sign_share(&msg, &mut rng))
            .collect();
        let sig = public
            .signing()
            .combine(&msg, &shares, QuorumRule::Core)
            .unwrap();
        let mut out = Outbox::new(node.n());
        let delivered = node.on_message(
            0,
            CbcMessage::Final(b"evil".to_vec(), sig.clone()),
            &mut rng,
            &mut out,
        );
        assert!(delivered.is_none(), "digest mismatch rejected");
        // The genuine payload goes through.
        let delivered = node.on_message(
            0,
            CbcMessage::Final(b"good".to_vec(), sig),
            &mut rng,
            &mut out,
        );
        assert!(delivered.is_some());
    }

    #[test]
    fn duplicate_shares_cannot_poison_aggregation() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(8);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let tag = Tag::root("dup");
        let mut sender = ConsistentBroadcast::new(
            tag.clone(),
            0,
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        let mut out = Outbox::new(sender.n());
        sender.broadcast(b"m".to_vec(), &mut out);
        out.clear();
        let msg = tag.message(&[b"cbc", &digest(b"m")]);
        // The same party's valid share, repeated: counted once, so no
        // Final can be built from fewer distinct parties than a core
        // quorum (2t + 1 = 3 here, the sender's own share not included).
        let share1 = bundles[1].signing_key().sign_share(&msg, &mut rng);
        for _ in 0..3 {
            sender.on_message(1, CbcMessage::Echo(share1), &mut rng, &mut out);
        }
        assert!(out.is_empty(), "duplicates must not reach a quorum");
        // Distinct parties complete the quorum.
        for p in [2usize, 3] {
            let share = bundles[p].signing_key().sign_share(&msg, &mut rng);
            sender.on_message(p, CbcMessage::Echo(share), &mut rng, &mut out);
        }
        assert!(
            out.iter()
                .any(|(_, m)| matches!(m, CbcMessage::Final(_, _))),
            "distinct core quorum emits the Final"
        );
    }

    #[test]
    fn sender_ignores_foreign_or_invalid_echoes() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(7);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let tag = Tag::root("x");
        let mut sender = ConsistentBroadcast::new(
            tag.clone(),
            0,
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        let mut out = Outbox::new(sender.n());
        sender.broadcast(b"m".to_vec(), &mut out);
        out.clear();
        // Echo whose share was made by party 2 but arrives "from" 1.
        let d = digest(b"m");
        let msg = tag.message(&[b"cbc", &d]);
        let share2 = bundles[2].signing_key().sign_share(&msg, &mut rng);
        sender.on_message(1, CbcMessage::Echo(share2), &mut rng, &mut out);
        assert!(out.is_empty());
        // Echo over the wrong digest.
        let bad = bundles[1]
            .signing_key()
            .sign_share(&tag.message(&[b"cbc", &digest(b"other")]), &mut rng);
        sender.on_message(1, CbcMessage::Echo(bad), &mut rng, &mut out);
        assert!(out.is_empty());
    }
}
