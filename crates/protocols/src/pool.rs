//! Off-thread verification worker pool.
//!
//! Threshold-share verification is the dominant per-round crypto cost
//! (see `BENCH_crypto.json`), and the protocol thread also owns the
//! wire. This module provides a small hand-rolled worker pool — plain
//! `std::thread` workers draining an `mpsc` channel, no external deps —
//! that protocols hand their [`BatchedShares`](crate::common::BatchedShares)
//! verification batches to. Workers run the batch multi-exponentiation
//! and send a verdict (settled parties + culprits) back over a channel
//! owned by the submitting protocol instance, which applies it on its
//! next message or tick. Verification thus overlaps with wire I/O and
//! with other pipelined rounds.
//!
//! A pool built with **0 workers** degrades to inline mode: `submit`
//! runs the job on the caller's thread before returning, so every
//! protocol path behaves identically (same messages, same decisions) —
//! only the thread attribution changes. That keeps single-threaded
//! simulations and deterministic campaign replays exact.
//!
//! # Ordering contract
//!
//! Verdicts are delivered **in submission order per source**. A source
//! is one [`VerdictChannel`]; [`VerdictChannel::drain`] yields the
//! verdict of submission `i` only after the verdicts of all earlier
//! submissions from the same channel have been yielded, regardless of
//! the order in which workers finish the jobs. Inline (0-worker) pools
//! satisfy this trivially because jobs complete synchronously in
//! submission order; threaded pools satisfy it because the channel
//! holds early verdicts in a reorder buffer until their predecessors
//! arrive. Protocol code can therefore rely on one contract in both
//! modes: per-source FIFO verdicts, with no cross-source ordering
//! guarantees.

use parking_lot::Mutex;
use sintra_adversary::party::PartyId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of verification work. Jobs capture everything they need
/// (shares, public parameters, a result sender) and must not panic.
pub type VerifyJob = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing where a pool's jobs actually ran. Exposed so
/// tests (and metrics gauges) can assert that verification really left
/// the protocol thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool was built with.
    pub workers: usize,
    /// Jobs handed to `submit`.
    pub submitted: u64,
    /// Jobs that ran inline on the submitting thread (0-worker mode).
    pub ran_inline: u64,
    /// Jobs completed by a worker thread.
    pub ran_off_thread: u64,
}

/// Hand-rolled thread pool for deferred share verification.
///
/// Cloneable via `Arc`; one pool is typically shared by every protocol
/// instance of a node (ABC hands it down to each per-round MVBA).
/// Dropping the last handle closes the channel and joins the workers.
pub struct VerifyPool {
    tx: Mutex<Option<Sender<VerifyJob>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    submitted: AtomicU64,
    ran_inline: AtomicU64,
    ran_off_thread: AtomicU64,
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool")
            .field("workers", &self.worker_count)
            .field("stats", &self.stats())
            .finish()
    }
}

impl VerifyPool {
    /// Builds a pool with `workers` threads. `workers == 0` yields an
    /// inline pool: submissions run synchronously on the caller.
    pub fn new(workers: usize) -> Arc<Self> {
        let pool = Arc::new(VerifyPool {
            tx: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
            worker_count: workers,
            submitted: AtomicU64::new(0),
            ran_inline: AtomicU64::new(0),
            ran_off_thread: AtomicU64::new(0),
        });
        if workers > 0 {
            let (tx, rx) = channel::<VerifyJob>();
            let rx = Arc::new(Mutex::new(rx));
            let mut handles = Vec::with_capacity(workers);
            for i in 0..workers {
                let rx = Arc::clone(&rx);
                let pool = Arc::clone(&pool);
                let handle = std::thread::Builder::new()
                    .name(format!("sintra-verify-{i}"))
                    .spawn(move || loop {
                        // Take the lock only while dequeuing so workers
                        // drain the channel concurrently with each
                        // other's job execution.
                        let job = {
                            let guard = rx.lock();
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                job();
                                pool.ran_off_thread.fetch_add(1, Ordering::Relaxed);
                            }
                            // Channel closed: pool is shutting down.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn verify worker");
                handles.push(handle);
            }
            *pool.tx.lock() = Some(tx);
            *pool.workers.lock() = handles;
        }
        pool
    }

    /// Whether submissions run on the caller's thread (0 workers).
    pub fn is_inline(&self) -> bool {
        self.worker_count == 0
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Queues `job` for a worker, or runs it inline for a 0-worker
    /// pool (and for any job raced against shutdown).
    pub fn submit(&self, job: VerifyJob) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let sent = {
            let guard = self.tx.lock();
            match &*guard {
                Some(tx) => tx.send(job).map_err(|e| e.0).err(),
                None => Some(job),
            }
        };
        if let Some(job) = sent {
            job();
            self.ran_inline.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Where submitted jobs have run so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.worker_count,
            submitted: self.submitted.load(Ordering::Relaxed),
            ran_inline: self.ran_inline.load(Ordering::Relaxed),
            ran_off_thread: self.ran_off_thread.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue and joins the workers. Also runs on drop of the
    /// last `Arc`; explicit calls make shutdown points visible in
    /// drivers that want deterministic teardown.
    pub fn shutdown(&self) {
        let tx = self.tx.lock().take();
        drop(tx);
        let handles = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// The outcome of one deferred verification batch: which parties'
/// shares were covered and which of them were attributed as culprits.
/// `key` identifies the batch to its owner (an election number, a
/// `(round, phase)` pair, a causal sequence number, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verdict<K> {
    /// Owner-defined identifier of the settled batch.
    pub key: K,
    /// Parties whose shares the batch covered.
    pub parties: Vec<PartyId>,
    /// The subset of `parties` whose shares failed verification.
    pub culprits: Vec<PartyId>,
}

/// A per-protocol-instance verdict mailbox enforcing the module-level
/// ordering contract: [`drain`](Self::drain) releases verdicts strictly
/// in the order their [`VerdictSender`]s were allocated, buffering any
/// verdict that finishes ahead of an earlier in-flight submission.
///
/// A sender dropped without sending (a job lost to worker teardown)
/// reports a gap instead of wedging the channel, so later verdicts
/// still flow; the owning protocol re-submits the batch on its next
/// settle attempt.
#[derive(Debug)]
pub struct VerdictChannel<K> {
    tx: Sender<(u64, Option<Verdict<K>>)>,
    rx: Receiver<(u64, Option<Verdict<K>>)>,
    next_seq: u64,
    next_deliver: u64,
    held: BTreeMap<u64, Option<Verdict<K>>>,
}

impl<K> Default for VerdictChannel<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> VerdictChannel<K> {
    /// Creates an empty channel.
    pub fn new() -> Self {
        let (tx, rx) = channel();
        VerdictChannel {
            tx,
            rx,
            next_seq: 0,
            next_deliver: 0,
            held: BTreeMap::new(),
        }
    }

    /// Allocates the next submission slot. The returned sender is
    /// captured by the verification job; the slot's position in the
    /// delivery order is fixed now, at submission time.
    pub fn sender(&mut self) -> VerdictSender<K> {
        let seq = self.next_seq;
        self.next_seq += 1;
        VerdictSender {
            seq,
            tx: Some(self.tx.clone()),
        }
    }

    /// Number of submissions whose verdicts have not been delivered.
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.next_deliver - self.held.len() as u64
    }

    /// Pulls completed verdicts, releasing them in submission order.
    /// A verdict that finished out of order stays buffered until every
    /// earlier submission has reported (or been dropped).
    pub fn drain(&mut self) -> Vec<Verdict<K>> {
        while let Ok((seq, verdict)) = self.rx.try_recv() {
            self.held.insert(seq, verdict);
        }
        let mut out = Vec::new();
        while let Some(entry) = self.held.remove(&self.next_deliver) {
            self.next_deliver += 1;
            if let Some(verdict) = entry {
                out.push(verdict);
            }
        }
        out
    }
}

/// One-shot slot for reporting a [`Verdict`], bound at submission time
/// to its position in the channel's delivery order.
pub struct VerdictSender<K> {
    seq: u64,
    tx: Option<Sender<(u64, Option<Verdict<K>>)>>,
}

impl<K> VerdictSender<K> {
    /// Reports the verdict. Errors (channel owner gone) are ignored:
    /// the owning protocol instance was dropped and nobody is left to
    /// care.
    pub fn send(mut self, verdict: Verdict<K>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send((self.seq, Some(verdict)));
        }
    }
}

impl<K> Drop for VerdictSender<K> {
    fn drop(&mut self) {
        // Unsent slot: report a gap so later verdicts are not held
        // behind a submission that will never complete.
        if let Some(tx) = self.tx.take() {
            let _ = tx.send((self.seq, None));
        }
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        // Workers hold no Arc cycles back to the pool's channel half,
        // so dropping the sender here unblocks and ends them.
        let tx = self.tx.lock().take();
        drop(tx);
        let handles = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn inline_pool_runs_on_caller_thread() {
        let pool = VerifyPool::new(0);
        assert!(pool.is_inline());
        let me = std::thread::current().id();
        let (tx, rx) = channel();
        pool.submit(Box::new(move || {
            tx.send(std::thread::current().id()).unwrap();
        }));
        // Inline submit is synchronous: the result is already there.
        assert_eq!(rx.try_recv().unwrap(), me);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.ran_inline, 1);
        assert_eq!(stats.ran_off_thread, 0);
    }

    #[test]
    fn threaded_pool_runs_off_caller_thread() {
        let pool = VerifyPool::new(2);
        assert!(!pool.is_inline());
        let me = std::thread::current().id();
        let (tx, rx) = channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(std::thread::current().id()).unwrap();
            }));
        }
        for _ in 0..8 {
            let worker = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
            assert_ne!(worker, me, "job ran on the submitting thread");
        }
        pool.shutdown();
        let stats = pool.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.ran_inline, 0);
        assert_eq!(stats.ran_off_thread, 8);
    }

    fn verdict(key: u64) -> Verdict<u64> {
        Verdict {
            key,
            parties: vec![0, 1],
            culprits: vec![],
        }
    }

    /// Drains until `want` verdicts arrive or a timeout expires.
    fn drain_until(channel: &mut VerdictChannel<u64>, want: usize) -> Vec<Verdict<u64>> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut out = Vec::new();
        while out.len() < want && std::time::Instant::now() < deadline {
            out.extend(channel.drain());
            std::thread::yield_now();
        }
        out
    }

    #[test]
    fn inline_pool_delivers_verdicts_in_submission_order() {
        let pool = VerifyPool::new(0);
        let mut channel = VerdictChannel::new();
        for key in 0..4u64 {
            let slot = channel.sender();
            pool.submit(Box::new(move || slot.send(verdict(key))));
        }
        let keys: Vec<u64> = channel.drain().into_iter().map(|v| v.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        assert_eq!(channel.in_flight(), 0);
    }

    #[test]
    fn threaded_pool_delivers_verdicts_in_submission_order() {
        // Two workers so the second job can finish while the first is
        // still sleeping: the channel must hold the second verdict back
        // until the first lands, per the module ordering contract.
        let pool = VerifyPool::new(2);
        let mut verdicts = VerdictChannel::new();
        let slot0 = verdicts.sender();
        let slot1 = verdicts.sender();
        let (gate_tx, gate_rx) = channel::<()>();
        pool.submit(Box::new(move || {
            // Block until told: guarantees job 1 completes first.
            let _ = gate_rx.recv_timeout(std::time::Duration::from_secs(5));
            slot0.send(verdict(0));
        }));
        pool.submit(Box::new(move || slot1.send(verdict(1))));
        // Let job 1 finish; nothing may be delivered ahead of job 0.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(verdicts.drain().is_empty(), "verdict 1 must wait for 0");
        gate_tx.send(()).unwrap();
        let keys: Vec<u64> = drain_until(&mut verdicts, 2)
            .into_iter()
            .map(|v| v.key)
            .collect();
        assert_eq!(keys, vec![0, 1]);
        pool.shutdown();
    }

    #[test]
    fn dropped_sender_leaves_gap_not_wedge() {
        let mut channel = VerdictChannel::<u64>::new();
        let lost = channel.sender();
        let live = channel.sender();
        drop(lost);
        live.send(verdict(7));
        let keys: Vec<u64> = channel.drain().into_iter().map(|v| v.key).collect();
        assert_eq!(keys, vec![7]);
        assert_eq!(channel.in_flight(), 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_late_submits_run_inline() {
        let pool = VerifyPool::new(1);
        pool.shutdown();
        pool.shutdown();
        let (tx, rx) = channel();
        pool.submit(Box::new(move || {
            tx.send(7u32).unwrap();
        }));
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert_eq!(pool.stats().ran_inline, 1);
    }
}
