//! Off-thread verification worker pool.
//!
//! Threshold-share verification is the dominant per-round crypto cost
//! (see `BENCH_crypto.json`), and the protocol thread also owns the
//! wire. This module provides a small hand-rolled worker pool — plain
//! `std::thread` workers draining an `mpsc` channel, no external deps —
//! that protocols hand their [`BatchedShares`](crate::common::BatchedShares)
//! verification batches to. Workers run the batch multi-exponentiation
//! and send a verdict (settled parties + culprits) back over a channel
//! owned by the submitting protocol instance, which applies it on its
//! next message or tick. Verification thus overlaps with wire I/O and
//! with other pipelined rounds.
//!
//! A pool built with **0 workers** degrades to inline mode: `submit`
//! runs the job on the caller's thread before returning, so every
//! protocol path behaves identically (same messages, same decisions) —
//! only the thread attribution changes. That keeps single-threaded
//! simulations and deterministic campaign replays exact.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of verification work. Jobs capture everything they need
/// (shares, public parameters, a result sender) and must not panic.
pub type VerifyJob = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing where a pool's jobs actually ran. Exposed so
/// tests (and metrics gauges) can assert that verification really left
/// the protocol thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool was built with.
    pub workers: usize,
    /// Jobs handed to `submit`.
    pub submitted: u64,
    /// Jobs that ran inline on the submitting thread (0-worker mode).
    pub ran_inline: u64,
    /// Jobs completed by a worker thread.
    pub ran_off_thread: u64,
}

/// Hand-rolled thread pool for deferred share verification.
///
/// Cloneable via `Arc`; one pool is typically shared by every protocol
/// instance of a node (ABC hands it down to each per-round MVBA).
/// Dropping the last handle closes the channel and joins the workers.
pub struct VerifyPool {
    tx: Mutex<Option<Sender<VerifyJob>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    submitted: AtomicU64,
    ran_inline: AtomicU64,
    ran_off_thread: AtomicU64,
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool")
            .field("workers", &self.worker_count)
            .field("stats", &self.stats())
            .finish()
    }
}

impl VerifyPool {
    /// Builds a pool with `workers` threads. `workers == 0` yields an
    /// inline pool: submissions run synchronously on the caller.
    pub fn new(workers: usize) -> Arc<Self> {
        let pool = Arc::new(VerifyPool {
            tx: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
            worker_count: workers,
            submitted: AtomicU64::new(0),
            ran_inline: AtomicU64::new(0),
            ran_off_thread: AtomicU64::new(0),
        });
        if workers > 0 {
            let (tx, rx) = channel::<VerifyJob>();
            let rx = Arc::new(Mutex::new(rx));
            let mut handles = Vec::with_capacity(workers);
            for i in 0..workers {
                let rx = Arc::clone(&rx);
                let pool = Arc::clone(&pool);
                let handle = std::thread::Builder::new()
                    .name(format!("sintra-verify-{i}"))
                    .spawn(move || loop {
                        // Take the lock only while dequeuing so workers
                        // drain the channel concurrently with each
                        // other's job execution.
                        let job = {
                            let guard = rx.lock();
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                job();
                                pool.ran_off_thread.fetch_add(1, Ordering::Relaxed);
                            }
                            // Channel closed: pool is shutting down.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn verify worker");
                handles.push(handle);
            }
            *pool.tx.lock() = Some(tx);
            *pool.workers.lock() = handles;
        }
        pool
    }

    /// Whether submissions run on the caller's thread (0 workers).
    pub fn is_inline(&self) -> bool {
        self.worker_count == 0
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Queues `job` for a worker, or runs it inline for a 0-worker
    /// pool (and for any job raced against shutdown).
    pub fn submit(&self, job: VerifyJob) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let sent = {
            let guard = self.tx.lock();
            match &*guard {
                Some(tx) => tx.send(job).map_err(|e| e.0).err(),
                None => Some(job),
            }
        };
        if let Some(job) = sent {
            job();
            self.ran_inline.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Where submitted jobs have run so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.worker_count,
            submitted: self.submitted.load(Ordering::Relaxed),
            ran_inline: self.ran_inline.load(Ordering::Relaxed),
            ran_off_thread: self.ran_off_thread.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue and joins the workers. Also runs on drop of the
    /// last `Arc`; explicit calls make shutdown points visible in
    /// drivers that want deterministic teardown.
    pub fn shutdown(&self) {
        let tx = self.tx.lock().take();
        drop(tx);
        let handles = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        // Workers hold no Arc cycles back to the pool's channel half,
        // so dropping the sender here unblocks and ends them.
        let tx = self.tx.lock().take();
        drop(tx);
        let handles = std::mem::take(&mut *self.workers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn inline_pool_runs_on_caller_thread() {
        let pool = VerifyPool::new(0);
        assert!(pool.is_inline());
        let me = std::thread::current().id();
        let (tx, rx) = channel();
        pool.submit(Box::new(move || {
            tx.send(std::thread::current().id()).unwrap();
        }));
        // Inline submit is synchronous: the result is already there.
        assert_eq!(rx.try_recv().unwrap(), me);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.ran_inline, 1);
        assert_eq!(stats.ran_off_thread, 0);
    }

    #[test]
    fn threaded_pool_runs_off_caller_thread() {
        let pool = VerifyPool::new(2);
        assert!(!pool.is_inline());
        let me = std::thread::current().id();
        let (tx, rx) = channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(std::thread::current().id()).unwrap();
            }));
        }
        for _ in 0..8 {
            let worker = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
            assert_ne!(worker, me, "job ran on the submitting thread");
        }
        pool.shutdown();
        let stats = pool.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.ran_inline, 0);
        assert_eq!(stats.ran_off_thread, 8);
    }

    #[test]
    fn shutdown_is_idempotent_and_late_submits_run_inline() {
        let pool = VerifyPool::new(1);
        pool.shutdown();
        pool.shutdown();
        let (tx, rx) = channel();
        pool.submit(Box::new(move || {
            tx.send(7u32).unwrap();
        }));
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert_eq!(pool.stats().ran_inline, 1);
    }
}
