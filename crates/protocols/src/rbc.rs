//! Reliable broadcast (optimized Bracha-Toueg, generalized quorums).
//!
//! The base broadcast primitive of §3: a designated sender distributes a
//! message so that
//!
//! * **consistency** — no two honest parties deliver different messages
//!   for the same instance,
//! * **totality** — if any honest party delivers, every honest party
//!   eventually delivers, and
//! * **validity** — if the sender is honest, everyone delivers its
//!   message,
//!
//! with *no ordering* across instances (that is atomic broadcast's job)
//! and no cryptography beyond hashing. The classical quorum sizes
//! `n−t` / `2t+1` / `t+1` are replaced by the structure predicates
//! `is_core` / `is_strong` / `is_qualified` per §4.2, so the same code
//! runs under generalized adversary structures.

use crate::common::{digest, Digest, Outbox, WireKind};
use serde::{Deserialize, Serialize};
use sintra_adversary::party::{PartyId, PartySet};
use sintra_adversary::structure::TrustStructure;
use std::collections::HashMap;

/// Reliable-broadcast wire messages.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RbcMessage {
    /// Sender's initial dissemination.
    Send(Vec<u8>),
    /// Echo of the received payload.
    Echo(Vec<u8>),
    /// Ready-to-deliver vote for the payload.
    Ready(Vec<u8>),
}

impl WireKind for RbcMessage {
    fn kind(&self) -> &'static str {
        match self {
            RbcMessage::Send(_) => "send",
            RbcMessage::Echo(_) => "echo",
            RbcMessage::Ready(_) => "ready",
        }
    }
}

/// One reliable-broadcast instance at one party.
///
/// Drive it with [`broadcast`](ReliableBroadcast::broadcast) (sender
/// only) and [`on_message`](ReliableBroadcast::on_message); the latter
/// returns the delivered payload exactly once.
#[derive(Debug)]
pub struct ReliableBroadcast {
    me: PartyId,
    n: usize,
    structure: TrustStructure,
    sender: PartyId,
    /// First Send accepted from the sender.
    seen_send: bool,
    echoed: bool,
    ready_sent: bool,
    delivered: bool,
    /// Parties whose (first) echo has been counted, across all digests.
    echo_voters: PartySet,
    /// Parties whose (first) ready has been counted, across all digests.
    ready_voters: PartySet,
    /// Echo voters per payload digest.
    echoes: HashMap<Digest, (PartySet, Vec<u8>)>,
    /// Ready voters per payload digest.
    readys: HashMap<Digest, (PartySet, Vec<u8>)>,
}

impl ReliableBroadcast {
    /// Number of parties in the group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Creates an instance for the given designated sender.
    pub fn new(me: PartyId, structure: TrustStructure, sender: PartyId) -> Self {
        let n = structure.n();
        ReliableBroadcast {
            me,
            n,
            structure,
            sender,
            seen_send: false,
            echoed: false,
            ready_sent: false,
            delivered: false,
            echo_voters: PartySet::new(),
            ready_voters: PartySet::new(),
            echoes: HashMap::new(),
            readys: HashMap::new(),
        }
    }

    /// Whether this party already delivered.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Starts the broadcast (call at the sender only).
    ///
    /// # Panics
    ///
    /// Panics if called at a non-sender party.
    pub fn broadcast(&mut self, payload: Vec<u8>, out: &mut Outbox<RbcMessage>) {
        assert_eq!(self.me, self.sender, "only the sender may broadcast");
        out.broadcast(RbcMessage::Send(payload));
    }

    /// Handles a message; returns the delivered payload the first time
    /// the delivery condition holds.
    pub fn on_message(
        &mut self,
        from: PartyId,
        msg: RbcMessage,
        out: &mut Outbox<RbcMessage>,
    ) -> Option<Vec<u8>> {
        if from >= self.n {
            return None; // out-of-range sender
        }
        match msg {
            RbcMessage::Send(payload) => {
                if from != self.sender || self.seen_send {
                    return None; // only the designated sender, once
                }
                self.seen_send = true;
                if !self.echoed {
                    self.echoed = true;
                    out.broadcast(RbcMessage::Echo(payload));
                }
                None
            }
            RbcMessage::Echo(payload) => {
                // Only a party's first echo counts, across *all* digests:
                // this is what the quorum argument assumes, and it bounds
                // `echoes` to at most `n` entries against a Byzantine
                // party flooding distinct payloads.
                if !self.echo_voters.insert(from) {
                    return None;
                }
                let d = digest(&payload);
                let entry = self
                    .echoes
                    .entry(d)
                    .or_insert_with(|| (PartySet::new(), payload));
                entry.0.insert(from);
                let voters = entry.0;
                if self.structure.is_core(&voters) && !self.ready_sent {
                    self.ready_sent = true;
                    let payload = entry.1.clone();
                    out.broadcast(RbcMessage::Ready(payload));
                }
                None
            }
            RbcMessage::Ready(payload) => {
                // First ready per party, across all digests (see Echo).
                if !self.ready_voters.insert(from) {
                    return None;
                }
                let d = digest(&payload);
                let entry = self
                    .readys
                    .entry(d)
                    .or_insert_with(|| (PartySet::new(), payload));
                entry.0.insert(from);
                let voters = entry.0;
                let stored = entry.1.clone();
                // Amplification: a non-corruptible set of readys proves an
                // honest party is ready; join it (before the adversary can
                // partition the quorum).
                if self.structure.is_qualified(&voters) && !self.ready_sent {
                    self.ready_sent = true;
                    out.broadcast(RbcMessage::Ready(stored.clone()));
                }
                // Delivery: readys not coverable by two corruptible sets.
                if self.structure.is_strong(&voters) && !self.delivered {
                    self.delivered = true;
                    return Some(stored);
                }
                None
            }
        }
    }

    /// Number of distinct payload digests for which echo state exists
    /// (observability for tests). Bounded by `n`: only a party's first
    /// echo is counted, so each party can open at most one entry.
    pub fn echo_candidates(&self) -> usize {
        self.echoes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::contexts;
    use sintra_crypto::dealer::Dealer;
    use sintra_crypto::rng::SeededRng;
    use sintra_net::protocol::{Effects, Protocol};
    use sintra_net::sim::{Behavior, RandomScheduler, Simulation};

    /// Standalone simulator wrapper around one RBC instance.
    #[derive(Debug)]
    pub struct RbcNode {
        rbc: ReliableBroadcast,
    }

    impl Protocol for RbcNode {
        type Message = RbcMessage;
        type Input = Vec<u8>;
        type Output = Vec<u8>;

        fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<RbcMessage, Vec<u8>>) {
            let mut out = Outbox::new(self.rbc.n());
            self.rbc.broadcast(input, &mut out);
            for (to, m) in out {
                fx.send(to, m);
            }
        }

        fn on_message(
            &mut self,
            from: PartyId,
            msg: RbcMessage,
            fx: &mut Effects<RbcMessage, Vec<u8>>,
        ) {
            let mut out = Outbox::new(self.rbc.n());
            if let Some(delivered) = self.rbc.on_message(from, msg, &mut out) {
                fx.output(delivered);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }
    }

    fn nodes(n: usize, t: usize, sender: PartyId) -> Vec<RbcNode> {
        let ts = sintra_adversary::structure::TrustStructure::threshold(n, t).unwrap();
        let mut rng = SeededRng::new(1);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        contexts(public, bundles, 1)
            .into_iter()
            .map(|c| RbcNode {
                rbc: ReliableBroadcast::new(c.me(), c.structure().clone(), sender),
            })
            .collect()
    }

    #[test]
    fn honest_sender_delivers_everywhere() {
        let mut sim = Simulation::builder(nodes(4, 1, 0), RandomScheduler)
            .seed(2)
            .build();
        sim.input(0, b"hello".to_vec());
        sim.run_until_quiet(100_000);
        for p in 0..4 {
            assert_eq!(sim.outputs(p), &[b"hello".to_vec()], "party {p}");
        }
    }

    #[test]
    fn tolerates_crash_of_non_sender() {
        let mut sim = Simulation::builder(nodes(4, 1, 0), RandomScheduler)
            .seed(3)
            .build();
        sim.corrupt(2, Behavior::Crash);
        sim.input(0, b"m".to_vec());
        sim.run_until_quiet(100_000);
        for p in [0usize, 1, 3] {
            assert_eq!(sim.outputs(p), &[b"m".to_vec()], "party {p}");
        }
    }

    #[test]
    fn crashed_sender_delivers_nowhere_but_harms_no_one() {
        let mut sim = Simulation::builder(nodes(4, 1, 0), RandomScheduler)
            .seed(4)
            .build();
        sim.corrupt(0, Behavior::Crash);
        sim.input(0, b"m".to_vec()); // input to corrupted party: ignored
        sim.run_until_quiet(100_000);
        for p in 1..4 {
            assert!(sim.outputs(p).is_empty(), "party {p}");
        }
    }

    #[test]
    fn equivocation_safety() {
        // A Byzantine sender equivocates A/B across the honest parties;
        // they may or may not deliver, but never deliver differently.
        let mut any_delivered = false;
        for seed in 0..20u64 {
            if let Some(values) = run_equivocation(100 + seed) {
                any_delivered = true;
                let unique: std::collections::HashSet<_> = values.into_iter().collect();
                assert!(unique.len() <= 1, "honest parties split on seed {seed}");
            }
        }
        // With a 2-vs-1 split and only echo/ready traffic among three
        // honest parties, at least some schedule must reach delivery of
        // the majority value — otherwise the test lost its teeth.
        assert!(any_delivered, "no schedule delivered anything");
    }

    /// Runs the equivocation scenario with a helper protocol wrapper that
    /// lets the test inject the Byzantine sender's Sends directly.
    fn run_equivocation(seed: u64) -> Option<Vec<Vec<u8>>> {
        #[derive(Debug)]
        struct Wrapper {
            rbc: ReliableBroadcast,
        }
        impl Protocol for Wrapper {
            type Message = RbcMessage;
            // Input = a (from, msg) pair injected by the environment.
            type Input = (PartyId, RbcMessage);
            type Output = Vec<u8>;
            fn on_input(
                &mut self,
                (from, msg): (PartyId, RbcMessage),
                fx: &mut Effects<RbcMessage, Vec<u8>>,
            ) {
                self.on_message(from, msg, fx);
            }
            fn on_message(
                &mut self,
                from: PartyId,
                msg: RbcMessage,
                fx: &mut Effects<RbcMessage, Vec<u8>>,
            ) {
                let mut out = Outbox::new(self.rbc.n());
                if let Some(d) = self.rbc.on_message(from, msg, &mut out) {
                    fx.output(d);
                }
                for (to, m) in out {
                    fx.send(to, m);
                }
            }
        }
        let ts = sintra_adversary::structure::TrustStructure::threshold(4, 1).unwrap();
        let wrappers: Vec<Wrapper> = (0..4)
            .map(|me| Wrapper {
                rbc: ReliableBroadcast::new(me, ts.clone(), 0),
            })
            .collect();
        let mut sim = Simulation::builder(wrappers, RandomScheduler)
            .seed(seed)
            .build();
        sim.corrupt(0, Behavior::Crash); // sender sends nothing further
                                         // The equivocating Sends, injected as if they came from party 0,
                                         // plus the Byzantine sender's own echoes/readys pushing "B" so
                                         // that delivery is reachable (2 honest echoes + the corrupt one
                                         // form a core quorum).
        sim.input(1, (0, RbcMessage::Send(b"A".to_vec())));
        sim.input(2, (0, RbcMessage::Send(b"B".to_vec())));
        sim.input(3, (0, RbcMessage::Send(b"B".to_vec())));
        for p in 1..4 {
            sim.input(p, (0, RbcMessage::Echo(b"B".to_vec())));
            sim.input(p, (0, RbcMessage::Ready(b"B".to_vec())));
        }
        sim.run_until_quiet(100_000);
        let delivered: Vec<Vec<u8>> = (1..4)
            .flat_map(|p| sim.outputs(p).iter().cloned())
            .collect();
        if delivered.is_empty() {
            None
        } else {
            Some(delivered)
        }
    }

    #[test]
    fn duplicate_and_foreign_sends_ignored() {
        let ts = sintra_adversary::structure::TrustStructure::threshold(4, 1).unwrap();
        let mut rbc = ReliableBroadcast::new(1, ts, 0);
        let mut out = Outbox::new(rbc.n());
        // Send from the wrong party: ignored, no echo.
        assert!(rbc
            .on_message(2, RbcMessage::Send(b"x".to_vec()), &mut out)
            .is_none());
        assert!(out.is_empty());
        // First Send from the real sender: echo.
        rbc.on_message(0, RbcMessage::Send(b"x".to_vec()), &mut out);
        assert_eq!(out.len(), 4);
        out.clear();
        // Second Send (even different payload): ignored.
        rbc.on_message(0, RbcMessage::Send(b"y".to_vec()), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn delivery_needs_strong_ready_quorum() {
        let ts = sintra_adversary::structure::TrustStructure::threshold(4, 1).unwrap();
        let mut rbc = ReliableBroadcast::new(1, ts, 0);
        let mut out = Outbox::new(rbc.n());
        // Feed 2 readys (2t+1 = 3 required): no delivery.
        assert!(rbc
            .on_message(2, RbcMessage::Ready(b"m".to_vec()), &mut out)
            .is_none());
        assert!(rbc
            .on_message(3, RbcMessage::Ready(b"m".to_vec()), &mut out)
            .is_none());
        // Third ready delivers.
        let d = rbc.on_message(0, RbcMessage::Ready(b"m".to_vec()), &mut out);
        assert_eq!(d, Some(b"m".to_vec()));
        // Redelivery suppressed.
        let again = rbc.on_message(1, RbcMessage::Ready(b"m".to_vec()), &mut out);
        assert!(again.is_none());
    }

    #[test]
    fn echo_state_bounded_under_digest_flood() {
        let ts = sintra_adversary::structure::TrustStructure::threshold(4, 1).unwrap();
        let mut rbc = ReliableBroadcast::new(1, ts, 0);
        let mut out = Outbox::new(rbc.n());
        // A Byzantine party floods echoes/readys for distinct payloads;
        // only its first of each kind opens state.
        for i in 0..100u32 {
            let payload = i.to_be_bytes().to_vec();
            rbc.on_message(2, RbcMessage::Echo(payload.clone()), &mut out);
            rbc.on_message(2, RbcMessage::Ready(payload), &mut out);
        }
        assert_eq!(rbc.echo_candidates(), 1, "first echo per party counts");
        // Out-of-range senders are rejected outright.
        assert!(rbc
            .on_message(9, RbcMessage::Ready(b"x".to_vec()), &mut out)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "only the sender")]
    fn non_sender_cannot_broadcast() {
        let ts = sintra_adversary::structure::TrustStructure::threshold(4, 1).unwrap();
        let mut rbc = ReliableBroadcast::new(1, ts, 0);
        rbc.broadcast(b"x".to_vec(), &mut Outbox::new(rbc.n()));
    }
}
