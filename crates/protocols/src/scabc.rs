//! Secure causal atomic broadcast (§3, §5.2; after Reiter-Birman).
//!
//! Atomic broadcast plus **input causality**: client requests travel and
//! get *ordered* as threshold ciphertexts, and servers release their
//! decryption shares only *after* the ciphertext's position in the total
//! order is fixed. A corrupted server therefore learns nothing about a
//! request's content before its ordering is final — so it cannot have a
//! related request of its own scheduled first (the patent-office
//! front-running attack of §5.2). The threshold cryptosystem must be
//! CCA-secure for exactly this reason: otherwise the adversary could
//! submit a *mauled* related ciphertext; [`sintra_crypto::tenc`]'s TDH2
//! well-formedness proofs rule that out.
//!
//! Plaintexts are released in ciphertext order: decryption of position
//! `k` may finish before position `k-1`, so finished plaintexts are held
//! back until all predecessors are out.

use crate::abc::{AbcMessage, AtomicBroadcast};
use crate::common::{BatchedShares, Outbox, Tag, WireKind};
use crate::pool::{Verdict, VerdictChannel, VerifyPool};
use sintra_adversary::party::PartyId;
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::rng::SeededRng;
use sintra_crypto::tenc::{Ciphertext, DecryptionShare};
use sintra_net::protocol::{Context, Effects, Protocol};
use sintra_obs::{Event, EventKind, Layer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Secure-causal-atomic-broadcast wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ScabcMessage {
    /// Underlying atomic-broadcast traffic (ciphertext payloads).
    Abc(AbcMessage),
    /// A decryption share for an ordered ciphertext.
    Share {
        /// Digest of the ciphertext the share belongs to.
        ct_digest: [u8; 32],
        /// The share with its validity proof.
        share: DecryptionShare,
    },
}

impl WireKind for ScabcMessage {
    fn kind(&self) -> &'static str {
        match self {
            ScabcMessage::Abc(_) => "abc",
            ScabcMessage::Share { .. } => "share",
        }
    }
}

/// One plaintext delivery in causal total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScabcDeliver {
    /// Consecutive position among decrypted requests.
    pub seq: u64,
    /// The agreement round that ordered the ciphertext (deterministic
    /// across honest parties; used by the RSM checkpoint protocol).
    pub round: u64,
    /// The server whose round proposal carried the ciphertext.
    pub origin: PartyId,
    /// Digest of the ordered ciphertext — the transport-layer dedup
    /// identity of this delivery (the RSM checkpoint protocol logs it so
    /// a state transfer can re-seed the dedup window exactly).
    pub ct_digest: [u8; 32],
    /// The ciphertext's public label (e.g. client identity).
    pub label: Vec<u8>,
    /// The decrypted request.
    pub plaintext: Vec<u8>,
}

#[derive(Debug)]
struct PendingDecryption {
    ciphertext: Ciphertext,
    digest: [u8; 32],
    round: u64,
    origin: PartyId,
    /// Decryption shares, proofs batch-verified once a qualified holder
    /// set exists (off-thread when a verify pool is attached).
    shares: BatchedShares<DecryptionShare>,
}

/// Default per-sender budget of decryption shares buffered before their
/// ciphertext is ordered locally (see
/// [`SecureCausalAtomicBroadcast::set_early_share_bound`]).
const DEFAULT_EARLY_SHARE_BOUND: usize = 256;

/// How many recently decrypted ciphertext digests are remembered so
/// that straggler shares (arriving after decryption finished) are
/// dropped instead of buffered as "early". Peers send shares at
/// ordering time, so anything older than this many requests is stale.
const COMPLETED_DIGEST_HISTORY: usize = 4096;

/// Secure causal atomic broadcast endpoint at one server.
pub struct SecureCausalAtomicBroadcast {
    abc: AtomicBroadcast,
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    /// Ordered ciphertexts awaiting decryption, by causal sequence.
    pending: BTreeMap<u64, PendingDecryption>,
    /// Sequence lookup by ciphertext digest, for pending (ordered but
    /// not yet decrypted) ciphertexts only; evicted on decryption.
    seq_of: HashMap<[u8; 32], u64>,
    /// Shares that arrived before their ciphertext was ordered.
    early_shares: HashMap<[u8; 32], Vec<DecryptionShare>>,
    /// Per-sender count of buffered early shares; a sender at its bound
    /// has further early shares dropped, so a Byzantine party spraying
    /// shares for digests that never get ordered cannot grow the buffer
    /// without limit.
    early_debt: Vec<usize>,
    early_bound: usize,
    /// Ring of recently decrypted ciphertext digests; straggler shares
    /// for these are dropped rather than buffered (bounded memory for
    /// completed requests).
    completed: HashSet<[u8; 32]>,
    completed_order: VecDeque<[u8; 32]>,
    /// Decrypted but not yet emitted (held for order).
    decrypted: BTreeMap<u64, ScabcDeliver>,
    next_causal_seq: u64,
    next_emit_seq: u64,
    /// Optional off-thread verification pool for TDH2 decryption-share
    /// batches (`None` = verify inline at quorum time).
    pool: Option<Arc<VerifyPool>>,
    /// Ordered verdict stream for pooled share batches, keyed by causal
    /// sequence.
    verdicts: VerdictChannel<u64>,
    /// Sequences whose share batch is currently out at the pool.
    awaiting: BTreeSet<u64>,
}

impl core::fmt::Debug for SecureCausalAtomicBroadcast {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SecureCausalAtomicBroadcast")
            .field("abc", &self.abc)
            .field("pending", &self.pending.len())
            .field("emitted", &self.next_emit_seq)
            .finish()
    }
}

impl SecureCausalAtomicBroadcast {
    /// Number of parties in the group.
    pub fn n(&self) -> usize {
        self.abc.n()
    }

    /// Creates the endpoint.
    pub fn new(tag: Tag, public: Arc<PublicParameters>, bundle: Arc<ServerKeyBundle>) -> Self {
        let n = public.n();
        SecureCausalAtomicBroadcast {
            abc: AtomicBroadcast::new(tag, Arc::clone(&public), Arc::clone(&bundle)),
            public,
            bundle,
            pending: BTreeMap::new(),
            seq_of: HashMap::new(),
            early_shares: HashMap::new(),
            early_debt: vec![0; n],
            early_bound: DEFAULT_EARLY_SHARE_BOUND,
            completed: HashSet::new(),
            completed_order: VecDeque::new(),
            decrypted: BTreeMap::new(),
            next_causal_seq: 0,
            next_emit_seq: 0,
            pool: None,
            verdicts: VerdictChannel::new(),
            awaiting: BTreeSet::new(),
        }
    }

    /// Routes share-batch verification through `pool` for the whole
    /// stack: the transport's threshold signatures and coins, and this
    /// layer's TDH2 decryption shares. With a threaded pool, verdicts
    /// are applied on every message entry and on the tick; a 0-worker
    /// pool verifies inline.
    pub fn set_verify_pool(&mut self, pool: Arc<VerifyPool>) {
        self.abc.set_verify_pool(Arc::clone(&pool));
        self.pool = Some(pool);
    }

    /// Number of plaintexts emitted.
    pub fn delivered_count(&self) -> u64 {
        self.next_emit_seq
    }

    /// Number of decryption shares buffered for ciphertexts whose
    /// position in the total order is not yet known.
    pub fn buffered_shares(&self) -> usize {
        self.early_shares.values().map(Vec::len).sum()
    }

    /// Number of early shares currently buffered from `party`.
    pub fn early_share_debt(&self, party: PartyId) -> usize {
        self.early_debt.get(party).copied().unwrap_or(0)
    }

    /// Sets the per-sender budget of early-buffered decryption shares.
    pub fn set_early_share_bound(&mut self, bound: usize) {
        self.early_bound = bound.max(1);
    }

    /// Number of ordered-but-undecrypted ciphertexts.
    pub fn pending_decryptions(&self) -> usize {
        self.pending.len()
    }

    /// Number of ciphertext digests with live lookup state (equals the
    /// pending count once decryption evicts its entry — the regression
    /// the leak fix guards).
    pub fn tracked_digests(&self) -> usize {
        self.seq_of.len()
    }

    /// Read access to the underlying atomic-broadcast endpoint
    /// (retention gauges, GC tuning).
    pub fn abc(&self) -> &AtomicBroadcast {
        &self.abc
    }

    /// Mutable access to the underlying atomic-broadcast endpoint.
    pub fn abc_mut(&mut self) -> &mut AtomicBroadcast {
        &mut self.abc
    }

    /// Jumps the endpoint forward after an out-of-band catch-up (RSM
    /// state transfer): causal delivery resumes at `next_seq` in
    /// agreement round `next_round`. All in-flight decryption state for
    /// skipped positions is dropped — their plaintexts are already
    /// reflected in the restored application snapshot. `dedup` re-seeds
    /// the underlying transport's delivered-ciphertext window (digests
    /// from the certified checkpoint plus the vouched tail).
    pub fn fast_forward(&mut self, next_seq: u64, next_round: u64, dedup: &[(u64, [u8; 32])]) {
        if next_seq <= self.next_emit_seq && next_round <= self.abc.round() {
            return;
        }
        self.next_causal_seq = self.next_causal_seq.max(next_seq);
        self.next_emit_seq = self.next_emit_seq.max(next_seq);
        self.pending.clear();
        self.seq_of.clear();
        self.early_shares.clear();
        self.early_debt.iter_mut().for_each(|d| *d = 0);
        self.completed.clear();
        self.completed_order.clear();
        self.decrypted.clear();
        // In-flight verdicts now refer to dropped seqs; drain handles
        // them as no-ops, but nothing must stay parked.
        self.awaiting.clear();
        self.abc.fast_forward(next_seq, next_round, dedup);
    }

    /// Encrypts a request under the service public key and broadcasts
    /// the ciphertext (client-side convenience; a real client encrypts
    /// itself and hands the ciphertext to [`broadcast_ciphertext`]).
    ///
    /// [`broadcast_ciphertext`]: Self::broadcast_ciphertext
    pub fn broadcast_plaintext(
        &mut self,
        plaintext: &[u8],
        label: &[u8],
        rng: &mut SeededRng,
        out: &mut Outbox<ScabcMessage>,
    ) -> Vec<ScabcDeliver> {
        let ct = self.public.encryption().encrypt(plaintext, label, rng);
        self.broadcast_ciphertext(&ct, rng, out)
    }

    /// Broadcasts a client-provided ciphertext.
    pub fn broadcast_ciphertext(
        &mut self,
        ciphertext: &Ciphertext,
        rng: &mut SeededRng,
        out: &mut Outbox<ScabcMessage>,
    ) -> Vec<ScabcDeliver> {
        let mut sub = Outbox::new(self.abc.n());
        let delivered = self.abc.broadcast(ciphertext.to_bytes(), rng, &mut sub);
        for (to, m) in sub {
            out.send(to, ScabcMessage::Abc(m));
        }
        self.after_abc(delivered, rng, out)
    }

    /// Tick hook: drives the transport's tick (off-thread verification
    /// verdicts, pipelined round transitions) and releases any
    /// resulting ordered plaintexts.
    pub fn on_tick(
        &mut self,
        rng: &mut SeededRng,
        out: &mut Outbox<ScabcMessage>,
    ) -> Vec<ScabcDeliver> {
        self.drain_share_verdicts(rng);
        let mut sub = Outbox::new(self.abc.n());
        let delivered = self.abc.on_tick(rng, &mut sub);
        for (to, m) in sub {
            out.send(to, ScabcMessage::Abc(m));
        }
        self.after_abc(delivered, rng, out)
    }

    /// Handles a message, returning any plaintexts released in order.
    pub fn on_message(
        &mut self,
        from: PartyId,
        msg: ScabcMessage,
        rng: &mut SeededRng,
        out: &mut Outbox<ScabcMessage>,
    ) -> Vec<ScabcDeliver> {
        // Share-batch verdicts may have landed since the last tick;
        // apply them before handling the message so a completed batch
        // never waits for the timer.
        self.drain_share_verdicts(rng);
        match msg {
            ScabcMessage::Abc(inner) => {
                let mut sub = Outbox::new(self.abc.n());
                let delivered = self.abc.on_message(from, inner, rng, &mut sub);
                for (to, m) in sub {
                    out.send(to, ScabcMessage::Abc(m));
                }
                self.after_abc(delivered, rng, out)
            }
            ScabcMessage::Share { ct_digest, share } => {
                if from >= self.n() || share.party() != from {
                    return Vec::new();
                }
                match self.seq_of.get(&ct_digest) {
                    Some(&seq) => {
                        self.add_share(seq, share);
                        self.try_decrypt(seq, rng);
                    }
                    None if self.completed.contains(&ct_digest) => {
                        // Straggler share for an already-decrypted
                        // ciphertext: useless, drop it.
                    }
                    None => {
                        // Ciphertext not ordered here yet; buffer, but
                        // charge the sender so spraying shares for
                        // never-ordered digests is bounded, and drop
                        // duplicates for the same digest.
                        if self.early_debt[from] >= self.early_bound {
                            return Vec::new();
                        }
                        let buf = self.early_shares.entry(ct_digest).or_default();
                        if buf.iter().all(|s| s.party() != from) {
                            buf.push(share);
                            self.early_debt[from] += 1;
                        }
                    }
                }
                self.emit_ready()
            }
        }
    }

    /// Processes ABC deliveries: parse ciphertexts, assign causal
    /// sequence numbers, release own decryption shares.
    fn after_abc(
        &mut self,
        delivered: Vec<crate::abc::AbcDeliver>,
        rng: &mut SeededRng,
        out: &mut Outbox<ScabcMessage>,
    ) -> Vec<ScabcDeliver> {
        for d in delivered {
            let ct = match Ciphertext::from_bytes(&d.payload) {
                Some(ct) if self.public.encryption().verify_ciphertext(&ct) => ct,
                // Malformed payloads are skipped identically by all
                // honest servers (the check is deterministic), so the
                // causal order stays consistent.
                _ => continue,
            };
            let seq = self.next_causal_seq;
            self.next_causal_seq += 1;
            let digest = ct.digest();
            self.seq_of.insert(digest, seq);
            // Release our share only now — the ciphertext's position in
            // the total order is fixed.
            if let Some(my_share) =
                self.bundle
                    .decryption_key()
                    .decrypt_share(self.public.encryption(), &ct, rng)
            {
                out.broadcast(ScabcMessage::Share {
                    ct_digest: digest,
                    share: my_share,
                });
            }
            self.pending.insert(
                seq,
                PendingDecryption {
                    ciphertext: ct,
                    digest,
                    round: d.round,
                    origin: d.origin,
                    shares: BatchedShares::new(),
                },
            );
            // Early shares may already complete this ciphertext; their
            // senders' buffering debt is released on consumption.
            for share in self.early_shares.remove(&digest).unwrap_or_default() {
                let p = share.party();
                if let Some(debt) = self.early_debt.get_mut(p) {
                    *debt = debt.saturating_sub(1);
                }
                self.add_share(seq, share);
            }
            self.try_decrypt(seq, rng);
        }
        self.emit_ready()
    }

    fn add_share(&mut self, seq: u64, share: DecryptionShare) {
        if let Some(p) = self.pending.get_mut(&seq) {
            p.shares.insert(share.party(), share);
        }
    }

    /// Attempts to finish a pending decryption. Proof checking is
    /// deferred until a structurally qualified holder set exists, then
    /// runs as one batch — on the verify pool when attached (the seq
    /// parks in `awaiting` until the verdict lands), inline otherwise.
    fn try_decrypt(&mut self, seq: u64, rng: &mut SeededRng) {
        let Some(p) = self.pending.get(&seq) else {
            return;
        };
        if !self.public.structure().is_qualified(&p.shares.holders()) {
            return;
        }
        if self.pool.is_some() {
            self.submit_share_batch(seq, rng);
            if self.awaiting.contains(&seq) {
                return;
            }
        } else {
            let enc = self.public.encryption();
            let p = self.pending.get_mut(&seq).expect("checked above");
            let ct = p.ciphertext.clone();
            p.shares.settle(|batch| enc.verify_shares(&ct, batch, rng));
        }
        let p = self.pending.get(&seq).expect("checked above");
        let verified: Vec<DecryptionShare> = p.shares.verified().values().cloned().collect();
        let Ok(plaintext) = self
            .public
            .encryption()
            .combine_preverified(&p.ciphertext, &verified)
        else {
            return;
        };
        let p = self.pending.remove(&seq).expect("checked above");
        // The digest lookup exists to route shares to the pending entry;
        // once decrypted it would otherwise leak one entry per request,
        // forever. Remember the digest in the bounded completion ring so
        // straggler shares are recognised and dropped.
        self.seq_of.remove(&p.digest);
        if self.completed.insert(p.digest) {
            self.completed_order.push_back(p.digest);
            if self.completed_order.len() > COMPLETED_DIGEST_HISTORY {
                if let Some(old) = self.completed_order.pop_front() {
                    self.completed.remove(&old);
                }
            }
        }
        self.decrypted.insert(
            seq,
            ScabcDeliver {
                seq,
                round: p.round,
                origin: p.origin,
                ct_digest: p.digest,
                label: p.ciphertext.label().to_vec(),
                plaintext,
            },
        );
    }

    /// Submits the pending decryption shares for `seq` to the verify
    /// pool as one batch and parks the seq until the verdict returns.
    /// No-op while a batch for this seq is already in flight.
    fn submit_share_batch(&mut self, seq: u64, rng: &mut SeededRng) {
        if self.awaiting.contains(&seq) {
            return;
        }
        let Some(pool) = self.pool.clone() else {
            return;
        };
        let Some(p) = self.pending.get(&seq) else {
            return;
        };
        if !p.shares.has_pending() {
            return;
        }
        let snapshot = p.shares.pending_snapshot();
        let parties: Vec<PartyId> = snapshot.iter().map(|(pid, _)| *pid).collect();
        let shares: Vec<DecryptionShare> = snapshot.into_iter().map(|(_, s)| s).collect();
        let ct = p.ciphertext.clone();
        let public = Arc::clone(&self.public);
        let seed = rng.next_u64();
        let sender = self.verdicts.sender();
        self.awaiting.insert(seq);
        pool.submit(Box::new(move || {
            let culprits = public
                .encryption()
                .verify_shares(&ct, &shares, &mut SeededRng::new(seed))
                .err()
                .unwrap_or_default();
            sender.send(Verdict {
                key: seq,
                parties,
                culprits,
            });
        }));
    }

    /// Applies decryption-share verdicts from the verify pool and
    /// resumes any parked decryptions. Cheap when nothing is in flight.
    fn drain_share_verdicts(&mut self, rng: &mut SeededRng) {
        if self.pool.is_none() {
            return;
        }
        for v in self.verdicts.drain() {
            self.awaiting.remove(&v.key);
            if let Some(p) = self.pending.get_mut(&v.key) {
                p.shares.apply_verdict(&v.parties, &v.culprits);
            }
            // Stragglers for already-dropped seqs fall through here as
            // no-ops; a surviving entry re-runs the decrypt attempt.
            self.try_decrypt(v.key, rng);
        }
    }

    /// Emits decrypted requests in causal order.
    fn emit_ready(&mut self) -> Vec<ScabcDeliver> {
        let mut out = Vec::new();
        while let Some(d) = self.decrypted.remove(&self.next_emit_seq) {
            self.next_emit_seq += 1;
            out.push(d);
        }
        out
    }
}

/// [`Protocol`] adapter for simulator runs: inputs are (plaintext,
/// label) pairs encrypted locally; outputs are in-order plaintext
/// deliveries.
#[derive(Debug)]
pub struct ScabcNode {
    scabc: SecureCausalAtomicBroadcast,
    rng: SeededRng,
}

impl ScabcNode {
    /// Wraps an endpoint with its nonce RNG.
    pub fn new(scabc: SecureCausalAtomicBroadcast, rng: SeededRng) -> Self {
        ScabcNode { scabc, rng }
    }

    /// Read access to the endpoint.
    pub fn endpoint(&self) -> &SecureCausalAtomicBroadcast {
        &self.scabc
    }

    /// Mutable access to the endpoint (GC tuning, fast-forward).
    pub fn endpoint_mut(&mut self) -> &mut SecureCausalAtomicBroadcast {
        &mut self.scabc
    }
}

impl Protocol for ScabcNode {
    type Message = ScabcMessage;
    type Input = (Vec<u8>, Vec<u8>);
    type Output = ScabcDeliver;

    fn on_input(
        &mut self,
        (plaintext, label): (Vec<u8>, Vec<u8>),
        fx: &mut Effects<ScabcMessage, ScabcDeliver>,
    ) {
        let mut out = Outbox::new(self.scabc.n());
        for d in self
            .scabc
            .broadcast_plaintext(&plaintext, &label, &mut self.rng, &mut out)
        {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: ScabcMessage,
        fx: &mut Effects<ScabcMessage, ScabcDeliver>,
    ) {
        let mut out = Outbox::new(self.scabc.n());
        for d in self.scabc.on_message(from, msg, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: (Vec<u8>, Vec<u8>),
        fx: &mut Effects<ScabcMessage, ScabcDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_input(input, fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        self.record(ctx, fx, o0);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: ScabcMessage,
        fx: &mut Effects<ScabcMessage, ScabcDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        observe_wire(ctx, "recv", &msg);
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        self.record(ctx, fx, o0);
    }

    fn on_tick(&mut self, fx: &mut Effects<ScabcMessage, ScabcDeliver>) {
        let mut out = Outbox::new(self.scabc.n());
        for d in self.scabc.on_tick(&mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_tick_ctx(&mut self, ctx: &Context, fx: &mut Effects<ScabcMessage, ScabcDeliver>) {
        if !ctx.obs.is_enabled() {
            return self.on_tick(fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_tick(fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        self.record(ctx, fx, o0);
    }
}

impl ScabcNode {
    /// Records causal deliveries past `mark` and the buffered-share
    /// gauge (shares held for ciphertexts not yet ordered).
    fn record(&self, ctx: &Context, fx: &Effects<ScabcMessage, ScabcDeliver>, mark: usize) {
        ctx.obs.gauge_set(
            Layer::Scabc,
            "buffered_shares",
            self.scabc.buffered_shares() as u64,
        );
        ctx.obs.gauge_set(
            Layer::Scabc,
            "pending_decryptions",
            self.scabc.pending_decryptions() as u64,
        );
        ctx.obs.gauge_set(
            Layer::Scabc,
            "tracked_digests",
            self.scabc.tracked_digests() as u64,
        );
        let abc = self.scabc.abc();
        ctx.obs
            .gauge_set(Layer::Abc, "retained_rounds", abc.retained_rounds() as u64);
        ctx.obs
            .gauge_set(Layer::Abc, "retained_bytes", abc.retained_bytes() as u64);
        ctx.obs
            .gauge_set(Layer::Abc, "tracked_rounds", abc.tracked_rounds() as u64);
        ctx.obs
            .gauge_set(Layer::Abc, "rounds_in_flight", abc.rounds_in_flight());
        ctx.obs
            .gauge_set(Layer::Abc, "batch_size", abc.last_batch_size());
        for _ in &fx.outputs()[mark..] {
            ctx.obs.inc(Layer::Scabc, "delivered");
            ctx.obs
                .event(Event::new(Layer::Scabc, EventKind::Deliver, ctx.me).at(ctx.at));
        }
    }
}

/// Counts one SCABC wire message under its own layer and forwards the
/// embedded atomic-broadcast traffic to that layer's breakdown.
fn observe_wire(ctx: &Context, dir: &'static str, m: &ScabcMessage) {
    ctx.obs.inc2(Layer::Scabc, dir, m.kind());
    if let ScabcMessage::Abc(inner) = m {
        crate::abc::observe_wire(ctx, dir, inner);
    }
}

/// Builds `n` connected [`ScabcNode`]s for a dealt system.
pub fn scabc_nodes(
    public: PublicParameters,
    bundles: Vec<ServerKeyBundle>,
    seed: u64,
) -> Vec<ScabcNode> {
    let public = Arc::new(public);
    bundles
        .into_iter()
        .map(|b| {
            let rng = SeededRng::new(seed ^ (b.party() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            ScabcNode::new(
                SecureCausalAtomicBroadcast::new(
                    Tag::root("scabc"),
                    Arc::clone(&public),
                    Arc::new(b),
                ),
                rng,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;
    use sintra_net::sim::{Behavior, RandomScheduler, Simulation};

    fn setup(n: usize, t: usize, seed: u64) -> Vec<ScabcNode> {
        let ts = TrustStructure::threshold(n, t).unwrap();
        let mut rng = SeededRng::new(seed);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        scabc_nodes(public, bundles, seed)
    }

    fn plaintexts(
        sim: &Simulation<ScabcNode, impl sintra_net::sim::Scheduler<ScabcMessage>>,
        p: usize,
    ) -> Vec<Vec<u8>> {
        sim.outputs(p).iter().map(|d| d.plaintext.clone()).collect()
    }

    #[test]
    fn encrypt_order_decrypt_roundtrip() {
        let mut sim = Simulation::builder(setup(4, 1, 1), RandomScheduler)
            .seed(2)
            .build();
        sim.input(0, (b"file patent 17".to_vec(), b"client-a".to_vec()));
        sim.run_until_quiet(50_000_000);
        for p in 0..4 {
            assert_eq!(
                plaintexts(&sim, p),
                vec![b"file patent 17".to_vec()],
                "party {p}"
            );
            assert_eq!(sim.outputs(p)[0].label, b"client-a".to_vec());
        }
    }

    #[test]
    fn concurrent_requests_same_order_and_contents() {
        let mut sim = Simulation::builder(setup(4, 1, 10), RandomScheduler)
            .seed(11)
            .build();
        for p in 0..4 {
            sim.input(p, (format!("req-{p}").into_bytes(), b"l".to_vec()));
        }
        sim.run_until_quiet(100_000_000);
        let reference = plaintexts(&sim, 0);
        assert_eq!(reference.len(), 4);
        for p in 1..4 {
            assert_eq!(plaintexts(&sim, p), reference, "party {p}");
        }
        // Causal sequence numbers are consecutive.
        for p in 0..4 {
            let seqs: Vec<u64> = sim.outputs(p).iter().map(|d| d.seq).collect();
            assert_eq!(seqs, (0..4).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn tolerates_crash() {
        let mut sim = Simulation::builder(setup(4, 1, 20), RandomScheduler)
            .seed(21)
            .build();
        sim.corrupt(2, Behavior::Crash);
        sim.input(0, (b"r1".to_vec(), b"".to_vec()));
        sim.input(1, (b"r2".to_vec(), b"".to_vec()));
        sim.run_until_quiet(100_000_000);
        let reference = plaintexts(&sim, 0);
        assert_eq!(reference.len(), 2);
        for p in [1usize, 3] {
            assert_eq!(plaintexts(&sim, p), reference, "party {p}");
        }
    }

    #[test]
    fn malformed_ciphertext_payloads_skipped_consistently() {
        // A Byzantine server pushes garbage through the underlying ABC;
        // all honest servers skip it and stay consistent.
        let mut sim = Simulation::builder(setup(4, 1, 30), RandomScheduler)
            .seed(31)
            .build();
        sim.corrupt(
            3,
            Behavior::Custom(Box::new(|_from, msg: ScabcMessage, _| {
                // Forward ABC traffic unchanged (keeps the protocol
                // moving) but respond to any Share with garbage pushes.
                match msg {
                    ScabcMessage::Abc(inner) => (0..4)
                        .map(|p| (p, ScabcMessage::Abc(inner.clone())))
                        .collect(),
                    _ => vec![],
                }
            })),
        );
        sim.input(0, (b"good request".to_vec(), b"".to_vec()));
        sim.run_until_quiet(100_000_000);
        let reference = plaintexts(&sim, 0);
        assert_eq!(reference, vec![b"good request".to_vec()]);
        for p in 1..3 {
            assert_eq!(plaintexts(&sim, p), reference, "party {p}");
        }
    }

    #[test]
    fn confidentiality_until_ordering() {
        // Inspect the wire: before any Share message exists, no in-flight
        // message may contain the plaintext bytes. We check the weaker,
        // deterministic property that the ABC payload is the ciphertext
        // (not the plaintext).
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(40);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let mut node = SecureCausalAtomicBroadcast::new(
            Tag::root("conf"),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        let mut out = Outbox::new(node.n());
        node.broadcast_plaintext(b"SECRET-REQUEST", b"lbl", &mut rng, &mut out);
        let needle = b"SECRET-REQUEST";
        for (_, msg) in &out {
            if let ScabcMessage::Abc(AbcMessage::Push(bytes)) = msg {
                assert!(
                    !bytes.windows(needle.len()).any(|w| w == needle),
                    "plaintext leaked into the broadcast payload"
                );
            }
        }
    }

    #[test]
    fn decryption_evicts_lookup_state() {
        // The digest→seq map and pending set must drain as requests
        // complete; before the leak fix, seq_of grew by one entry per
        // request forever.
        let mut sim = Simulation::builder(setup(4, 1, 60), RandomScheduler)
            .seed(61)
            .build();
        for i in 0..6u32 {
            sim.input(
                (i % 4) as usize,
                (format!("req-{i}").into_bytes(), b"l".to_vec()),
            );
        }
        sim.run_until_quiet(200_000_000);
        for p in 0..4 {
            assert_eq!(sim.outputs(p).len(), 6, "party {p} delivered all");
            let ep = sim.node(p).unwrap().endpoint();
            assert_eq!(ep.tracked_digests(), 0, "party {p} leaked seq_of entries");
            assert_eq!(ep.pending_decryptions(), 0, "party {p} leaked pending");
            assert_eq!(ep.buffered_shares(), 0, "party {p} leaked early shares");
        }
    }

    #[test]
    fn early_share_flood_is_bounded_per_sender() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(70);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let mut node = SecureCausalAtomicBroadcast::new(
            Tag::root("flood"),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        node.set_early_share_bound(8);
        let mut out = Outbox::new(node.n());
        // A Byzantine server sprays valid-looking shares for ciphertext
        // digests that will never be ordered.
        let ct = public.encryption().encrypt(b"x", b"", &mut rng);
        let share = bundles[3]
            .decryption_key()
            .decrypt_share(public.encryption(), &ct, &mut rng)
            .unwrap();
        for i in 0..1_000u32 {
            let mut fake = [0u8; 32];
            fake[..4].copy_from_slice(&i.to_be_bytes());
            node.on_message(
                3,
                ScabcMessage::Share {
                    ct_digest: fake,
                    share: share.clone(),
                },
                &mut rng,
                &mut out,
            );
        }
        assert_eq!(node.early_share_debt(3), 8, "debt capped at the bound");
        assert_eq!(node.buffered_shares(), 8, "buffer growth bounded");
        // Duplicate shares for one digest from the same sender are
        // dropped rather than charged twice.
        let mut fresh = SecureCausalAtomicBroadcast::new(
            Tag::root("dup"),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        for _ in 0..5 {
            fresh.on_message(
                3,
                ScabcMessage::Share {
                    ct_digest: [7u8; 32],
                    share: share.clone(),
                },
                &mut rng,
                &mut out,
            );
        }
        assert_eq!(fresh.early_share_debt(3), 1);
        assert_eq!(fresh.buffered_shares(), 1);
    }

    #[test]
    fn fast_forward_clears_decryption_state() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(80);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let mut node = SecureCausalAtomicBroadcast::new(
            Tag::root("ff"),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        let mut out = Outbox::new(node.n());
        let ct = public.encryption().encrypt(b"y", b"", &mut rng);
        let share = bundles[2]
            .decryption_key()
            .decrypt_share(public.encryption(), &ct, &mut rng)
            .unwrap();
        node.on_message(
            2,
            ScabcMessage::Share {
                ct_digest: ct.digest(),
                share,
            },
            &mut rng,
            &mut out,
        );
        assert_eq!(node.buffered_shares(), 1);
        node.fast_forward(10, 5, &[]);
        assert_eq!(node.buffered_shares(), 0);
        assert_eq!(node.early_share_debt(2), 0);
        assert_eq!(node.delivered_count(), 10);
        assert_eq!(node.abc().round(), 5);
    }

    #[test]
    fn ciphertext_codec_roundtrip() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(50);
        let (public, _) = Dealer::deal(&ts, &mut rng);
        let ct = public.encryption().encrypt(b"msg", b"label", &mut rng);
        let bytes = ct.to_bytes();
        let parsed = Ciphertext::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, ct);
        assert!(Ciphertext::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(Ciphertext::from_bytes(b"").is_none());
    }
}
