#![warn(missing_docs)]
//! # sintra-protocols
//!
//! The secure asynchronous broadcast protocol stack of **SINTRA-RS**
//! (Cachin, *"Distributing Trust on the Internet"*, DSN 2001, §3),
//! built bottom-up exactly as the paper's architecture diagram:
//!
//! ```text
//! ┌─────────────────────────────────────────────┐
//! │      Secure Causal Atomic Broadcast         │  scabc
//! ├─────────────────────────────────────────────┤
//! │             Atomic Broadcast                │  abc
//! ├─────────────────────────────────────────────┤
//! │      Multi-valued Byzantine Agreement       │  mvba
//! ├──────────────────────┬──────────────────────┤
//! │ Broadcast Primitives │ Byzantine Agreement  │  rbc, cbc │ abba
//! └──────────────────────┴──────────────────────┘
//! ```
//!
//! * [`rbc`] — reliable broadcast (Bracha-Toueg, generalized quorums);
//! * [`cbc`] — consistent broadcast (echo broadcast with transferable
//!   threshold-signature vouchers);
//! * [`abba`] — randomized binary Byzantine agreement
//!   (Cachin-Kursawe-Shoup), expected-constant rounds, optionally
//!   *biased* with evidence-carrying 1-votes;
//! * [`mvba`] — multi-valued validated agreement with **external
//!   validity** (the paper's novel condition);
//! * [`abc`] — atomic broadcast: global rounds agreeing on sets of
//!   signed proposals, total order for state machine replication;
//! * [`scabc`] — secure causal atomic broadcast: CCA-threshold-encrypted
//!   requests ordered before decryption (input causality);
//! * [`fdabc`] — the *baseline* rotating-coordinator protocol with a
//!   timeout failure detector, used by the Figure-1 experiment to show
//!   what the asynchronous design buys.
//!
//! All protocols operate on [`sintra_adversary::TrustStructure`]
//! predicates, so the classical `n > 3t` and the paper's generalized
//! `Q³` structures (§4) run through identical code paths.

pub mod abba;
pub mod abc;
pub mod cbc;
pub mod codec;
pub mod common;
pub mod fdabc;
pub mod harness;
pub mod mvba;
pub mod nodes;
pub mod optimistic;
pub mod pool;
pub mod rbc;
pub mod scabc;
pub mod wire;
