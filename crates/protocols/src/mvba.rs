//! Multi-valued validated Byzantine agreement with **external validity**
//! (the CKPS01 construction the paper introduces in §3).
//!
//! The difficulty with multi-valued agreement is validity: the domain
//! has no fixed size, and "decide some proposed value" is not enough in
//! a Byzantine setting. The paper's answer is an *external* validity
//! predicate: every honest party can check a candidate value, and the
//! protocol may only decide a value acceptable to honest parties.
//!
//! The construction here follows the companion paper's VBA protocol:
//!
//! 1. **dissemination** — each party consistent-broadcasts its (valid)
//!    proposal; the voucher makes delivered proposals transferable;
//! 2. once a core quorum of proposals is delivered, parties run repeated
//!    **elections**: the threshold coin names a random candidate party,
//!    unpredictable to the adversary;
//! 3. a **biased binary agreement** ([`crate::abba`]) decides whether
//!    the candidate's proposal "counts": voting 1 requires the voucher
//!    as evidence, so a 1-decision guarantees some honest party can
//!    supply the proposal (retrieval liveness);
//! 4. on the first 1-decision everyone outputs the candidate's proposal,
//!    re-broadcasting its voucher so laggards can recover it.
//!
//! Each election succeeds with constant probability, so the expected
//! number of elections — and, with ABBA's expected-constant rounds, the
//! whole protocol — is constant.

use crate::abba::{Abba, AbbaMessage, EvidenceCheck};
use crate::cbc::{CbcMessage, ConsistentBroadcast, Voucher};
use crate::common::{BatchedShares, Outbox, Tag, WireKind};
use crate::pool::{Verdict, VerdictChannel, VerifyPool};
use parking_lot::Mutex;
use sintra_adversary::party::{PartyId, PartySet};
use sintra_crypto::coin::CoinShare;
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::rng::SeededRng;
use sintra_net::protocol::Context;
use sintra_obs::Layer;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// External validity predicate: decides whether a byte string is an
/// acceptable decision value.
pub type ValidityPredicate = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// MVBA wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum MvbaMessage {
    /// Consistent-broadcast traffic for one party's proposal.
    Proposal {
        /// Whose proposal this instance disseminates.
        proposer: PartyId,
        /// The CBC sub-message.
        inner: CbcMessage,
    },
    /// A share of the election coin.
    ElectCoin {
        /// Election index.
        election: u64,
        /// The coin share.
        share: CoinShare,
    },
    /// Biased binary agreement traffic for one election.
    Vote {
        /// Election index.
        election: u64,
        /// The ABBA sub-message (evidence = candidate voucher).
        inner: AbbaMessage<Voucher>,
    },
}

impl WireKind for MvbaMessage {
    fn kind(&self) -> &'static str {
        match self {
            MvbaMessage::Proposal { .. } => "proposal",
            MvbaMessage::ElectCoin { .. } => "elect_coin",
            MvbaMessage::Vote { .. } => "vote",
        }
    }
}

/// Counts one MVBA wire message under the per-kind counters of *both*
/// its own layer and the sub-protocol layer it carries, so traffic for
/// the embedded consistent-broadcast and binary-agreement instances
/// stays visible in per-layer breakdowns.
pub(crate) fn observe_wire(ctx: &Context, dir: &'static str, m: &MvbaMessage) {
    ctx.obs.inc2(Layer::Mvba, dir, m.kind());
    match m {
        MvbaMessage::Proposal { inner, .. } => ctx.obs.inc2(Layer::Cbc, dir, inner.kind()),
        MvbaMessage::Vote { inner, .. } => ctx.obs.inc2(Layer::Abba, dir, inner.kind()),
        MvbaMessage::ElectCoin { .. } => {}
    }
}

/// How far past the current election coin shares and votes are buffered.
/// Election numbers are attacker-chosen (a coin share for *any* election
/// self-verifies), so without a window a Byzantine party could open
/// unboundedly many buffer entries. Honest parties only outrun each
/// other by one completed ABBA per election, so a skew beyond this
/// window cannot arise from honest traffic in practice.
const ELECTION_LOOKAHEAD: u64 = 16;

/// Per-party cap on buffered votes for an election whose candidate is
/// not yet known (votes are only validated once the ABBA exists).
const PENDING_VOTE_CAP: usize = 64;

/// Multi-valued validated Byzantine agreement instance at one party.
pub struct Mvba {
    tag: Tag,
    me: PartyId,
    n: usize,
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    predicate: ValidityPredicate,
    /// CBC instance per proposer.
    cbc: Vec<ConsistentBroadcast>,
    /// Delivered (and externally valid) proposals, shared with the ABBA
    /// evidence validators so vouchers learned during vote validation
    /// are retained for retrieval.
    vouchers: Arc<Mutex<HashMap<PartyId, Voucher>>>,
    /// Proposers with stored vouchers (mirror of `vouchers` keys).
    delivered: PartySet,
    proposed: bool,
    elections_started: bool,
    election: u64,
    /// Coin shares per election (buffered ahead of need; proofs are
    /// batch-verified only once a qualified holder set exists).
    elect_shares: BTreeMap<u64, BatchedShares<CoinShare>>,
    /// Decided candidate per election.
    candidates: BTreeMap<u64, PartyId>,
    /// Running ABBA instances (created once the candidate is known).
    abbas: BTreeMap<u64, Abba<Voucher>>,
    /// Vote messages waiting for their election's candidate.
    pending_votes: BTreeMap<u64, Vec<(PartyId, AbbaMessage<Voucher>)>>,
    /// A 1-decision whose voucher has not arrived yet.
    waiting_for: Option<(u64, PartyId)>,
    decided: Option<Vec<u8>>,
    /// Off-thread verification pool; `None` keeps the seed behavior of
    /// verifying on the protocol thread.
    pool: Option<Arc<VerifyPool>>,
    /// Ordered verdict stream for pooled coin-batch jobs, keyed by
    /// election.
    verdicts: VerdictChannel<u64>,
    /// Elections whose coin batch is currently out at the pool.
    awaiting_verify: BTreeSet<u64>,
    /// Instance-wide culprit cache: a sender whose coin share failed
    /// verification in any election is banned from every current and
    /// future election tracker, so its spam costs O(1) per share.
    instance_banned: PartySet,
}

impl core::fmt::Debug for Mvba {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Mvba")
            .field("tag", &self.tag)
            .field("me", &self.me)
            .field("election", &self.election)
            .field("decided", &self.decided.is_some())
            .finish()
    }
}

impl Mvba {
    /// Number of parties in the group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Creates an instance under `tag` with the given external validity
    /// predicate.
    pub fn new(
        tag: Tag,
        public: Arc<PublicParameters>,
        bundle: Arc<ServerKeyBundle>,
        predicate: ValidityPredicate,
    ) -> Self {
        let n = public.n();
        let cbc = (0..n)
            .map(|proposer| {
                ConsistentBroadcast::new(
                    tag.child("prop", proposer as u64),
                    proposer,
                    Arc::clone(&public),
                    Arc::clone(&bundle),
                )
            })
            .collect();
        Mvba {
            tag,
            me: bundle.party(),
            n,
            public,
            bundle,
            predicate,
            cbc,
            vouchers: Arc::new(Mutex::new(HashMap::new())),
            delivered: PartySet::new(),
            proposed: false,
            elections_started: false,
            election: 0,
            elect_shares: BTreeMap::new(),
            candidates: BTreeMap::new(),
            abbas: BTreeMap::new(),
            pending_votes: BTreeMap::new(),
            waiting_for: None,
            decided: None,
            pool: None,
            verdicts: VerdictChannel::new(),
            awaiting_verify: BTreeSet::new(),
            instance_banned: PartySet::new(),
        }
    }

    /// Routes share-batch verification through `pool` instead of running
    /// it inline, for this instance and all its sub-protocols (CBC echo
    /// batches, ABBA vote and coin batches). Verdicts from threaded
    /// pools are applied by [`Mvba::drain_verifications`], which runs on
    /// every message entry and from the ABC layer's tick; a 0-worker
    /// pool completes synchronously, so behavior is identical to inline
    /// verification.
    pub fn set_verify_pool(&mut self, pool: Arc<VerifyPool>) {
        for cbc in &mut self.cbc {
            cbc.set_verify_pool(Arc::clone(&pool));
        }
        for abba in self.abbas.values_mut() {
            abba.set_verify_pool(Arc::clone(&pool));
        }
        self.pool = Some(pool);
    }

    /// Whether a verification pool is attached.
    pub fn has_verify_pool(&self) -> bool {
        self.pool.is_some()
    }

    /// Whether the dissemination phase has reached a core proposal
    /// quorum and elections are running. The ABC layer uses this as its
    /// pipelining trigger: once a round's MVBA has a proposal quorum,
    /// the next round may open without waiting for the decision.
    pub fn elections_started(&self) -> bool {
        self.elections_started
    }

    /// The decided value, if any.
    pub fn decision(&self) -> Option<&[u8]> {
        self.decided.as_deref()
    }

    /// Number of elections run so far (for the round-count experiments).
    pub fn elections(&self) -> u64 {
        self.election
    }

    /// Buffered (not yet validated) votes held for elections whose
    /// candidate is unknown (observability for the flooding-bound tests).
    pub fn buffered_votes(&self) -> usize {
        self.pending_votes.values().map(Vec::len).sum()
    }

    /// Buffered election coin shares (observability for the
    /// flooding-bound tests).
    pub fn buffered_elect_shares(&self) -> usize {
        self.elect_shares.values().map(|t| t.holders().len()).sum()
    }

    /// Starts the instance with this party's proposal.
    ///
    /// # Panics
    ///
    /// Panics on double-propose or if the proposal fails the validity
    /// predicate (the caller must propose valid values).
    pub fn propose(
        &mut self,
        value: Vec<u8>,
        rng: &mut SeededRng,
        out: &mut Outbox<MvbaMessage>,
    ) -> Option<Vec<u8>> {
        assert!(!self.proposed, "propose may be called only once");
        assert!((self.predicate)(&value), "own proposal must be valid");
        self.proposed = true;
        let mut sub = Outbox::new(self.n);
        self.cbc[self.me].broadcast(value, &mut sub);
        let me = self.me;
        wrap(out, sub, |inner| MvbaMessage::Proposal {
            proposer: me,
            inner,
        });
        // Proposals received before our own input may already form a core
        // quorum.
        self.progress(rng, out)
    }

    fn elect_coin_name(&self, election: u64) -> Vec<u8> {
        self.tag.message(&[b"elect", &election.to_be_bytes()])
    }

    /// Handles a message; returns the decided value when this party
    /// decides.
    pub fn on_message(
        &mut self,
        from: PartyId,
        msg: MvbaMessage,
        rng: &mut SeededRng,
        out: &mut Outbox<MvbaMessage>,
    ) -> Option<Vec<u8>> {
        if from >= self.n {
            return None;
        }
        // Verdicts may have landed since the last tick; apply them before
        // handling the message so a batch completed between ticks never
        // stalls the round until the next timer fires.
        if self.pool.is_some() {
            if let Some(d) = self.drain_verifications(rng, out) {
                return Some(d);
            }
        }
        if self.decided.is_some() {
            // A terminated party must keep serving proposal dissemination
            // (CBC echoes and Final transfers): under a hostile schedule a
            // starved party may still need echo shares — even for its own
            // proposal — to reach the election stage, after which the
            // election and vote transcripts already on the wire let it
            // replay to termination by itself. CBC service is idempotent
            // and bounded (one echo per proposer), so this cannot grow
            // state; election and vote traffic stays ignored.
            if let MvbaMessage::Proposal { proposer, inner } = msg {
                if proposer < self.n {
                    let mut sub = Outbox::new(self.n);
                    self.cbc[proposer].on_message(from, inner, rng, &mut sub);
                    wrap(out, sub, |inner| MvbaMessage::Proposal { proposer, inner });
                }
            }
            return None;
        }
        match msg {
            MvbaMessage::Proposal { proposer, inner } => {
                if proposer >= self.n {
                    return None;
                }
                let mut sub = Outbox::new(self.n);
                let delivered = self.cbc[proposer].on_message(from, inner, rng, &mut sub);
                wrap(out, sub, |inner| MvbaMessage::Proposal { proposer, inner });
                if let Some(voucher) = delivered {
                    if (self.predicate)(&voucher.payload) {
                        self.store_voucher(proposer, voucher);
                        return self.progress(rng, out);
                    }
                }
                None
            }
            MvbaMessage::ElectCoin { election, share } => {
                if share.party() != from || election > self.election + ELECTION_LOOKAHEAD {
                    return None; // forged origin or beyond buffer window
                }
                if self.candidates.contains_key(&election) {
                    return None;
                }
                // Accepted structurally; the validity proof is checked in
                // `try_elect` as part of the quorum batch. New trackers
                // inherit the instance-wide culprit set so attributed
                // senders are rejected on arrival.
                let banned = self.instance_banned;
                let shares = self
                    .elect_shares
                    .entry(election)
                    .or_insert_with(|| BatchedShares::with_bans(banned));
                if !shares.insert(from, share) {
                    return None; // one share per party per election
                }
                self.try_elect(election, rng, out)
            }
            MvbaMessage::Vote { election, inner } => {
                if let Some(abba) = self.abbas.get_mut(&election) {
                    let mut sub = Outbox::new(self.n);
                    let decision = abba.on_message(from, inner, rng, &mut sub);
                    wrap(out, sub, |inner| MvbaMessage::Vote { election, inner });
                    if let Some(bit) = decision {
                        return self.on_abba_decision(election, bit, rng, out);
                    }
                    None
                } else {
                    if election < self.election || election > self.election + ELECTION_LOOKAHEAD {
                        return None; // stale, or beyond the buffer window
                    }
                    let pending = self.pending_votes.entry(election).or_default();
                    if pending.iter().filter(|(p, _)| *p == from).count() >= PENDING_VOTE_CAP {
                        return None; // flooding sender: buffer is bounded
                    }
                    pending.push((from, inner));
                    None
                }
            }
        }
    }

    fn store_voucher(&mut self, proposer: PartyId, voucher: Voucher) {
        self.vouchers.lock().insert(proposer, voucher);
        self.delivered.insert(proposer);
    }

    /// Fires any enabled transitions: starting elections, resolving a
    /// waiting 1-decision.
    fn progress(&mut self, rng: &mut SeededRng, out: &mut Outbox<MvbaMessage>) -> Option<Vec<u8>> {
        // A previously decided election may have been waiting for its
        // voucher.
        if let Some((election, candidate)) = self.waiting_for {
            let voucher = self.vouchers.lock().get(&candidate).cloned();
            if let Some(v) = voucher {
                self.waiting_for = None;
                return self.output(election, candidate, v, out);
            }
        }
        // Start elections once a core quorum of proposals is in.
        if !self.elections_started
            && self.proposed
            && self.public.structure().is_core(&self.delivered)
        {
            self.elections_started = true;
            self.start_election(0, rng, out);
            // Starting the election may immediately cascade (buffered
            // shares and votes).
            return self.after_election_start(0, rng, out);
        }
        None
    }

    fn start_election(
        &mut self,
        election: u64,
        rng: &mut SeededRng,
        out: &mut Outbox<MvbaMessage>,
    ) {
        self.election = election;
        // Reclaim buffers from completed elections (their candidates are
        // decided, so the buffered shares and votes can never be used).
        self.elect_shares = self.elect_shares.split_off(&election);
        self.pending_votes = self.pending_votes.split_off(&election);
        let name = self.elect_coin_name(election);
        let share = self.bundle.coin_key().share(&name, rng);
        out.broadcast(MvbaMessage::ElectCoin { election, share });
    }

    fn after_election_start(
        &mut self,
        election: u64,
        rng: &mut SeededRng,
        out: &mut Outbox<MvbaMessage>,
    ) -> Option<Vec<u8>> {
        self.try_elect(election, rng, out)
    }

    /// Attempts to combine the election coin and launch the ABBA.
    fn try_elect(
        &mut self,
        election: u64,
        rng: &mut SeededRng,
        out: &mut Outbox<MvbaMessage>,
    ) -> Option<Vec<u8>> {
        if self.candidates.contains_key(&election)
            || election != self.election
            || !self.elections_started
        {
            return None;
        }
        let name = self.elect_coin_name(election);
        {
            let tracker = self.elect_shares.get(&election)?;
            if !self.public.structure().is_qualified(&tracker.holders()) {
                return None;
            }
        }
        if self.pool.is_some() {
            // Hand the pending batch to the pool. An inline (0-worker)
            // pool has sent its verdict by the time submit returns, so
            // applying immediately keeps the single-threaded cadence; a
            // threaded pool reports back through drain_verifications
            // and this election stays parked until then.
            self.submit_verification(election, &name, rng);
            self.apply_verdicts();
            if self.awaiting_verify.contains(&election) {
                return None;
            }
        } else {
            // Batch-verify the pending shares' DLEQ proofs in one
            // multi-exp; culprits are banned and the combine skips
            // proof re-checks.
            let tracker = self
                .elect_shares
                .get_mut(&election)
                .expect("tracker checked above");
            let coin = self.public.coin();
            let caught = tracker.settle(|batch| coin.verify_shares(&name, batch, rng));
            for culprit in caught {
                self.ban_sender(culprit);
            }
        }
        let tracker = self
            .elect_shares
            .get(&election)
            .expect("tracker checked above");
        let shares: Vec<CoinShare> = tracker.verified().values().cloned().collect();
        let value = self.public.coin().combine_preverified(&name, &shares)?;
        let candidate = (value.u64() % self.n as u64) as PartyId;
        self.candidates.insert(election, candidate);
        // Build the biased ABBA whose evidence is the candidate's
        // voucher; validated vouchers are stored for retrieval.
        let vouchers = Arc::clone(&self.vouchers);
        let public = Arc::clone(&self.public);
        let prop_tag = self.tag.child("prop", candidate as u64);
        let predicate = Arc::clone(&self.predicate);
        let check: EvidenceCheck<Voucher> = Arc::new(move |v: &Voucher| {
            if !ConsistentBroadcast::verify_voucher(&public, &prop_tag, v) {
                return false;
            }
            if !(predicate)(&v.payload) {
                return false;
            }
            vouchers
                .lock()
                .entry(candidate)
                .or_insert_with(|| v.clone());
            true
        });
        let mut abba = Abba::new_biased(
            self.tag.child("abba", election),
            Arc::clone(&self.public),
            Arc::clone(&self.bundle),
            check,
        );
        if let Some(pool) = &self.pool {
            abba.set_verify_pool(Arc::clone(pool));
        }
        // Propose.
        let my_voucher = self.vouchers.lock().get(&candidate).cloned();
        let mut sub = Outbox::new(self.n);
        let mut decision = match my_voucher {
            Some(v) => abba.propose_with_evidence(v, rng, &mut sub),
            None => abba.propose(false, rng, &mut sub),
        };
        wrap(out, sub, |inner| MvbaMessage::Vote { election, inner });
        // Drain buffered votes.
        let pending = self.pending_votes.remove(&election).unwrap_or_default();
        self.abbas.insert(election, abba);
        for (from, inner) in pending {
            if decision.is_some() {
                break;
            }
            let mut sub = Outbox::new(self.n);
            decision = self
                .abbas
                .get_mut(&election)
                .expect("just inserted")
                .on_message(from, inner, rng, &mut sub);
            wrap(out, sub, |inner| MvbaMessage::Vote { election, inner });
        }
        if let Some(bit) = decision {
            return self.on_abba_decision(election, bit, rng, out);
        }
        None
    }

    /// Ships `election`'s pending coin shares to the verification pool.
    /// No-op when the batch is already in flight or nothing is pending.
    fn submit_verification(&mut self, election: u64, name: &[u8], rng: &mut SeededRng) {
        if self.awaiting_verify.contains(&election) {
            return;
        }
        let Some(tracker) = self.elect_shares.get(&election) else {
            return;
        };
        if !tracker.has_pending() {
            return;
        }
        let Some(pool) = self.pool.clone() else {
            return;
        };
        let snapshot = tracker.pending_snapshot();
        let parties: Vec<PartyId> = snapshot.iter().map(|(p, _)| *p).collect();
        let shares: Vec<CoinShare> = snapshot.into_iter().map(|(_, s)| s).collect();
        let public = Arc::clone(&self.public);
        let name = name.to_vec();
        let sender = self.verdicts.sender();
        // Workers need randomness for the batch combination
        // coefficients; derive it from the protocol stream so the whole
        // run stays seeded.
        let seed = rng.next_u64();
        self.awaiting_verify.insert(election);
        pool.submit(Box::new(move || {
            let mut rng = SeededRng::new(seed);
            let culprits = match public.coin().verify_shares(&name, &shares, &mut rng) {
                Ok(()) => Vec::new(),
                Err(culprits) => culprits,
            };
            // If the instance was dropped (round GC'd) the channel is
            // closed and the verdict is simply discarded.
            sender.send(Verdict {
                key: election,
                parties,
                culprits,
            });
        }));
    }

    /// Cross-election culprit propagation — the per-(sender, election)
    /// verdict cache: an invalid coin share bans its sender from every
    /// buffered election tracker, and `instance_banned` seeds all future
    /// ones, so continued spam is rejected on arrival instead of
    /// triggering another per-share fallback pass.
    fn ban_sender(&mut self, culprit: PartyId) {
        self.instance_banned.insert(culprit);
        for tracker in self.elect_shares.values_mut() {
            tracker.ban(culprit);
        }
    }

    /// Applies any verdicts pool workers have sent back; returns the
    /// elections whose batches settled.
    fn apply_verdicts(&mut self) -> Vec<u64> {
        let mut settled = Vec::new();
        for v in self.verdicts.drain() {
            self.awaiting_verify.remove(&v.key);
            if let Some(tracker) = self.elect_shares.get_mut(&v.key) {
                tracker.apply_verdict(&v.parties, &v.culprits);
            }
            for &culprit in &v.culprits {
                self.ban_sender(culprit);
            }
            settled.push(v.key);
        }
        settled
    }

    /// Applies pool verdicts — its own election coins plus those of its
    /// CBC and ABBA sub-protocols — and advances whatever was parked on
    /// them. Runs on every message entry and from the ABC layer's tick;
    /// returns the decision if one results.
    pub fn drain_verifications(
        &mut self,
        rng: &mut SeededRng,
        out: &mut Outbox<MvbaMessage>,
    ) -> Option<Vec<u8>> {
        self.pool.as_ref()?;
        // CBC echo batches settle first: a delivered voucher can unlock
        // the proposal quorum (and must be served even after deciding,
        // so laggards still receive the transferable Final).
        for proposer in 0..self.n {
            let mut sub = Outbox::new(self.n);
            let delivered = self.cbc[proposer].drain_verifications(&mut sub);
            wrap(out, sub, |inner| MvbaMessage::Proposal { proposer, inner });
            if let Some(voucher) = delivered {
                if self.decided.is_none() && (self.predicate)(&voucher.payload) {
                    self.store_voucher(proposer, voucher);
                }
            }
        }
        if self.decided.is_some() {
            return None;
        }
        if let Some(d) = self.progress(rng, out) {
            return Some(d);
        }
        let settled = self.apply_verdicts();
        for election in settled {
            let decision = self.try_elect(election, rng, out);
            if decision.is_some() {
                return decision;
            }
        }
        // ABBA coin/vote batches.
        let elections: Vec<u64> = self.abbas.keys().copied().collect();
        for election in elections {
            let mut sub = Outbox::new(self.n);
            let decision = self
                .abbas
                .get_mut(&election)
                .expect("listed above")
                .drain_verifications(rng, &mut sub);
            wrap(out, sub, |inner| MvbaMessage::Vote { election, inner });
            if let Some(bit) = decision {
                if let Some(d) = self.on_abba_decision(election, bit, rng, out) {
                    return Some(d);
                }
            }
        }
        None
    }

    fn on_abba_decision(
        &mut self,
        election: u64,
        bit: bool,
        rng: &mut SeededRng,
        out: &mut Outbox<MvbaMessage>,
    ) -> Option<Vec<u8>> {
        if election != self.election || self.decided.is_some() {
            return None;
        }
        let candidate = *self
            .candidates
            .get(&election)
            .expect("decision implies the election's candidate is known");
        if bit {
            let voucher = self.vouchers.lock().get(&candidate).cloned();
            match voucher {
                Some(v) => self.output(election, candidate, v, out),
                None => {
                    // Some honest party holds the voucher (biased
                    // validity) and will re-broadcast it.
                    self.waiting_for = Some((election, candidate));
                    None
                }
            }
        } else {
            self.start_election(election + 1, rng, out);
            self.after_election_start(election + 1, rng, out)
        }
    }

    fn output(
        &mut self,
        _election: u64,
        candidate: PartyId,
        voucher: Voucher,
        out: &mut Outbox<MvbaMessage>,
    ) -> Option<Vec<u8>> {
        // Help laggards: re-broadcast the winning proposal's transferable
        // CBC Final so everyone can deliver it.
        out.broadcast(MvbaMessage::Proposal {
            proposer: candidate,
            inner: CbcMessage::Final(voucher.payload.clone(), voucher.signature.clone()),
        });
        self.decided = Some(voucher.payload.clone());
        Some(voucher.payload)
    }
}

/// Wraps sub-protocol messages into the parent message type.
fn wrap<Sub, M>(out: &mut Outbox<M>, sub: Outbox<Sub>, f: impl Fn(Sub) -> M) {
    for (to, m) in sub {
        out.send(to, f(m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::contexts;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;
    use sintra_net::protocol::{Effects, Protocol};
    use sintra_net::sim::{Behavior, LifoScheduler, RandomScheduler, Simulation};

    #[derive(Debug)]
    pub struct MvbaNode {
        mvba: Mvba,
        rng: SeededRng,
    }

    impl Protocol for MvbaNode {
        type Message = MvbaMessage;
        type Input = Vec<u8>;
        type Output = Vec<u8>;

        fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<MvbaMessage, Vec<u8>>) {
            let mut out = Outbox::new(self.mvba.n());
            if let Some(d) = self.mvba.propose(input, &mut self.rng, &mut out) {
                fx.output(d);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }

        fn on_message(
            &mut self,
            from: PartyId,
            msg: MvbaMessage,
            fx: &mut Effects<MvbaMessage, Vec<u8>>,
        ) {
            let mut out = Outbox::new(self.mvba.n());
            if let Some(d) = self.mvba.on_message(from, msg, &mut self.rng, &mut out) {
                fx.output(d);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }
    }

    pub fn nodes_with_predicate(
        n: usize,
        t: usize,
        seed: u64,
        predicate: ValidityPredicate,
    ) -> Vec<MvbaNode> {
        let ts = TrustStructure::threshold(n, t).unwrap();
        let mut rng = SeededRng::new(seed);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        contexts(public, bundles, seed)
            .into_iter()
            .map(|c| MvbaNode {
                mvba: Mvba::new(
                    Tag::root("mvba-test"),
                    Arc::new(c.public().clone()),
                    Arc::new(c.bundle().clone()),
                    Arc::clone(&predicate),
                ),
                rng: c.rng.clone(),
            })
            .collect()
    }

    fn nodes(n: usize, t: usize, seed: u64) -> Vec<MvbaNode> {
        nodes_with_predicate(n, t, seed, Arc::new(|_| true))
    }

    fn check_agreement(
        sim: &Simulation<MvbaNode, impl sintra_net::sim::Scheduler<MvbaMessage>>,
        honest: &[usize],
    ) -> Vec<u8> {
        let decisions: Vec<Vec<u8>> = honest
            .iter()
            .filter_map(|p| sim.outputs(*p).first().cloned())
            .collect();
        assert_eq!(decisions.len(), honest.len(), "every honest party decides");
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "agreement violated"
        );
        decisions[0].clone()
    }

    #[test]
    fn decides_some_proposed_value() {
        for seed in 0..5u64 {
            let mut sim = Simulation::builder(nodes(4, 1, seed), RandomScheduler)
                .seed(100 + seed)
                .build();
            for p in 0..4 {
                sim.input(p, format!("proposal-{p}").into_bytes());
            }
            sim.run_until_quiet(5_000_000);
            let v = check_agreement(&sim, &[0, 1, 2, 3]);
            let s = String::from_utf8(v).unwrap();
            assert!(s.starts_with("proposal-"), "decided {s}");
        }
    }

    #[test]
    fn decides_under_lifo_schedule() {
        let mut sim = Simulation::builder(nodes(4, 1, 7), LifoScheduler)
            .seed(8)
            .build();
        for p in 0..4 {
            sim.input(p, vec![p as u8]);
        }
        sim.run_until_quiet(5_000_000);
        check_agreement(&sim, &[0, 1, 2, 3]);
    }

    #[test]
    fn tolerates_crash() {
        for seed in 0..3u64 {
            let mut sim = Simulation::builder(nodes(4, 1, 30 + seed), RandomScheduler)
                .seed(300 + seed)
                .build();
            sim.corrupt(1, Behavior::Crash);
            for p in [0usize, 2, 3] {
                sim.input(p, format!("p{p}").into_bytes());
            }
            sim.run_until_quiet(5_000_000);
            let v = check_agreement(&sim, &[0, 2, 3]);
            // The crashed party's proposal never got disseminated; the
            // decision must come from a live party.
            assert_ne!(v, b"p1".to_vec());
        }
    }

    #[test]
    fn external_validity_is_enforced() {
        // Predicate: payload must start with "ok". A corrupted party
        // spams an invalid proposal; the decision must satisfy the
        // predicate.
        let predicate: ValidityPredicate = Arc::new(|v: &[u8]| v.starts_with(b"ok"));
        for seed in 0..3u64 {
            let mut sim = Simulation::builder(
                nodes_with_predicate(4, 1, 60 + seed, Arc::clone(&predicate)),
                RandomScheduler,
            )
            .seed(600 + seed)
            .build();
            // Corrupted party 3 re-sends whatever it receives (it cannot
            // forge a valid CBC voucher for an invalid payload anyway,
            // since honest parties only echo-sign what they receive from
            // the designated sender, but the predicate check is the
            // decisive guard).
            sim.corrupt(
                3,
                Behavior::Custom(Box::new(|_from, msg: MvbaMessage, _| {
                    (0..3).map(|p| (p, msg.clone())).collect()
                })),
            );
            for p in 0..3 {
                sim.input(p, format!("ok-{p}").into_bytes());
            }
            sim.run_until_quiet(5_000_000);
            let v = check_agreement(&sim, &[0, 1, 2]);
            assert!(v.starts_with(b"ok"));
        }
    }

    #[test]
    fn seven_parties_two_crashes() {
        let mut sim = Simulation::builder(nodes(7, 2, 70), RandomScheduler)
            .seed(71)
            .build();
        sim.corrupt(5, Behavior::Crash);
        sim.corrupt(6, Behavior::Crash);
        for p in 0..5 {
            sim.input(p, format!("v{p}").into_bytes());
        }
        sim.run_until_quiet(20_000_000);
        check_agreement(&sim, &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn election_buffers_are_bounded() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(9);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let tag = Tag::root("mvba-bound");
        let mut node = Mvba::new(
            tag.clone(),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
            Arc::new(|_| true),
        );
        let mut out = Outbox::new(node.n());
        // A correctly signed coin share for a far-future election is
        // refused: election numbers are attacker-chosen, so only a
        // bounded lookahead is buffered.
        let far = 1_000u64;
        let name = tag.message(&[b"elect", &far.to_be_bytes()]);
        let share = bundles[3].coin_key().share(&name, &mut rng);
        node.on_message(
            3,
            MvbaMessage::ElectCoin {
                election: far,
                share,
            },
            &mut rng,
            &mut out,
        );
        assert_eq!(node.buffered_elect_shares(), 0, "far-future share dropped");
        // A duplicate valid share for a live election counts once.
        let name0 = tag.message(&[b"elect", &0u64.to_be_bytes()]);
        let share0 = bundles[3].coin_key().share(&name0, &mut rng);
        for _ in 0..2 {
            node.on_message(
                3,
                MvbaMessage::ElectCoin {
                    election: 0,
                    share: share0.clone(),
                },
                &mut rng,
                &mut out,
            );
        }
        assert_eq!(node.buffered_elect_shares(), 1, "one share per party");
        // Vote floods for an unstarted election are capped per sender.
        for round in 0..200u64 {
            let cname = tag.message(&[b"flood", &round.to_be_bytes()]);
            let cshare = bundles[3].coin_key().share(&cname, &mut rng);
            node.on_message(
                3,
                MvbaMessage::Vote {
                    election: 1,
                    inner: AbbaMessage::Coin {
                        round: round + 1,
                        share: cshare,
                    },
                },
                &mut rng,
                &mut out,
            );
        }
        assert_eq!(
            node.buffered_votes(),
            super::PENDING_VOTE_CAP,
            "per-sender vote buffer is capped"
        );
        // Out-of-range senders are rejected outright.
        let share0 = bundles[3].coin_key().share(&name0, &mut rng);
        node.on_message(
            17,
            MvbaMessage::ElectCoin {
                election: 0,
                share: share0,
            },
            &mut rng,
            &mut out,
        );
        assert_eq!(node.buffered_elect_shares(), 1);
    }

    #[test]
    #[should_panic(expected = "must be valid")]
    fn invalid_own_proposal_panics() {
        let predicate: ValidityPredicate = Arc::new(|_| false);
        let mut ns = nodes_with_predicate(4, 1, 80, predicate);
        let mut rng = SeededRng::new(1);
        let n = ns[0].mvba.n();
        ns[0]
            .mvba
            .propose(b"x".to_vec(), &mut rng, &mut Outbox::new(n));
    }
}
