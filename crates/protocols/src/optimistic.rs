//! Optimistic atomic broadcast (§6 "Optimistic Protocols"; after
//! Kursawe-Shoup, "Optimistic asynchronous atomic broadcast").
//!
//! The paper's randomized atomic broadcast pays for its unconditional
//! liveness: every batch runs elections and binary agreements. §6
//! suggests the most promising optimization — an **optimistic** protocol
//! that "runs very fast if no corruptions occur and all messages are
//! delivered promptly" but falls back to a slower, safe mode when a
//! problem is detected, with the hard requirement that *safety is never
//! violated*, not even during the fallback.
//!
//! This module implements that design:
//!
//! * **Fast path** (three fixed rounds, no randomness): a per-epoch
//!   sequencer assigns the next sequence number and broadcasts the
//!   payload; replicas exchange *prepare* signature shares, combine a
//!   strong-quorum prepared certificate, exchange *commit* shares, and
//!   deliver on a strong-quorum commit certificate. Strong-quorum
//!   intersection makes equivocation by the sequencer harmless: at most
//!   one digest per slot can ever be prepared in an epoch, and at most
//!   one can ever be committed across epochs (see the locking rule
//!   below).
//! * **Fallback** (randomized, asynchronous): when the optimism timer
//!   fires (the only timeout in the architecture — it gates *progress
//!   switching only*, never safety), replicas exchange signed complaints
//!   and, on a qualified quorum, run one [`Mvba`] instance to agree on a
//!   core set of signed **state reports**. The decided reports determine
//!   the *lock*: if any honest replica may have delivered slot `k`
//!   (equivalently: some report carries a prepared certificate for `k`),
//!   the next epoch must re-propose exactly that digest. This is the
//!   classical prepared-certificate hand-over argument, executed over a
//!   randomized agreement so the epoch change itself needs no timing
//!   assumption.
//!
//! The `optimistic` bench compares events-per-request against the full
//! randomized protocol (big win when the network is calm) and drives the
//! fallback under a corrupted sequencer (safety and liveness retained).

use crate::common::{digest, BatchedShares, Digest, Outbox, Tag, WireKind};
use crate::mvba::{Mvba, MvbaMessage, ValidityPredicate};
use sintra_adversary::party::{PartyId, PartySet};
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::rng::SeededRng;
use sintra_crypto::schnorr::Signature;
use sintra_crypto::tsig::{QuorumRule, SignatureShare, ThresholdSignature};
use sintra_net::protocol::{Context, Effects, Protocol};
use sintra_obs::{Event, EventKind, Layer};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A prepared certificate carried through an epoch change: proof that
/// slot `seq` may have been committed with this digest.
#[derive(Clone, Debug)]
pub struct PreparedEntry {
    /// Epoch the certificate was formed in.
    pub epoch: u64,
    /// The slot.
    pub seq: u64,
    /// The payload digest.
    pub digest: Digest,
    /// Strong-quorum threshold signature over the prepare message.
    pub cert: ThresholdSignature,
    /// The payload itself (so the next sequencer can re-propose it).
    pub payload: Vec<u8>,
}

/// A replica's signed state report for an epoch change.
#[derive(Clone, Debug)]
pub struct StateReport {
    /// Reporting replica.
    pub party: PartyId,
    /// Epoch being abandoned.
    pub epoch: u64,
    /// Slots `0..last` are committed at the reporter.
    pub next_seq: u64,
    /// The reporter's prepared-but-possibly-uncommitted slot, if any.
    pub prepared: Option<PreparedEntry>,
    /// Signature under the reporter's authentication key.
    pub sig: Signature,
}

/// Optimistic-broadcast wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum OptMessage {
    /// Payload dissemination into every queue.
    Push(Vec<u8>),
    /// Sequencer's slot assignment.
    Propose {
        /// Epoch.
        epoch: u64,
        /// Slot.
        seq: u64,
        /// Payload.
        payload: Vec<u8>,
    },
    /// Prepare signature share.
    Prepare {
        /// Epoch.
        epoch: u64,
        /// Slot.
        seq: u64,
        /// Payload digest.
        digest: Digest,
        /// Share over the prepare message.
        share: SignatureShare,
    },
    /// Commit signature share (sent once a prepared certificate is
    /// held).
    Commit {
        /// Epoch.
        epoch: u64,
        /// Slot.
        seq: u64,
        /// Payload digest.
        digest: Digest,
        /// Share over the commit message.
        share: SignatureShare,
    },
    /// Transferable delivery: commit certificate plus payload (catch-up
    /// for laggards).
    Deliver {
        /// Epoch.
        epoch: u64,
        /// Slot.
        seq: u64,
        /// Payload digest.
        digest: Digest,
        /// Strong-quorum commit certificate.
        cert: ThresholdSignature,
        /// The payload.
        payload: Vec<u8>,
    },
    /// Signed complaint against an epoch.
    Complain {
        /// The epoch being complained about.
        epoch: u64,
        /// Share over the complaint message.
        share: SignatureShare,
    },
    /// A signed state report for the epoch change.
    Report {
        /// Epoch being abandoned.
        epoch: u64,
        /// Encoded [`StateReport`].
        report: Vec<u8>,
    },
    /// Randomized agreement traffic for the epoch change.
    Change {
        /// Epoch being abandoned.
        epoch: u64,
        /// MVBA sub-message.
        inner: MvbaMessage,
    },
}

impl WireKind for OptMessage {
    fn kind(&self) -> &'static str {
        match self {
            OptMessage::Push(_) => "push",
            OptMessage::Propose { .. } => "propose",
            OptMessage::Prepare { .. } => "prepare",
            OptMessage::Commit { .. } => "commit",
            OptMessage::Deliver { .. } => "deliver",
            OptMessage::Complain { .. } => "complain",
            OptMessage::Report { .. } => "report",
            OptMessage::Change { .. } => "change",
        }
    }
}

/// Counts one optimistic-path wire message under its own layer and
/// forwards epoch-change MVBA traffic to that layer's breakdown.
pub(crate) fn observe_wire(ctx: &Context, dir: &'static str, m: &OptMessage) {
    ctx.obs.inc2(Layer::Optimistic, dir, m.kind());
    if let OptMessage::Change { inner, .. } = m {
        crate::mvba::observe_wire(ctx, dir, inner);
    }
}

/// One total-order delivery from the optimistic protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptDeliver {
    /// Slot (consecutive from 0).
    pub seq: u64,
    /// Epoch the slot committed in.
    pub epoch: u64,
    /// The payload.
    pub payload: Vec<u8>,
}

#[derive(Debug, Default)]
struct Slot {
    /// First proposal received (payload, digest).
    proposal: Option<(Vec<u8>, Digest)>,
    my_prepare_sent: bool,
    /// Prepare shares per digest (batch-verified at quorum time).
    prepare_shares: HashMap<Digest, BatchedShares<SignatureShare>>,
    prepared: Option<(Digest, ThresholdSignature)>,
    my_commit_sent: bool,
    /// Commit shares per digest (batch-verified at quorum time).
    commit_shares: HashMap<Digest, BatchedShares<SignatureShare>>,
    committed: bool,
}

/// Optimistic atomic broadcast endpoint at one server.
pub struct OptimisticBroadcast {
    tag: Tag,
    me: PartyId,
    n: usize,
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    epoch: u64,
    queue: VecDeque<Vec<u8>>,
    queued_digests: HashSet<Digest>,
    delivered_digests: HashSet<Digest>,
    next_seq: u64,
    slots: HashMap<(u64, u64), Slot>,
    /// Commit-certified slots awaiting in-order emission.
    ready: BTreeMap<u64, (u64, Digest, ThresholdSignature, Vec<u8>)>,
    /// Lock adopted from the last epoch change: the digest slot
    /// `next_seq` must re-propose, if any honest replica may have
    /// delivered it.
    lock: Option<PreparedEntry>,
    // Complaint machinery (shares batch-verified at quorum time).
    complaints: HashMap<u64, BatchedShares<SignatureShare>>,
    my_complaint_sent: HashSet<u64>,
    /// Epochs whose fast path is abandoned.
    changing: HashSet<u64>,
    reports: HashMap<u64, HashMap<PartyId, Vec<u8>>>,
    changes: BTreeMap<u64, Mvba>,
    change_proposed: HashSet<u64>,
    change_done: HashSet<u64>,
    // Optimism timer.
    ticks_since_progress: u64,
    timeout_ticks: u64,
    /// Fast-path deliveries vs fallback epoch changes (observability).
    pub epoch_changes: u64,
}

impl core::fmt::Debug for OptimisticBroadcast {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OptimisticBroadcast")
            .field("me", &self.me)
            .field("epoch", &self.epoch)
            .field("next_seq", &self.next_seq)
            .field("queue", &self.queue.len())
            .finish()
    }
}

impl OptimisticBroadcast {
    /// Number of parties in the group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Creates the endpoint. `timeout_ticks` is the optimism timer (in
    /// [`Protocol::on_tick`] ticks) before a stalled epoch is complained
    /// about; it affects only when the fallback engages, never safety.
    pub fn new(
        tag: Tag,
        public: Arc<PublicParameters>,
        bundle: Arc<ServerKeyBundle>,
        timeout_ticks: u64,
    ) -> Self {
        OptimisticBroadcast {
            tag,
            me: bundle.party(),
            n: public.n(),
            public,
            bundle,
            epoch: 0,
            queue: VecDeque::new(),
            queued_digests: HashSet::new(),
            delivered_digests: HashSet::new(),
            next_seq: 0,
            slots: HashMap::new(),
            ready: BTreeMap::new(),
            lock: None,
            complaints: HashMap::new(),
            my_complaint_sent: HashSet::new(),
            changing: HashSet::new(),
            reports: HashMap::new(),
            changes: BTreeMap::new(),
            change_proposed: HashSet::new(),
            change_done: HashSet::new(),
            ticks_since_progress: 0,
            timeout_ticks,
            epoch_changes: 0,
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of delivered payloads.
    pub fn delivered_count(&self) -> u64 {
        self.next_seq
    }

    fn sequencer(&self, epoch: u64) -> PartyId {
        (epoch % self.n as u64) as PartyId
    }

    fn prepare_msg(&self, epoch: u64, seq: u64, d: &Digest) -> Vec<u8> {
        self.tag
            .message(&[b"prep", &epoch.to_be_bytes(), &seq.to_be_bytes(), d])
    }

    fn commit_msg(&self, epoch: u64, seq: u64, d: &Digest) -> Vec<u8> {
        self.tag
            .message(&[b"commit", &epoch.to_be_bytes(), &seq.to_be_bytes(), d])
    }

    fn complain_msg(&self, epoch: u64) -> Vec<u8> {
        self.tag.message(&[b"complain", &epoch.to_be_bytes()])
    }

    fn report_msg(&self, epoch: u64, content: &[u8]) -> Vec<u8> {
        self.tag
            .message(&[b"report", &epoch.to_be_bytes(), content])
    }

    /// Broadcasts a payload for total ordering.
    pub fn broadcast(
        &mut self,
        payload: Vec<u8>,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        assert!(!payload.is_empty(), "empty payloads are reserved");
        out.broadcast(OptMessage::Push(payload.clone()));
        self.enqueue(payload);
        self.maybe_propose(rng, out);
        Vec::new()
    }

    fn enqueue(&mut self, payload: Vec<u8>) {
        let d = digest(&payload);
        if payload.is_empty()
            || self.delivered_digests.contains(&d)
            || !self.queued_digests.insert(d)
        {
            return;
        }
        self.queue.push_back(payload);
    }

    /// Sequencer work: propose the next slot if idle.
    fn maybe_propose(&mut self, _rng: &mut SeededRng, out: &mut Outbox<OptMessage>) {
        if self.sequencer(self.epoch) != self.me || self.changing.contains(&self.epoch) {
            return;
        }
        let seq = self.next_seq;
        if self.slots.contains_key(&(self.epoch, seq))
            && self.slots[&(self.epoch, seq)].proposal.is_some()
        {
            return; // already proposed / received
        }
        // A lock from the previous epoch takes precedence.
        let payload = if let Some(lock) = &self.lock {
            if lock.seq == seq {
                lock.payload.clone()
            } else if !self.queue.is_empty() {
                self.queue.front().cloned().expect("nonempty")
            } else {
                return;
            }
        } else if !self.queue.is_empty() {
            self.queue.front().cloned().expect("nonempty")
        } else {
            return;
        };
        out.broadcast(OptMessage::Propose {
            epoch: self.epoch,
            seq,
            payload,
        });
    }

    /// Handles a message; returns in-order deliveries.
    pub fn on_message(
        &mut self,
        from: PartyId,
        msg: OptMessage,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        match msg {
            OptMessage::Push(payload) => {
                self.enqueue(payload);
                self.maybe_propose(rng, out);
                Vec::new()
            }
            OptMessage::Propose {
                epoch,
                seq,
                payload,
            } => {
                self.on_propose(from, epoch, seq, payload, rng, out);
                Vec::new()
            }
            OptMessage::Prepare {
                epoch,
                seq,
                digest: d,
                share,
            } => {
                self.on_prepare(from, epoch, seq, d, share, rng, out);
                Vec::new()
            }
            OptMessage::Commit {
                epoch,
                seq,
                digest: d,
                share,
            } => self.on_commit(from, epoch, seq, d, share, rng, out),
            OptMessage::Deliver {
                epoch,
                seq,
                digest: d,
                cert,
                payload,
            } => self.on_deliver(epoch, seq, d, cert, payload, rng, out),
            OptMessage::Complain { epoch, share } => {
                self.on_complain(from, epoch, share, rng, out);
                Vec::new()
            }
            OptMessage::Report { epoch, report } => self.on_report(from, epoch, report, rng, out),
            OptMessage::Change { epoch, inner } => self.on_change(from, epoch, inner, rng, out),
        }
    }

    fn on_propose(
        &mut self,
        from: PartyId,
        epoch: u64,
        seq: u64,
        payload: Vec<u8>,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) {
        if epoch != self.epoch
            || from != self.sequencer(epoch)
            || self.changing.contains(&epoch)
            || seq != self.next_seq
            || payload.is_empty()
        {
            return;
        }
        let d = digest(&payload);
        // Locking rule: if the epoch change told us slot `seq` may have
        // been committed with a specific digest, refuse anything else.
        if let Some(lock) = &self.lock {
            if lock.seq == seq && lock.digest != d {
                return;
            }
        }
        let slot = self.slots.entry((epoch, seq)).or_default();
        if slot.proposal.is_some() {
            return; // first proposal wins; equivocation is ignored
        }
        slot.proposal = Some((payload, d));
        // Fast-path progress: the sequencer is alive and assigning.
        // (At most one reset per slot per epoch, so a corrupted
        // sequencer cannot stall the timer forever.)
        self.ticks_since_progress = 0;
        let slot = self.slots.entry((epoch, seq)).or_default();
        if !slot.my_prepare_sent {
            slot.my_prepare_sent = true;
            let msg = self.prepare_msg(epoch, seq, &d);
            let share = self.bundle.signing_key().sign_share(&msg, rng);
            out.broadcast(OptMessage::Prepare {
                epoch,
                seq,
                digest: d,
                share,
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_prepare(
        &mut self,
        from: PartyId,
        epoch: u64,
        seq: u64,
        d: Digest,
        share: SignatureShare,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) {
        if share.party() != from {
            return;
        }
        let msg = self.prepare_msg(epoch, seq, &d);
        let slot = self.slots.entry((epoch, seq)).or_default();
        if slot.prepared.is_some() {
            return;
        }
        let shares = slot.prepare_shares.entry(d).or_default();
        if !shares.insert(from, share) {
            return; // duplicate or previously culled sender
        }
        // A fresh share is fast-path progress (bounded: one per party
        // per slot, so corrupted parties cannot stall the timer).
        self.ticks_since_progress = 0;
        // Quorum-time batching: shares are only accepted structurally
        // above; once a candidate strong quorum exists they are verified
        // together (one multi-exp) and invalid senders culled before the
        // certificate is combined.
        if !self.public.structure().is_strong(&shares.holders()) {
            return;
        }
        let signing = self.public.signing();
        shares.settle(|batch| signing.verify_shares(&msg, batch, rng));
        let verified: Vec<SignatureShare> = shares.verified().values().cloned().collect();
        if let Ok(cert) = signing.combine_preverified(&verified, QuorumRule::Strong) {
            let slot = self.slots.entry((epoch, seq)).or_default();
            slot.prepared = Some((d, cert));
            self.ticks_since_progress = 0;
            if !slot.my_commit_sent {
                slot.my_commit_sent = true;
                let cmsg = self.commit_msg(epoch, seq, &d);
                let share = self.bundle.signing_key().sign_share(&cmsg, rng);
                out.broadcast(OptMessage::Commit {
                    epoch,
                    seq,
                    digest: d,
                    share,
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_commit(
        &mut self,
        from: PartyId,
        epoch: u64,
        seq: u64,
        d: Digest,
        share: SignatureShare,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        if share.party() != from {
            return Vec::new();
        }
        let msg = self.commit_msg(epoch, seq, &d);
        let slot = self.slots.entry((epoch, seq)).or_default();
        if slot.committed {
            return Vec::new();
        }
        let shares = slot.commit_shares.entry(d).or_default();
        if !shares.insert(from, share) {
            return Vec::new(); // duplicate or previously culled sender
        }
        self.ticks_since_progress = 0;
        if !self.public.structure().is_strong(&shares.holders()) {
            return Vec::new();
        }
        let signing = self.public.signing();
        shares.settle(|batch| signing.verify_shares(&msg, batch, rng));
        let verified: Vec<SignatureShare> = shares.verified().values().cloned().collect();
        if let Ok(cert) = signing.combine_preverified(&verified, QuorumRule::Strong) {
            let payload = self
                .slots
                .get(&(epoch, seq))
                .and_then(|s| s.proposal.clone())
                .filter(|(_, pd)| *pd == d)
                .map(|(p, _)| p);
            if let Some(payload) = payload {
                self.slots.entry((epoch, seq)).or_default().committed = true;
                // Help laggards with a transferable delivery.
                out.broadcast(OptMessage::Deliver {
                    epoch,
                    seq,
                    digest: d,
                    cert: cert.clone(),
                    payload: payload.clone(),
                });
                self.ready.insert(seq, (epoch, d, cert, payload));
                return self.drain_ready(rng, out);
            }
            // Certificate without payload: wait for a Deliver.
        }
        Vec::new()
    }

    #[allow(clippy::too_many_arguments)]
    fn on_deliver(
        &mut self,
        epoch: u64,
        seq: u64,
        d: Digest,
        cert: ThresholdSignature,
        payload: Vec<u8>,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        if digest(&payload) != d || seq < self.next_seq || self.ready.contains_key(&seq) {
            return Vec::new();
        }
        let msg = self.commit_msg(epoch, seq, &d);
        if !self
            .public
            .signing()
            .verify(&msg, &cert, QuorumRule::Strong)
        {
            return Vec::new();
        }
        self.ready.insert(seq, (epoch, d, cert, payload));
        self.drain_ready(rng, out)
    }

    fn drain_ready(
        &mut self,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        let mut delivered = Vec::new();
        while let Some((epoch, d, _cert, payload)) = self.ready.remove(&self.next_seq) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.delivered_digests.insert(d);
            if self.queued_digests.remove(&d) {
                self.queue.retain(|p| digest(p) != d);
            }
            if self.lock.as_ref().is_some_and(|l| l.seq <= seq) {
                self.lock = None;
            }
            self.ticks_since_progress = 0;
            delivered.push(OptDeliver {
                seq,
                epoch,
                payload,
            });
        }
        if !delivered.is_empty() {
            self.maybe_propose(rng, out);
        }
        delivered
    }

    fn on_complain(
        &mut self,
        from: PartyId,
        epoch: u64,
        share: SignatureShare,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) {
        if share.party() != from || epoch < self.epoch {
            return;
        }
        let msg = self.complain_msg(epoch);
        let list = self.complaints.entry(epoch).or_default();
        if !list.insert(from, share) {
            return; // duplicate or previously culled sender
        }
        if !self.public.structure().is_qualified(&list.holders()) || self.changing.contains(&epoch)
        {
            return;
        }
        // Quorum-time batching: the complaint quorum must survive batch
        // verification before the epoch's fast path is abandoned.
        let signing = self.public.signing();
        list.settle(|batch| signing.verify_shares(&msg, batch, rng));
        if self.public.structure().is_qualified(&list.holders()) {
            // Echo our own complaint so everyone reaches the quorum, then
            // abandon the epoch's fast path and report state.
            self.send_complaint(epoch, rng, out);
            self.changing.insert(epoch);
            self.send_report(epoch, rng, out);
        }
    }

    fn send_complaint(&mut self, epoch: u64, rng: &mut SeededRng, out: &mut Outbox<OptMessage>) {
        if !self.my_complaint_sent.insert(epoch) {
            return;
        }
        let msg = self.complain_msg(epoch);
        let share = self.bundle.signing_key().sign_share(&msg, rng);
        out.broadcast(OptMessage::Complain { epoch, share });
    }

    fn send_report(&mut self, epoch: u64, rng: &mut SeededRng, out: &mut Outbox<OptMessage>) {
        // Report the prepared slot at the frontier, if any.
        let prepared = self
            .slots
            .get(&(epoch, self.next_seq))
            .and_then(|slot| {
                let (d, cert) = slot.prepared.clone()?;
                let (payload, pd) = slot.proposal.clone()?;
                if pd != d {
                    return None;
                }
                Some(PreparedEntry {
                    epoch,
                    seq: self.next_seq,
                    digest: d,
                    cert,
                    payload,
                })
            })
            // The adopted lock also counts as prepared state to carry
            // forward (it may be from an older epoch).
            .or_else(|| self.lock.clone());
        let mut report = StateReport {
            party: self.me,
            epoch,
            next_seq: self.next_seq,
            prepared,
            sig: Signature::placeholder(),
        };
        let content = encode_report_content(&report);
        report.sig = self
            .bundle
            .auth_key()
            .sign(&self.report_msg(epoch, &content), rng);
        let encoded = encode_report(&report);
        out.broadcast(OptMessage::Report {
            epoch,
            report: encoded,
        });
    }

    fn on_report(
        &mut self,
        from: PartyId,
        epoch: u64,
        report_bytes: Vec<u8>,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        if epoch < self.epoch || self.change_done.contains(&epoch) {
            return Vec::new();
        }
        let Some(report) = decode_report(&report_bytes) else {
            return Vec::new();
        };
        if report.party != from || report.epoch != epoch {
            return Vec::new();
        }
        if !verify_report(&self.public, &self.tag, &report) {
            return Vec::new();
        }
        self.reports
            .entry(epoch)
            .or_default()
            .insert(from, report_bytes);
        self.try_propose_change(epoch, rng, out)
    }

    /// Once a core set of reports is in (and we ourselves are in
    /// changing state), propose the list to the epoch-change agreement.
    fn try_propose_change(
        &mut self,
        epoch: u64,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        if !self.changing.contains(&epoch)
            || self.change_proposed.contains(&epoch)
            || self.change_done.contains(&epoch)
            || epoch != self.epoch
        {
            return Vec::new();
        }
        let holders: PartySet = self
            .reports
            .get(&epoch)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        if !self.public.structure().is_core(&holders) {
            return Vec::new();
        }
        self.change_proposed.insert(epoch);
        let list = encode_report_list(
            self.reports[&epoch]
                .values()
                .map(|b| b.as_slice())
                .collect::<Vec<_>>()
                .as_slice(),
        );
        let mut sub = Outbox::new(self.n);
        let mvba = self.change_instance(epoch);
        let decision = mvba.propose(list, rng, &mut sub);
        for (to, m) in sub {
            out.send(to, OptMessage::Change { epoch, inner: m });
        }
        if let Some(value) = decision {
            return self.finish_change(epoch, &value, rng, out);
        }
        Vec::new()
    }

    fn change_instance(&mut self, epoch: u64) -> &mut Mvba {
        let tag = self.tag.child("change", epoch);
        let public = Arc::clone(&self.public);
        let bundle = Arc::clone(&self.bundle);
        let predicate = change_validity(&self.tag, epoch, Arc::clone(&self.public));
        self.changes
            .entry(epoch)
            .or_insert_with(|| Mvba::new(tag, public, bundle, predicate))
    }

    fn on_change(
        &mut self,
        from: PartyId,
        epoch: u64,
        inner: MvbaMessage,
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        if self.change_done.contains(&epoch) {
            return Vec::new();
        }
        let mut sub = Outbox::new(self.n);
        let mvba = self.change_instance(epoch);
        let decision = mvba.on_message(from, inner, rng, &mut sub);
        for (to, m) in sub {
            out.send(to, OptMessage::Change { epoch, inner: m });
        }
        if let Some(value) = decision {
            return self.finish_change(epoch, &value, rng, out);
        }
        Vec::new()
    }

    /// Adopts the decided epoch change: compute the lock and move to the
    /// next epoch.
    fn finish_change(
        &mut self,
        epoch: u64,
        decided: &[u8],
        rng: &mut SeededRng,
        out: &mut Outbox<OptMessage>,
    ) -> Vec<OptDeliver> {
        self.change_done.insert(epoch);
        if epoch < self.epoch {
            return Vec::new();
        }
        let reports = decode_report_list(decided).expect("decided value passed validity");
        // The frontier every honest replica can be assumed to reach: the
        // highest reported committed prefix is transferable through
        // Deliver certificates already in flight; the lock protects the
        // first potentially-committed-but-unreported slot.
        let max_next = reports.iter().map(|r| r.next_seq).max().unwrap_or(0);
        // Highest-epoch prepared certificate at or beyond the frontier.
        let lock = reports
            .iter()
            .filter_map(|r| r.prepared.clone())
            .filter(|p| p.seq >= max_next.max(self.next_seq))
            .max_by_key(|p| p.epoch);
        self.lock = lock;
        self.epoch = epoch + 1;
        self.epoch_changes += 1;
        self.ticks_since_progress = 0;
        self.maybe_propose(rng, out);
        Vec::new()
    }

    /// The optimism timer: complain about the current epoch when pending
    /// work makes no progress.
    pub fn on_tick(&mut self, rng: &mut SeededRng, out: &mut Outbox<OptMessage>) {
        let pending = !self.queue.is_empty() || self.lock.is_some();
        if !pending || self.changing.contains(&self.epoch) {
            self.ticks_since_progress = 0;
            return;
        }
        self.ticks_since_progress += 1;
        if self.ticks_since_progress >= self.timeout_ticks {
            self.ticks_since_progress = 0;
            let epoch = self.epoch;
            self.send_complaint(epoch, rng, out);
        }
    }
}

/// External validity for the epoch-change agreement: a core set of
/// correctly signed reports for this epoch, with verifying prepared
/// certificates.
fn change_validity(tag: &Tag, epoch: u64, public: Arc<PublicParameters>) -> ValidityPredicate {
    let tag = tag.clone();
    Arc::new(move |value: &[u8]| {
        let Some(reports) = decode_report_list(value) else {
            return false;
        };
        let mut holders = PartySet::new();
        for r in &reports {
            if r.epoch != epoch || r.party >= public.n() || !holders.insert(r.party) {
                return false;
            }
            if !verify_report(&public, &tag, r) {
                return false;
            }
        }
        public.structure().is_core(&holders)
    })
}

fn verify_report(public: &PublicParameters, tag: &Tag, report: &StateReport) -> bool {
    let content = encode_report_content(report);
    let msg = tag.message(&[b"report", &report.epoch.to_be_bytes(), &content]);
    if !public.auth_key(report.party).verify(&msg, &report.sig) {
        return false;
    }
    if let Some(p) = &report.prepared {
        if digest(&p.payload) != p.digest {
            return false;
        }
        let pmsg = tag.message(&[
            b"prep",
            &p.epoch.to_be_bytes(),
            &p.seq.to_be_bytes(),
            &p.digest,
        ]);
        if !public.signing().verify(&pmsg, &p.cert, QuorumRule::Strong) {
            return false;
        }
    }
    true
}

// --- wire codecs -------------------------------------------------------

fn put(out: &mut Vec<u8>, field: &[u8]) {
    out.extend_from_slice(&(field.len() as u32).to_be_bytes());
    out.extend_from_slice(field);
}

fn take(rest: &mut &[u8], n: usize) -> Option<Vec<u8>> {
    if rest.len() < n {
        return None;
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Some(head.to_vec())
}

fn take_field(rest: &mut &[u8]) -> Option<Vec<u8>> {
    let len = u32::from_be_bytes(take(rest, 4)?.try_into().ok()?) as usize;
    if len > 1 << 24 {
        return None;
    }
    take(rest, len)
}

/// The signed portion of a report (everything except the signature).
fn encode_report_content(r: &StateReport) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(r.party as u32).to_be_bytes());
    out.extend_from_slice(&r.epoch.to_be_bytes());
    out.extend_from_slice(&r.next_seq.to_be_bytes());
    match &r.prepared {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            out.extend_from_slice(&p.epoch.to_be_bytes());
            out.extend_from_slice(&p.seq.to_be_bytes());
            out.extend_from_slice(&p.digest);
            put(&mut out, &p.cert.to_bytes());
            put(&mut out, &p.payload);
        }
    }
    out
}

fn encode_report(r: &StateReport) -> Vec<u8> {
    let mut out = encode_report_content(r);
    out.extend_from_slice(&r.sig.to_bytes());
    out
}

fn decode_report(bytes: &[u8]) -> Option<StateReport> {
    let mut rest = bytes;
    let party = u32::from_be_bytes(take(&mut rest, 4)?.try_into().ok()?) as PartyId;
    let epoch = u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?);
    let next_seq = u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?);
    let has_prepared = take(&mut rest, 1)?[0];
    let prepared = match has_prepared {
        0 => None,
        1 => {
            let pepoch = u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?);
            let pseq = u64::from_be_bytes(take(&mut rest, 8)?.try_into().ok()?);
            let d: Digest = take(&mut rest, 32)?.try_into().ok()?;
            let cert = ThresholdSignature::from_bytes(&take_field(&mut rest)?)?;
            let payload = take_field(&mut rest)?;
            Some(PreparedEntry {
                epoch: pepoch,
                seq: pseq,
                digest: d,
                cert,
                payload,
            })
        }
        _ => return None,
    };
    let sig_bytes: [u8; 64] = take(&mut rest, 64)?.try_into().ok()?;
    if !rest.is_empty() {
        return None;
    }
    Some(StateReport {
        party,
        epoch,
        next_seq,
        prepared,
        sig: Signature::from_bytes(&sig_bytes)?,
    })
}

fn encode_report_list(reports: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(reports.len() as u32).to_be_bytes());
    for r in reports {
        put(&mut out, r);
    }
    out
}

fn decode_report_list(bytes: &[u8]) -> Option<Vec<StateReport>> {
    let mut rest = bytes;
    let count = u32::from_be_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
    if count > 4096 {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let r = take_field(&mut rest)?;
        out.push(decode_report(&r)?);
    }
    if !rest.is_empty() {
        return None;
    }
    Some(out)
}

/// [`Protocol`] adapter for simulator runs.
#[derive(Debug)]
pub struct OptNode {
    opt: OptimisticBroadcast,
    rng: SeededRng,
}

impl OptNode {
    /// Wraps an endpoint with its nonce RNG.
    pub fn new(opt: OptimisticBroadcast, rng: SeededRng) -> Self {
        OptNode { opt, rng }
    }

    /// Read access to the endpoint.
    pub fn endpoint(&self) -> &OptimisticBroadcast {
        &self.opt
    }
}

impl Protocol for OptNode {
    type Message = OptMessage;
    type Input = Vec<u8>;
    type Output = OptDeliver;

    fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<OptMessage, OptDeliver>) {
        let mut out = Outbox::new(self.opt.n());
        for d in self.opt.broadcast(input, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: OptMessage,
        fx: &mut Effects<OptMessage, OptDeliver>,
    ) {
        let mut out = Outbox::new(self.opt.n());
        for d in self.opt.on_message(from, msg, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_tick(&mut self, fx: &mut Effects<OptMessage, OptDeliver>) {
        let mut out = Outbox::new(self.opt.n());
        self.opt.on_tick(&mut self.rng, &mut out);
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: Vec<u8>,
        fx: &mut Effects<OptMessage, OptDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_input(input, fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        record_deliveries(ctx, fx, o0);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: OptMessage,
        fx: &mut Effects<OptMessage, OptDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        observe_wire(ctx, "recv", &msg);
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        record_deliveries(ctx, fx, o0);
    }

    fn on_tick_ctx(&mut self, ctx: &Context, fx: &mut Effects<OptMessage, OptDeliver>) {
        if !ctx.obs.is_enabled() {
            return self.on_tick(fx);
        }
        let s0 = fx.sends().len();
        self.on_tick(fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
    }
}

/// Records fast-path/fallback deliveries appended past `mark`, tagged
/// with the epoch the slot committed in.
fn record_deliveries(ctx: &Context, fx: &Effects<OptMessage, OptDeliver>, mark: usize) {
    for d in &fx.outputs()[mark..] {
        ctx.obs.inc(Layer::Optimistic, "delivered");
        ctx.obs.event(
            Event::new(Layer::Optimistic, EventKind::Deliver, ctx.me)
                .epoch(d.epoch.min(u32::MAX as u64) as u32)
                .value(d.seq)
                .at(ctx.at),
        );
    }
}

/// Builds `n` connected [`OptNode`]s.
pub fn opt_nodes(
    public: PublicParameters,
    bundles: Vec<ServerKeyBundle>,
    timeout_ticks: u64,
    seed: u64,
) -> Vec<OptNode> {
    let public = Arc::new(public);
    bundles
        .into_iter()
        .map(|b| {
            let rng = SeededRng::new(seed ^ (b.party() as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
            OptNode::new(
                OptimisticBroadcast::new(
                    Tag::root("opt"),
                    Arc::clone(&public),
                    Arc::new(b),
                    timeout_ticks,
                ),
                rng,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;
    use sintra_net::sim::{Behavior, RandomScheduler, Simulation};

    fn nodes(n: usize, t: usize, timeout: u64, seed: u64) -> Vec<OptNode> {
        let ts = TrustStructure::threshold(n, t).unwrap();
        let mut rng = SeededRng::new(seed);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        opt_nodes(public, bundles, timeout, seed)
    }

    fn payloads(
        sim: &Simulation<OptNode, impl sintra_net::sim::Scheduler<OptMessage>>,
        p: usize,
    ) -> Vec<Vec<u8>> {
        sim.outputs(p).iter().map(|d| d.payload.clone()).collect()
    }

    #[test]
    fn fast_path_delivers_in_order() {
        let mut sim = Simulation::builder(nodes(4, 1, 50, 1), RandomScheduler)
            .seed(2)
            .build();
        sim.enable_ticks(4);
        sim.input(1, b"m1".to_vec());
        sim.input(2, b"m2".to_vec());
        sim.input(3, b"m3".to_vec());
        sim.run_until_quiet(1_000_000);
        let reference = payloads(&sim, 0);
        assert_eq!(reference.len(), 3, "all ordered on the fast path");
        for p in 1..4 {
            assert_eq!(payloads(&sim, p), reference, "party {p}");
        }
        // No epoch changes were needed.
        for p in 0..4 {
            assert_eq!(sim.node(p).unwrap().endpoint().epoch(), 0);
        }
    }

    #[test]
    fn fast_path_is_much_cheaper_than_full_abc() {
        // The ablation claim: same request, far fewer network events.
        let mut sim = Simulation::builder(nodes(4, 1, 50, 3), RandomScheduler)
            .seed(4)
            .build();
        sim.enable_ticks(4);
        sim.input(0, b"cheap".to_vec());
        sim.run_until_quiet(1_000_000);
        // Count actual message deliveries (idle clock rounds at the end
        // of the run are not network traffic).
        let opt_events = sim.stats().delivered + sim.stats().local_deliveries;
        assert_eq!(payloads(&sim, 2).len(), 1);
        // Full randomized ABC for one request measured ~159 events at
        // n=4 (see E6); the fast path should be several times cheaper.
        assert!(
            opt_events < 80,
            "fast path took {opt_events} events; expected well under full ABC"
        );
    }

    #[test]
    fn crashed_sequencer_triggers_fallback_and_recovers() {
        // Epoch 0's sequencer (party 0) is crashed: the optimism timer
        // fires, replicas complain, the randomized epoch change runs,
        // and epoch 1's sequencer (party 1) orders the queue.
        let mut sim = Simulation::builder(nodes(4, 1, 10, 5), RandomScheduler)
            .seed(6)
            .build();
        sim.enable_ticks(2);
        sim.corrupt(0, Behavior::Crash);
        sim.input(1, b"survives".to_vec());
        sim.run_until_quiet(50_000_000);
        let reference = payloads(&sim, 1);
        assert_eq!(
            reference,
            vec![b"survives".to_vec()],
            "delivered after fallback"
        );
        for p in 2..4 {
            assert_eq!(payloads(&sim, p), reference, "party {p}");
        }
        for p in 1..4 {
            let ep = sim.node(p).unwrap().endpoint();
            assert!(ep.epoch() >= 1, "party {p} moved past the dead epoch");
            assert!(ep.epoch_changes >= 1);
        }
    }

    #[test]
    fn equivocating_sequencer_cannot_split_order() {
        // Party 0 (sequencer) equivocates: different payloads to
        // different replicas for slot 0. At most one digest can gather a
        // strong prepare quorum, so honest replicas never deliver
        // different payloads at the same slot; the timer eventually
        // rotates the sequencer out and the queue drains.
        let mut sim = Simulation::builder(nodes(4, 1, 10, 7), RandomScheduler)
            .seed(8)
            .build();
        sim.enable_ticks(2);
        let mut fired = false;
        sim.corrupt(
            0,
            Behavior::Custom(Box::new(move |_from, msg: OptMessage, _| {
                if let OptMessage::Push(_) = msg {
                    if !fired {
                        fired = true;
                        return vec![
                            (
                                1,
                                OptMessage::Propose {
                                    epoch: 0,
                                    seq: 0,
                                    payload: b"fork-A".to_vec(),
                                },
                            ),
                            (
                                2,
                                OptMessage::Propose {
                                    epoch: 0,
                                    seq: 0,
                                    payload: b"fork-A".to_vec(),
                                },
                            ),
                            (
                                3,
                                OptMessage::Propose {
                                    epoch: 0,
                                    seq: 0,
                                    payload: b"fork-B".to_vec(),
                                },
                            ),
                        ];
                    }
                }
                vec![]
            })),
        );
        sim.input(1, b"client-request".to_vec());
        sim.run_until_quiet(50_000_000);
        let reference = payloads(&sim, 1);
        for p in 2..4 {
            assert_eq!(payloads(&sim, p), reference, "party {p} agrees");
        }
        // The client request must eventually be ordered (liveness via
        // fallback); the forks may or may not appear, but never split.
        assert!(reference.contains(&b"client-request".to_vec()));
    }

    #[test]
    fn multiple_requests_across_epochs() {
        // Crash the first sequencer mid-stream; later requests are
        // ordered by the next epoch with the prefix preserved.
        let mut sim = Simulation::builder(nodes(4, 1, 10, 9), RandomScheduler)
            .seed(10)
            .build();
        sim.enable_ticks(2);
        sim.input(1, b"r1".to_vec());
        sim.input(2, b"r2".to_vec());
        // Let epoch 0 order some of it, then kill the sequencer.
        sim.run_until(5_000, |s| !s.outputs(1).is_empty());
        sim.corrupt(0, Behavior::Crash);
        sim.input(3, b"r3".to_vec());
        sim.run_until_quiet(50_000_000);
        let reference = payloads(&sim, 1);
        assert_eq!(reference.len(), 3, "all three ordered: {reference:?}");
        for p in 2..4 {
            assert_eq!(payloads(&sim, p), reference, "party {p}");
        }
        // Sequence numbers are gapless.
        let seqs: Vec<u64> = sim.outputs(1).iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn laggard_catches_up_via_deliver_certificates() {
        // Starve one replica completely during the fast path; the
        // transferable Deliver certificates bring it to the same state
        // once its messages finally arrive.
        use sintra_net::sim::TargetedDelayScheduler;
        let mut sim = Simulation::builder(
            nodes(4, 1, 60, 13),
            TargetedDelayScheduler {
                victims: sintra_adversary::party::PartySet::singleton(3),
            },
        )
        .seed(14)
        .build();
        sim.enable_ticks(4);
        sim.input(1, b"fast-1".to_vec());
        sim.input(2, b"fast-2".to_vec());
        sim.run_until_quiet(5_000_000);
        let reference = payloads(&sim, 0);
        assert_eq!(reference.len(), 2);
        assert_eq!(payloads(&sim, 3), reference, "starved replica caught up");
    }

    #[test]
    fn report_codec_roundtrip() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(11);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        // Build a genuine prepared certificate.
        let tag = Tag::root("opt");
        let d = digest(b"payload");
        let pmsg = tag.message(&[b"prep", &0u64.to_be_bytes(), &0u64.to_be_bytes(), &d]);
        let shares: Vec<_> = bundles[..3]
            .iter()
            .map(|b| b.signing_key().sign_share(&pmsg, &mut rng))
            .collect();
        let cert = public
            .signing()
            .combine(&pmsg, &shares, QuorumRule::Strong)
            .unwrap();
        let mut report = StateReport {
            party: 2,
            epoch: 0,
            next_seq: 0,
            prepared: Some(PreparedEntry {
                epoch: 0,
                seq: 0,
                digest: d,
                cert,
                payload: b"payload".to_vec(),
            }),
            sig: Signature::placeholder(),
        };
        let content = encode_report_content(&report);
        report.sig = bundles[2].auth_key().sign(
            &tag.message(&[b"report", &0u64.to_be_bytes(), &content]),
            &mut rng,
        );
        let encoded = encode_report(&report);
        let decoded = decode_report(&encoded).unwrap();
        assert_eq!(decoded.party, 2);
        assert!(verify_report(&public, &tag, &decoded));
        // Tampering is caught.
        let mut bad = encoded.clone();
        bad[5] ^= 1;
        assert!(decode_report(&bad).is_none_or(|r| !verify_report(&public, &tag, &r)));
        // List roundtrip.
        let list = encode_report_list(&[&encoded]);
        assert_eq!(decode_report_list(&list).unwrap().len(), 1);
        assert!(decode_report_list(&list[..list.len() - 1]).is_none());
    }
}
