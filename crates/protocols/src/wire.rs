//! Wire-size accounting for protocol messages.
//!
//! The experiments report not only message *counts* but *bytes* — the
//! quantity that matters on a real network and the one in which this
//! repository's aggregate-signature substitution differs from the
//! paper's constant-size RSA threshold signatures (see DESIGN.md §3).
//! Every message type implements [`WireSize`], which reports exactly
//! the length of the message's canonical binary encoding (see
//! [`crate::codec`]): length-prefixed fields, 32-byte group elements
//! and digests, 64-byte signatures, 96-byte commitment-form proofs.
//! The codec round-trip tests assert `wire_size == encode().len()` for
//! every message type, so these figures are checked against reality
//! rather than estimated.

use crate::abba::{AbbaMessage, MainVoteJust, PreVote, PreVoteJust};
use crate::abc::AbcMessage;
use crate::cbc::{CbcMessage, Voucher};
use crate::common::Digest;
use crate::fdabc::FdMessage;
use crate::mvba::MvbaMessage;
use crate::optimistic::OptMessage;
use crate::rbc::RbcMessage;
use crate::scabc::ScabcMessage;

/// Estimated serialized size of a protocol message, in bytes.
pub trait WireSize {
    /// Returns the byte-size estimate.
    fn wire_size(&self) -> usize;
}

const TAG: usize = 1; // enum discriminant
const SEQ: usize = 8; // round/epoch/sequence numbers
const DIGEST: usize = core::mem::size_of::<Digest>();

impl WireSize for RbcMessage {
    fn wire_size(&self) -> usize {
        match self {
            RbcMessage::Send(p) | RbcMessage::Echo(p) | RbcMessage::Ready(p) => TAG + 4 + p.len(),
        }
    }
}

impl WireSize for Voucher {
    fn wire_size(&self) -> usize {
        4 + self.payload.len() + self.signature.size_bytes()
    }
}

impl WireSize for CbcMessage {
    fn wire_size(&self) -> usize {
        match self {
            CbcMessage::Send(p) => TAG + 4 + p.len(),
            CbcMessage::Echo(share) => TAG + share.size_bytes(),
            CbcMessage::Final(p, sig) => TAG + 4 + p.len() + sig.size_bytes(),
        }
    }
}

impl<E: WireSize> WireSize for PreVote<E> {
    fn wire_size(&self) -> usize {
        let just = match &self.just {
            PreVoteJust::FirstRound(None) => TAG,
            PreVoteJust::FirstRound(Some(e)) => TAG + e.wire_size(),
            PreVoteJust::Hard(sig) | PreVoteJust::Coin(sig) => TAG + sig.size_bytes(),
        };
        SEQ + 1 + just + self.share.size_bytes()
    }
}

impl<E: WireSize> WireSize for AbbaMessage<E> {
    fn wire_size(&self) -> usize {
        match self {
            AbbaMessage::PreVote(pv) => TAG + pv.wire_size(),
            AbbaMessage::MainVote(mv) => {
                let just = match &mv.just {
                    MainVoteJust::Value(sig) => TAG + sig.size_bytes(),
                    MainVoteJust::Abstain(a, b) => TAG + a.wire_size() + b.wire_size(),
                };
                TAG + SEQ + 1 + just + mv.share.size_bytes()
            }
            AbbaMessage::Coin { share, .. } => TAG + SEQ + share.size_bytes(),
            AbbaMessage::Decided { proof, .. } => TAG + SEQ + 1 + proof.size_bytes(),
        }
    }
}

/// `()` carries no evidence bytes.
impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for MvbaMessage {
    fn wire_size(&self) -> usize {
        match self {
            MvbaMessage::Proposal { inner, .. } => TAG + 4 + inner.wire_size(),
            MvbaMessage::ElectCoin { share, .. } => TAG + SEQ + share.size_bytes(),
            MvbaMessage::Vote { inner, .. } => TAG + SEQ + inner.wire_size(),
        }
    }
}

impl WireSize for AbcMessage {
    fn wire_size(&self) -> usize {
        match self {
            AbcMessage::Push(p) => TAG + 4 + p.len(),
            AbcMessage::Queued { batch, sig, .. } => {
                TAG + SEQ + 4 + batch.iter().map(|p| 4 + p.len()).sum::<usize>() + sig.size_bytes()
            }
            AbcMessage::Mvba { inner, .. } => TAG + SEQ + inner.wire_size(),
        }
    }
}

impl WireSize for ScabcMessage {
    fn wire_size(&self) -> usize {
        match self {
            ScabcMessage::Abc(inner) => TAG + inner.wire_size(),
            ScabcMessage::Share { share, .. } => TAG + DIGEST + share.size_bytes(),
        }
    }
}

impl WireSize for OptMessage {
    fn wire_size(&self) -> usize {
        match self {
            OptMessage::Push(p) => TAG + 4 + p.len(),
            OptMessage::Propose { payload, .. } => TAG + 2 * SEQ + 4 + payload.len(),
            OptMessage::Prepare { share, .. } | OptMessage::Commit { share, .. } => {
                TAG + 2 * SEQ + DIGEST + share.size_bytes()
            }
            OptMessage::Deliver { cert, payload, .. } => {
                TAG + 2 * SEQ + DIGEST + cert.size_bytes() + 4 + payload.len()
            }
            OptMessage::Complain { share, .. } => TAG + SEQ + share.size_bytes(),
            OptMessage::Report { report, .. } => TAG + SEQ + 4 + report.len(),
            OptMessage::Change { inner, .. } => TAG + SEQ + inner.wire_size(),
        }
    }
}

impl WireSize for FdMessage {
    fn wire_size(&self) -> usize {
        match self {
            FdMessage::Push(p) => TAG + 4 + p.len(),
            FdMessage::Order { payload, .. } => TAG + 2 * SEQ + 4 + payload.len(),
            FdMessage::Ack { .. } => TAG + 2 * SEQ + DIGEST,
            FdMessage::Suspect { .. } => TAG + SEQ,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbc_sizes_track_payload() {
        let small = RbcMessage::Send(vec![0; 10]);
        let big = RbcMessage::Echo(vec![0; 1000]);
        assert_eq!(small.wire_size(), 15);
        assert_eq!(big.wire_size(), 1005);
    }

    #[test]
    fn fd_sizes() {
        assert_eq!(FdMessage::Suspect { view: 3 }.wire_size(), 9);
        assert_eq!(
            FdMessage::Ack {
                view: 0,
                seq: 0,
                digest: [0; 32]
            }
            .wire_size(),
            49
        );
    }

    #[test]
    fn sizes_are_positive_for_representative_messages() {
        let msgs: Vec<Box<dyn WireSize>> = vec![
            Box::new(RbcMessage::Ready(vec![1, 2, 3])),
            Box::new(CbcMessage::Send(vec![0; 64])),
            Box::new(AbcMessage::Push(vec![0; 8])),
            Box::new(FdMessage::Push(vec![0; 8])),
        ];
        for m in msgs {
            assert!(m.wire_size() > 0);
        }
    }
}
