//! Atomic broadcast (total-order broadcast) over multi-valued Byzantine
//! agreement — the protocol of §3, following the Chandra-Toueg round
//! shape in the Byzantine model.
//!
//! All honest servers deliver the same messages in the same order, which
//! is what makes state machine replication possible. The protocol runs
//! in global rounds:
//!
//! 1. every party holds a queue of payloads to order (its own inputs
//!    plus payloads pushed by clients/peers — a broadcast sends the
//!    payload to everyone, so it enters every honest queue, which is
//!    what the paper's fairness condition rests on);
//! 2. at round `r` each party signs its queue head (or an explicit
//!    empty filler) and sends it to all;
//! 3. once properly signed proposals from a core quorum arrive, the
//!    party proposes that *list* to the round's [`Mvba`] instance; the
//!    **external validity** predicate accepts only lists of correctly
//!    signed round-`r` proposals from a core set of parties — so at
//!    least a qualified (honest-containing) set of the entries comes
//!    from honest parties;
//! 4. the decided list's payloads are delivered in a deterministic
//!    order, duplicates (already delivered in earlier rounds) skipped,
//!    and the next round begins.

use crate::common::{digest, Digest, Outbox, Tag, WireKind};
use crate::mvba::{Mvba, MvbaMessage, ValidityPredicate};
use crate::pool::VerifyPool;
use sintra_adversary::party::{PartyId, PartySet};
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::rng::SeededRng;
use sintra_crypto::schnorr::Signature;
use sintra_net::codec::MAX_PAYLOAD;
use sintra_net::protocol::{Context, Effects, Protocol};
use sintra_obs::{Event, EventKind, Layer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Atomic-broadcast wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum AbcMessage {
    /// Payload dissemination: enters every honest party's queue (the
    /// fairness mechanism).
    Push(Vec<u8>),
    /// A party's signed round proposal: a bounded prefix of its queue
    /// (an empty batch = filler, nothing to order).
    Queued {
        /// Round number.
        round: u64,
        /// Proposed payloads, in queue order. Bounded by
        /// [`QUEUED_BATCH_DECODE_CAP`] entries and [`MAX_PAYLOAD`]
        /// total bytes; sub-payloads must be non-empty.
        batch: Vec<Vec<u8>>,
        /// Signature under the party's authentication key over
        /// `(tag, round, encode_batch(batch))`.
        sig: Signature,
    },
    /// Round-`r` multi-valued agreement traffic.
    Mvba {
        /// Round number.
        round: u64,
        /// The MVBA sub-message.
        inner: MvbaMessage,
    },
}

impl WireKind for AbcMessage {
    fn kind(&self) -> &'static str {
        match self {
            AbcMessage::Push(_) => "push",
            AbcMessage::Queued { .. } => "queued",
            AbcMessage::Mvba { .. } => "mvba",
        }
    }
}

/// Counts one ABC wire message under its own layer's per-kind counters
/// and forwards embedded MVBA traffic to that layer's breakdown.
pub(crate) fn observe_wire(ctx: &Context, dir: &'static str, m: &AbcMessage) {
    ctx.obs.inc2(Layer::Abc, dir, m.kind());
    if let AbcMessage::Mvba { inner, .. } = m {
        crate::mvba::observe_wire(ctx, dir, inner);
    }
}

/// One totally-ordered delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbcDeliver {
    /// Position in the total order (0-based, consecutive).
    pub seq: u64,
    /// The agreement round whose decided list carried the payload.
    /// Deterministic across honest parties, which is what lets the RSM
    /// layer bind checkpoints to a round number every replica agrees
    /// on.
    pub round: u64,
    /// The party whose round proposal carried the payload.
    pub origin: PartyId,
    /// The delivered payload.
    pub payload: Vec<u8>,
}

/// How far past the current round proposals and MVBA traffic are
/// accepted. Round numbers are attacker-chosen (a party can sign a
/// `Queued` proposal for any round with its own key), so without a
/// window a Byzantine party could open unboundedly many round entries
/// and instantiate unboundedly many MVBA machines. Honest parties only
/// run ahead by completed rounds, which requires core-quorum traffic.
const ROUND_LOOKAHEAD: u64 = 16;

/// How far *behind* the current round MVBA traffic is still served.
/// A party that advanced past round `r` keeps answering round-`r`
/// MVBA messages (in practice: CBC echoes for a starved party's list
/// proposal) so that a laggard can finish old rounds from transcripts
/// alone even after everyone else moved on. The window bounds how many
/// stale MVBA machines can be kept alive or re-instantiated.
const ROUND_RETROSPECT: u64 = 16;

/// Default per-sender budget of buffered pushed payloads (see
/// [`AtomicBroadcast::set_push_bound`]).
const DEFAULT_PUSH_BOUND: usize = 1024;

/// Default garbage-collection window (see
/// [`AtomicBroadcast::set_gc_window`]): the hard cap on how many
/// completed rounds of working state (decided lists, proposal sets,
/// MVBA machines) are retained for parties that have not acknowledged
/// them. A party that falls further behind than this must catch up via
/// the RSM checkpoint/state-transfer path instead of from round
/// transcripts.
const DEFAULT_GC_WINDOW: u64 = 64;

/// How many completed rounds of delivered-payload digests are kept for
/// duplicate suppression. This is a **protocol constant**, not a tuning
/// knob: whether round `r`'s decided list re-delivers a payload depends
/// on whether its digest is still inside the window, so every honest
/// party must prune by the same round-relative rule or total order
/// diverges. Within the window a payload is delivered at most once; a
/// copy re-proposed more than `DEDUP_ROUNDS` rounds after delivery is
/// re-delivered — identically at every honest party.
pub const DEDUP_ROUNDS: u64 = 64;

/// Hard cap on proposal-batch entry count, enforced by the wire codec,
/// by [`batch_within_bounds`], and by external validity (mirroring the
/// RSM layer's `DEDUP_DECODE_CAP` pattern: every decode path that a
/// Byzantine peer can reach is bounded). [`set_batch_cap`]
/// (AtomicBroadcast::set_batch_cap) is clamped to it, so honest batches
/// always pass.
pub const QUEUED_BATCH_DECODE_CAP: usize = 1024;

/// Default number of payloads proposed per round (see
/// [`AtomicBroadcast::set_batch_cap`]).
const DEFAULT_BATCH_CAP: usize = 16;

/// Default byte budget per proposed batch (see
/// [`AtomicBroadcast::set_batch_bytes`]).
const DEFAULT_BATCH_BYTES: usize = 64 << 10;

/// Hard cap on rounds concurrently in flight. This is a **protocol
/// constant**, not a tuning knob: a receiver interprets a `Queued`
/// proposal for round `r` as acknowledging delivery only through
/// `r - (MAX_PIPELINE_DEPTH - 1)`, so no honest configuration may run
/// further ahead of its deliveries than this. It must stay at or below
/// [`ROUND_LOOKAHEAD`] or a party's own pipelined proposals would fall
/// outside its peers' acceptance window.
pub const MAX_PIPELINE_DEPTH: u64 = 8;
const _: () = assert!(MAX_PIPELINE_DEPTH <= ROUND_LOOKAHEAD);

/// Default pipeline depth (see
/// [`AtomicBroadcast::set_pipeline_depth`]).
const DEFAULT_PIPELINE_DEPTH: u64 = 2;

/// How much less a round-`r` proposal proves than it used to: with
/// pipelining, an honest sender may propose up to
/// [`MAX_PIPELINE_DEPTH`] rounds past its delivery frontier.
const PIPELINE_ACK_SLACK: u64 = MAX_PIPELINE_DEPTH - 1;

/// The ABC hot-path tuning knobs as one value: what used to be three
/// scattered setters (`set_batch_cap`, `set_batch_bytes`,
/// `set_pipeline_depth`) travels as a single struct so configuration
/// reaches every replica of every group identically. Out-of-range
/// values are clamped by [`AtomicBroadcast::tune`], never rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbcTuning {
    /// Max payloads proposed per round
    /// (`1..=`[`QUEUED_BATCH_DECODE_CAP`]).
    pub batch_cap: usize,
    /// Byte budget per proposed batch (the first payload is exempt so
    /// an oversized payload still makes progress).
    pub batch_bytes: usize,
    /// Rounds allowed concurrently in flight
    /// (`1..=`[`MAX_PIPELINE_DEPTH`]).
    pub pipeline_depth: u64,
}

impl Default for AbcTuning {
    /// The defaults a freshly built endpoint already runs with.
    fn default() -> AbcTuning {
        AbcTuning {
            batch_cap: DEFAULT_BATCH_CAP,
            batch_bytes: DEFAULT_BATCH_BYTES,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
        }
    }
}

impl AbcTuning {
    /// The seed's sequential, one-payload-per-round configuration —
    /// the baseline the throughput benchmarks compare against.
    pub fn unbatched() -> AbcTuning {
        AbcTuning {
            batch_cap: 1,
            batch_bytes: DEFAULT_BATCH_BYTES,
            pipeline_depth: 1,
        }
    }
}

/// Atomic broadcast endpoint at one server.
pub struct AtomicBroadcast {
    tag: Tag,
    me: PartyId,
    n: usize,
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    round: u64,
    queue: VecDeque<Vec<u8>>,
    queued_digests: HashSet<Digest>,
    /// Delivered-payload digest → delivery round, for duplicate
    /// suppression. Windowed: entries older than [`DEDUP_ROUNDS`]
    /// before the delivering round are pruned (deterministically, so
    /// every honest party skips or re-delivers identically).
    delivered: HashMap<Digest, u64>,
    /// Delivery-round index over `delivered`, in delivery order within
    /// each round (drives pruning and the canonical window encoding).
    delivered_rounds: BTreeMap<u64, Vec<Digest>>,
    /// Per-sender count of still-queued pushed payloads; a sender whose
    /// debt reaches `push_bound` has further pushes dropped, so a
    /// Byzantine flooder cannot grow the queue without bound.
    push_debt: Vec<usize>,
    /// Which sender is charged for a queued pushed payload (released on
    /// delivery).
    charged: HashMap<Digest, PartyId>,
    push_bound: usize,
    /// Verified round proposals per round and party.
    proposals: BTreeMap<u64, HashMap<PartyId, (Vec<u8>, Signature)>>,
    sent_queued: BTreeSet<u64>,
    mvba_proposed: BTreeSet<u64>,
    mvbas: BTreeMap<u64, Mvba>,
    decided_lists: BTreeMap<u64, Vec<u8>>,
    next_seq: u64,
    /// Total rounds completed (observability for benchmarks).
    rounds_completed: u64,
    /// Highest round each peer has provably reached: a correctly signed
    /// `Queued` proposal for round `r` acknowledges delivery of every
    /// round below `r`. Our own entry tracks `self.round`.
    ack_round: Vec<u64>,
    /// Hard retention cap for completed-round state (see
    /// [`set_gc_window`](Self::set_gc_window)).
    gc_window: u64,
    /// Max payloads proposed per round (clamped to
    /// [`QUEUED_BATCH_DECODE_CAP`]).
    batch_cap: usize,
    /// Byte budget per proposed batch. Soft: the first payload of a
    /// batch is exempt, so an oversized payload still makes progress.
    batch_bytes: usize,
    /// Rounds allowed concurrently in flight (1 = the seed's strictly
    /// sequential rounds; clamped to [`MAX_PIPELINE_DEPTH`]).
    pipeline_depth: u64,
    /// Per open round: how many leading queue entries that round's
    /// proposal still covers. Batches are queue prefixes, so a batch of
    /// length `L` covers positions `0..L`; a delivery that removes a
    /// covered entry shrinks every cover past it, and a round falling
    /// behind the delivery frontier drops out. [`select_batch`]
    /// (Self::select_batch) extends its entry cap by the widest live
    /// cover so content already in flight does not crowd out new
    /// payloads. Bounded by [`MAX_PIPELINE_DEPTH`] entries.
    proposed_cover: BTreeMap<u64, usize>,
    /// Entry count of the most recently proposed batch (gauge).
    last_batch_size: u64,
    /// Off-thread share-verification pool, handed down to each
    /// per-round MVBA instance. `None` verifies inline (seed behavior).
    verify_pool: Option<Arc<VerifyPool>>,
}

impl core::fmt::Debug for AtomicBroadcast {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AtomicBroadcast")
            .field("me", &self.me)
            .field("round", &self.round)
            .field("queue_len", &self.queue.len())
            .field("delivered", &self.next_seq)
            .finish()
    }
}

impl AtomicBroadcast {
    /// Number of parties in the group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Creates the endpoint.
    pub fn new(tag: Tag, public: Arc<PublicParameters>, bundle: Arc<ServerKeyBundle>) -> Self {
        let n = public.n();
        AtomicBroadcast {
            tag,
            me: bundle.party(),
            n,
            public,
            bundle,
            round: 0,
            queue: VecDeque::new(),
            queued_digests: HashSet::new(),
            delivered: HashMap::new(),
            delivered_rounds: BTreeMap::new(),
            push_debt: vec![0; n],
            charged: HashMap::new(),
            push_bound: DEFAULT_PUSH_BOUND,
            proposals: BTreeMap::new(),
            sent_queued: BTreeSet::new(),
            mvba_proposed: BTreeSet::new(),
            mvbas: BTreeMap::new(),
            decided_lists: BTreeMap::new(),
            next_seq: 0,
            rounds_completed: 0,
            ack_round: vec![0; n],
            gc_window: DEFAULT_GC_WINDOW,
            batch_cap: DEFAULT_BATCH_CAP,
            batch_bytes: DEFAULT_BATCH_BYTES,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            proposed_cover: BTreeMap::new(),
            last_batch_size: 0,
            verify_pool: None,
        }
    }

    /// Number of payloads delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.next_seq
    }

    /// Number of agreement rounds completed.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Current round index.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queue length (payloads awaiting ordering at this party).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of still-queued payloads pushed by `party` (observability
    /// for the flooding-bound tests).
    pub fn push_debt(&self, party: PartyId) -> usize {
        self.push_debt.get(party).copied().unwrap_or(0)
    }

    /// Number of rounds with live working state — proposal sets or MVBA
    /// machines (observability for the flooding-bound tests). Bounded by
    /// [`ROUND_LOOKAHEAD`] plus the current round.
    pub fn tracked_rounds(&self) -> usize {
        self.proposals.len().max(self.mvbas.len())
    }

    /// Number of completed rounds whose decided lists are still
    /// retained (the quantity the GC watermark bounds).
    pub fn retained_rounds(&self) -> usize {
        self.decided_lists.len()
    }

    /// Approximate bytes of retained completed-round state: decided
    /// list encodings, buffered round proposals, and the delivered-
    /// payload dedup window.
    pub fn retained_bytes(&self) -> usize {
        let lists: usize = self.decided_lists.values().map(Vec::len).sum();
        let props: usize = self
            .proposals
            .values()
            .flat_map(|m| m.values())
            .map(|(p, _)| p.len() + 64)
            .sum();
        // digest + round key in both the map and the round index
        let dedup = self.delivered.len() * 80;
        lists + props + dedup
    }

    /// The delivered-payload dedup window as `(delivery round, digest)`
    /// pairs in canonical (round, delivery) order. Deterministic across
    /// honest parties at the same round boundary, so the RSM layer can
    /// commit it into checkpoint certificates and a rejoining replica
    /// can restore dedup state it can trust.
    pub fn dedup_window(&self) -> Vec<(u64, Digest)> {
        self.delivered_rounds
            .iter()
            .flat_map(|(r, ds)| ds.iter().map(move |d| (*r, *d)))
            .collect()
    }

    /// The stable low-watermark: every round below it has been pruned.
    /// It trails the slowest acknowledged party, but never lags the
    /// current round by more than the GC window — a silent (crashed or
    /// Byzantine) party cannot hold memory hostage; it rejoins via
    /// state transfer instead.
    pub fn gc_watermark(&self) -> u64 {
        let mut low = self.round;
        for (p, acked) in self.ack_round.iter().enumerate() {
            if p != self.me {
                low = low.min(*acked);
            }
        }
        low.max(self.round.saturating_sub(self.gc_window))
    }

    /// The GC retention cap, in rounds.
    pub fn gc_window(&self) -> u64 {
        self.gc_window
    }

    /// Sets the hard cap on retained completed rounds. State for rounds
    /// older than `window` below the current round is reclaimed even if
    /// some party never acknowledged them.
    pub fn set_gc_window(&mut self, window: u64) {
        self.gc_window = window.max(1);
    }

    /// The per-sender budget of buffered pushed payloads.
    pub fn push_bound(&self) -> usize {
        self.push_bound
    }

    /// Sets the per-sender budget of buffered pushed payloads. Once a
    /// sender has `bound` payloads queued, further pushes from it are
    /// dropped until deliveries release the debt.
    pub fn set_push_bound(&mut self, bound: usize) {
        self.push_bound = bound.max(1);
    }

    /// Max payloads proposed per round.
    pub fn batch_cap(&self) -> usize {
        self.batch_cap
    }

    /// Sets the per-round proposal batch size (clamped to
    /// `1..=`[`QUEUED_BATCH_DECODE_CAP`]). `1` restores the seed's
    /// one-payload-per-round behavior.
    #[deprecated(note = "use AtomicBroadcast::tune with an AbcTuning")]
    pub fn set_batch_cap(&mut self, cap: usize) {
        self.batch_cap = cap.clamp(1, QUEUED_BATCH_DECODE_CAP);
    }

    /// Byte budget per proposed batch.
    pub fn batch_bytes(&self) -> usize {
        self.batch_bytes
    }

    /// Sets the byte budget per proposed batch. The first payload of a
    /// batch is exempt so an oversized payload still makes progress.
    #[deprecated(note = "use AtomicBroadcast::tune with an AbcTuning")]
    pub fn set_batch_bytes(&mut self, bytes: usize) {
        self.batch_bytes = bytes.clamp(1, MAX_PAYLOAD);
    }

    /// Rounds allowed concurrently in flight.
    pub fn pipeline_depth(&self) -> u64 {
        self.pipeline_depth
    }

    /// Sets the pipelining depth (clamped to
    /// `1..=`[`MAX_PIPELINE_DEPTH`]). Round `r + 1` opens as soon as
    /// round `r` has a core proposal quorum (its MVBA is proposed to),
    /// without waiting for `r`'s decision; delivery stays strictly in
    /// round order. `1` restores the seed's sequential rounds.
    #[deprecated(note = "use AtomicBroadcast::tune with an AbcTuning")]
    pub fn set_pipeline_depth(&mut self, depth: u64) {
        self.pipeline_depth = depth.clamp(1, MAX_PIPELINE_DEPTH);
    }

    /// Applies one [`AbcTuning`] — batch size, batch bytes, and
    /// pipeline depth together, with the same clamps the individual
    /// (deprecated) setters enforced. The single entry point the RSM
    /// layer's `ReplicaConfig` drives.
    pub fn tune(&mut self, tuning: &AbcTuning) {
        self.batch_cap = tuning.batch_cap.clamp(1, QUEUED_BATCH_DECODE_CAP);
        self.batch_bytes = tuning.batch_bytes.clamp(1, MAX_PAYLOAD);
        self.pipeline_depth = tuning.pipeline_depth.clamp(1, MAX_PIPELINE_DEPTH);
    }

    /// Rounds currently open past the delivery frontier (gauge).
    pub fn rounds_in_flight(&self) -> u64 {
        self.sent_queued.range(self.round..).count() as u64
    }

    /// Entry count of the most recently proposed batch (gauge).
    pub fn last_batch_size(&self) -> u64 {
        self.last_batch_size
    }

    /// Routes share-batch verification of every (current and future)
    /// round's MVBA — and its CBC/ABBA children — through `pool`. With a
    /// threaded pool, verdicts are applied on every
    /// [`on_message`](Self::on_message) entry and on
    /// [`on_tick`](Self::on_tick), so progress never waits for a timer;
    /// a 0-worker pool verifies inline.
    pub fn set_verify_pool(&mut self, pool: Arc<VerifyPool>) {
        for mvba in self.mvbas.values_mut() {
            if !mvba.has_verify_pool() {
                mvba.set_verify_pool(Arc::clone(&pool));
            }
        }
        self.verify_pool = Some(pool);
    }

    /// The attached verification pool, if any.
    pub fn verify_pool(&self) -> Option<&Arc<VerifyPool>> {
        self.verify_pool.as_ref()
    }

    fn queued_msg(&self, round: u64, payload: &[u8]) -> Vec<u8> {
        self.tag
            .message(&[b"queued", &round.to_be_bytes(), payload])
    }

    /// Broadcasts a payload: disseminates it so every honest server
    /// queues it (fairness), and joins the current round.
    ///
    /// Empty payloads are reserved as round fillers and rejected.
    pub fn broadcast(
        &mut self,
        payload: Vec<u8>,
        rng: &mut SeededRng,
        out: &mut Outbox<AbcMessage>,
    ) -> Vec<AbcDeliver> {
        assert!(
            !payload.is_empty(),
            "empty payloads are reserved as fillers"
        );
        out.broadcast(AbcMessage::Push(payload.clone()));
        // Enqueue locally as well; the self-addressed Push (if the
        // transport loops it back) deduplicates by digest.
        self.enqueue(payload);
        self.try_progress(rng, out)
    }

    /// Returns `true` when the payload was newly queued.
    fn enqueue(&mut self, payload: Vec<u8>) -> bool {
        let d = digest(&payload);
        if payload.is_empty() || self.delivered.contains_key(&d) || !self.queued_digests.insert(d) {
            return false;
        }
        self.queue.push_back(payload);
        true
    }

    /// Handles a message, returning any new total-order deliveries.
    pub fn on_message(
        &mut self,
        from: PartyId,
        msg: AbcMessage,
        rng: &mut SeededRng,
        out: &mut Outbox<AbcMessage>,
    ) -> Vec<AbcDeliver> {
        // Apply any pool verdicts that landed since the last tick before
        // handling the message: a share batch completed between ticks
        // must never stall the round until the next timer fires.
        self.drain_all_verifications(rng, out);
        if from >= self.n {
            return Vec::new(); // out-of-range sender
        }
        match msg {
            AbcMessage::Push(payload) => {
                if self.push_debt[from] >= self.push_bound {
                    return Vec::new(); // flooding sender: buffer is bounded
                }
                let d = digest(&payload);
                if self.enqueue(payload) {
                    self.push_debt[from] += 1;
                    self.charged.insert(d, from);
                }
                self.try_progress(rng, out)
            }
            AbcMessage::Queued { round, batch, sig } => {
                if round < self.round || round > self.round + ROUND_LOOKAHEAD {
                    return Vec::new(); // stale or beyond the round window
                }
                // Structural bounds before any crypto: the wire codec
                // enforces the same caps, but in-process senders (tests,
                // harness fault injectors) bypass it.
                if !batch_within_bounds(&batch) {
                    return Vec::new();
                }
                let encoded = encode_batch(&batch);
                let msg_bytes = self.queued_msg(round, &encoded);
                if !self.public.auth_key(from).verify(&msg_bytes, &sig) {
                    return Vec::new();
                }
                // A correctly signed proposal for round `r` proves the
                // sender delivered every round below `r` minus the
                // pipelining slack — it is the GC acknowledgement,
                // piggybacked on existing traffic.
                self.ack_round[from] =
                    self.ack_round[from].max(round.saturating_sub(PIPELINE_ACK_SLACK));
                self.proposals
                    .entry(round)
                    .or_default()
                    .entry(from)
                    .or_insert((encoded, sig));
                self.try_progress(rng, out)
            }
            AbcMessage::Mvba { round, inner } => {
                if round + ROUND_RETROSPECT < self.round || round > self.round + ROUND_LOOKAHEAD {
                    return Vec::new(); // outside the served round window
                }
                let mut sub = Outbox::new(self.n);
                let mvba = self.mvba_instance(round);
                let decision = mvba.on_message(from, inner, rng, &mut sub);
                for (to, m) in sub {
                    out.send(to, AbcMessage::Mvba { round, inner: m });
                }
                if let Some(list) = decision {
                    // Re-deciding an already-delivered round is idempotent
                    // (MVBA agreement: same round, same list).
                    self.decided_lists.insert(round, list);
                }
                self.try_progress(rng, out)
            }
        }
    }

    fn mvba_instance(&mut self, round: u64) -> &mut Mvba {
        let tag = self.tag.child("round", round);
        let public = Arc::clone(&self.public);
        let bundle = Arc::clone(&self.bundle);
        let predicate = round_validity(&self.tag, round, Arc::clone(&self.public));
        let mvba = self
            .mvbas
            .entry(round)
            .or_insert_with(|| Mvba::new(tag, public, bundle, predicate));
        if let Some(pool) = &self.verify_pool {
            if !mvba.has_verify_pool() {
                mvba.set_verify_pool(Arc::clone(pool));
            }
        }
        mvba
    }

    /// The prefix of the queue to propose next.
    ///
    /// Deliberately a *prefix*, never deduplicated against rounds still
    /// in flight: an MVBA may decide a list that excludes our proposal,
    /// so if a pipelined round `r + 1` skipped ahead to later queue
    /// entries and round `r`'s batch lost, the later entries would
    /// deliver first and break the per-origin FIFO fairness condition.
    /// Every delivered batch being a queue prefix as of its propose time
    /// is the fairness invariant; the delivery dedup window (well wider
    /// than [`MAX_PIPELINE_DEPTH`]) discards whatever an earlier round
    /// already ordered.
    ///
    /// Naive re-proposal would let in-flight content crowd out new
    /// payloads (a deep pipeline would carry the same `batch_cap`
    /// entries in every open round), so the entry cap *extends* past the
    /// widest still-covered prefix (`proposed_cover`): covered entries
    /// ride along unconditionally, and up to `batch_cap` fresh entries
    /// follow under a fresh `batch_bytes` budget (first fresh payload of
    /// an otherwise empty batch exempt, so an oversized head still makes
    /// progress). The whole batch stays within the receiver-enforced
    /// structural bounds ([`QUEUED_BATCH_DECODE_CAP`], [`MAX_PAYLOAD`]).
    fn select_batch(&self) -> Vec<Vec<u8>> {
        let covered = self.proposed_cover.values().copied().max().unwrap_or(0);
        let cap = covered
            .saturating_add(self.batch_cap)
            .min(QUEUED_BATCH_DECODE_CAP);
        let mut batch: Vec<Vec<u8>> = Vec::new();
        let mut total = 0usize;
        let mut fresh = 0usize;
        for (i, p) in self.queue.iter().enumerate() {
            if batch.len() >= cap {
                break;
            }
            if !batch.is_empty() && total + p.len() > MAX_PAYLOAD {
                break;
            }
            if i >= covered {
                if !batch.is_empty() && fresh + p.len() > self.batch_bytes {
                    break;
                }
                fresh += p.len();
            }
            total += p.len();
            batch.push(p.clone());
        }
        batch
    }

    /// Tick hook: applies off-thread verification verdicts that pool
    /// workers delivered since the last call, then fires any enabled
    /// round transitions. Pure [`try_progress`] when no threaded pool
    /// is attached.
    pub fn on_tick(
        &mut self,
        rng: &mut SeededRng,
        out: &mut Outbox<AbcMessage>,
    ) -> Vec<AbcDeliver> {
        self.drain_all_verifications(rng, out);
        self.try_progress(rng, out)
    }

    /// Applies off-thread verification verdicts that pool workers have
    /// delivered, across every open round's MVBA (and its CBC/ABBA
    /// children). Decisions land in `decided_lists`; the caller's
    /// `try_progress` turns them into deliveries. No-op without a pool.
    fn drain_all_verifications(&mut self, rng: &mut SeededRng, out: &mut Outbox<AbcMessage>) {
        if self.verify_pool.is_none() {
            return;
        }
        let rounds: Vec<u64> = self.mvbas.keys().copied().collect();
        for round in rounds {
            let mut sub = Outbox::new(self.n);
            let decision = self
                .mvbas
                .get_mut(&round)
                .expect("snapshotted key")
                .drain_verifications(rng, &mut sub);
            for (to, m) in sub {
                out.send(to, AbcMessage::Mvba { round, inner: m });
            }
            if let Some(list) = decision {
                self.decided_lists.insert(round, list);
            }
        }
    }

    /// Fires all enabled round transitions, across the whole pipeline
    /// window: up to `pipeline_depth` rounds may be open concurrently,
    /// each opening as soon as its predecessor has a core proposal
    /// quorum. Delivery stays strictly at the round frontier.
    fn try_progress(
        &mut self,
        rng: &mut SeededRng,
        out: &mut Outbox<AbcMessage>,
    ) -> Vec<AbcDeliver> {
        let mut delivered = Vec::new();
        loop {
            let mut advanced = false;
            let base = self.round;
            for r in base..base + self.pipeline_depth {
                // Round r > base opens only once round r-1 reached a
                // core proposal quorum (we proposed to its MVBA) — the
                // pipelining trigger. Concurrent rounds may propose
                // overlapping queue prefixes; delivery dedup keeps the
                // overlap harmless and FIFO-preserving (see
                // `select_batch`).
                if r > base && !self.mvba_proposed.contains(&(r - 1)) {
                    break;
                }
                // 1. Join round r: sign and send a prefix of our queue
                //    (or a filler if others are active and we have
                //    nothing eligible).
                if !self.sent_queued.contains(&r) {
                    let round_active = self
                        .proposals
                        .get(&r)
                        .map(|p| !p.is_empty())
                        .unwrap_or(false)
                        || self.decided_lists.contains_key(&r);
                    let batch = self.select_batch();
                    if !batch.is_empty() || round_active {
                        self.sent_queued.insert(r);
                        let encoded = encode_batch(&batch);
                        let sig = self
                            .bundle
                            .auth_key()
                            .sign(&self.queued_msg(r, &encoded), rng);
                        self.last_batch_size = batch.len() as u64;
                        self.proposed_cover.insert(r, batch.len());
                        out.broadcast(AbcMessage::Queued {
                            round: r,
                            batch,
                            sig,
                        });
                        advanced = true;
                    }
                }
                // 2. Propose the MVBA once a core quorum of proposals
                //    is in.
                if !self.mvba_proposed.contains(&r) && self.sent_queued.contains(&r) {
                    let holders: PartySet = self
                        .proposals
                        .get(&r)
                        .map(|p| p.keys().copied().collect())
                        .unwrap_or_default();
                    if self.public.structure().is_core(&holders) {
                        self.mvba_proposed.insert(r);
                        let entries: Vec<(PartyId, Vec<u8>, Signature)> = self.proposals[&r]
                            .iter()
                            .map(|(p, (payload, sig))| (*p, payload.clone(), *sig))
                            .collect();
                        let list = encode_list(&entries);
                        let mut sub = Outbox::new(self.n);
                        let mvba = self.mvba_instance(r);
                        let decision = mvba.propose(list, rng, &mut sub);
                        for (to, m) in sub {
                            out.send(to, AbcMessage::Mvba { round: r, inner: m });
                        }
                        if let Some(list) = decision {
                            self.decided_lists.insert(r, list);
                        }
                        advanced = true;
                    }
                }
            }
            // 3. Deliver the decided round at the frontier and advance.
            //    Out-of-order decisions (a pipelined round deciding
            //    before its predecessor) wait in `decided_lists`.
            let r = self.round;
            if let Some(list) = self.decided_lists.get(&r).cloned() {
                delivered.extend(self.deliver_list(r, &list));
                self.round = r + 1;
                // A closed round's proposal is settled — won or lost, it
                // no longer covers queue content (a loser's entries must
                // be eligible again under the normal cap).
                self.proposed_cover = self.proposed_cover.split_off(&self.round);
                self.rounds_completed += 1;
                self.ack_round[self.me] = self.round;
                self.collect_garbage();
                advanced = true;
            }
            if !advanced {
                break;
            }
        }
        delivered
    }

    /// Reclaims completed-round state below the stable low-watermark
    /// (decided lists, proposal sets) and outside the served window
    /// (MVBA machines, bookkeeping sets). Recent rounds stay answerable
    /// for laggards (see [`ROUND_RETROSPECT`]); anything older than the
    /// watermark is recoverable only via RSM state transfer.
    fn collect_garbage(&mut self) {
        let watermark = self.gc_watermark();
        self.decided_lists = self.decided_lists.split_off(&watermark);
        self.proposals = self.proposals.split_off(&self.round);
        let keep_from = self.round.saturating_sub(ROUND_RETROSPECT);
        self.mvbas = self.mvbas.split_off(&keep_from);
        // Round flags are consulted for the pipeline window, which
        // starts at the current round — exactly what split_off keeps.
        self.sent_queued = self.sent_queued.split_off(&self.round);
        self.mvba_proposed = self.mvba_proposed.split_off(&self.round);
    }

    /// Jumps the endpoint forward after an out-of-band catch-up (RSM
    /// state transfer): delivery resumes at `next_seq` in round
    /// `next_round`. All working state for skipped rounds is dropped —
    /// their effects are already reflected in the restored application
    /// snapshot. The delivered-payload dedup window is re-seeded from
    /// `dedup` (taken from the certified checkpoint plus the vouched
    /// tail), so post-jump delivery decisions match the live quorum's
    /// exactly.
    pub fn fast_forward(&mut self, next_seq: u64, next_round: u64, dedup: &[(u64, Digest)]) {
        if next_round <= self.round && next_seq <= self.next_seq {
            return; // already caught up
        }
        self.next_seq = self.next_seq.max(next_seq);
        self.round = self.round.max(next_round);
        self.ack_round[self.me] = self.round;
        self.decided_lists = self.decided_lists.split_off(&self.round);
        self.proposals = self.proposals.split_off(&self.round);
        self.mvbas = self.mvbas.split_off(&self.round);
        self.sent_queued = self.sent_queued.split_off(&self.round);
        self.mvba_proposed = self.mvba_proposed.split_off(&self.round);
        self.delivered.clear();
        self.delivered_rounds.clear();
        let horizon = self.round.saturating_sub(DEDUP_ROUNDS);
        for (r, d) in dedup {
            if *r >= horizon && self.delivered.insert(*d, *r).is_none() {
                self.delivered_rounds.entry(*r).or_default().push(*d);
            }
        }
        // Drop the pending queue: payloads pushed to us while we lagged
        // were mostly ordered (and reflected in the restored snapshot)
        // long ago. Re-proposing them would burn rounds the others skip
        // by dedup — and, with our own dedup history gone, we would
        // re-deliver them and our sequence numbers would skew forever.
        // An honest push reached every party, so anything genuinely
        // undelivered is still in the survivors' queues; clients retry.
        self.queue.clear();
        self.queued_digests.clear();
        self.proposed_cover.clear();
        self.charged.clear();
        self.push_debt.fill(0);
    }

    fn deliver_list(&mut self, round: u64, list: &[u8]) -> Vec<AbcDeliver> {
        // Rotate the dedup window first: the skip/deliver decision below
        // must depend only on digests within [`DEDUP_ROUNDS`] of this
        // round, the same rule at every honest party.
        let horizon = round.saturating_sub(DEDUP_ROUNDS);
        while let Some((&r, _)) = self.delivered_rounds.first_key_value() {
            if r >= horizon {
                break;
            }
            for d in self.delivered_rounds.remove(&r).unwrap_or_default() {
                self.delivered.remove(&d);
            }
        }
        let mut entries = decode_list(list).expect("decided lists passed external validity");
        entries.sort_by_key(|(party, _, _)| *party);
        let mut delivered = Vec::new();
        for (origin, encoded, _) in entries {
            // Each entry is a signed batch; sub-payloads deliver in
            // queue order within their origin's entry. An empty batch
            // is the round filler. Validity guaranteed decodability.
            let batch = decode_batch(&encoded).expect("decided lists passed external validity");
            for payload in batch {
                let d = digest(&payload);
                if self.delivered.contains_key(&d) {
                    continue; // already delivered within the dedup window
                }
                self.delivered.insert(d, round);
                self.delivered_rounds.entry(round).or_default().push(d);
                // Drop from our own queue if pending, releasing the
                // pushing sender's budget. Covers are prefix lengths, so
                // removing a covered position shrinks every cover past
                // it by one.
                if self.queued_digests.remove(&d) {
                    if let Some(pos) = self.queue.iter().position(|p| digest(p) == d) {
                        self.queue.remove(pos);
                        for cover in self.proposed_cover.values_mut() {
                            if *cover > pos {
                                *cover -= 1;
                            }
                        }
                    }
                }
                if let Some(p) = self.charged.remove(&d) {
                    self.push_debt[p] = self.push_debt[p].saturating_sub(1);
                }
                delivered.push(AbcDeliver {
                    seq: self.next_seq,
                    round,
                    origin,
                    payload,
                });
                self.next_seq += 1;
            }
        }
        delivered
    }
}

/// The external validity predicate for round `r`: the value must decode
/// to a list of distinct-party entries whose holders form a core set,
/// each correctly signed for this round.
fn round_validity(tag: &Tag, round: u64, public: Arc<PublicParameters>) -> ValidityPredicate {
    let tag = tag.clone();
    Arc::new(move |value: &[u8]| {
        let entries = match decode_list(value) {
            Some(e) => e,
            None => return false,
        };
        let mut holders = PartySet::new();
        for (party, payload, sig) in &entries {
            if *party >= public.n() || !holders.insert(*party) {
                return false; // out of range or duplicate
            }
            // The entry payload must be a well-formed, bounded batch
            // encoding; delivery relies on it decoding cleanly.
            if decode_batch(payload).is_none() {
                return false;
            }
            let msg = tag.message(&[b"queued", &round.to_be_bytes(), payload]);
            if !public.auth_key(*party).verify(&msg, sig) {
                return false;
            }
        }
        public.structure().is_core(&holders)
    })
}

/// Encodes a proposal list: `count ‖ (party ‖ len ‖ payload ‖ sig)*`.
fn encode_list(entries: &[(PartyId, Vec<u8>, Signature)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (party, payload, sig) in entries {
        out.extend_from_slice(&(*party as u32).to_be_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&sig.to_bytes());
    }
    out
}

/// Decodes a proposal list; `None` on malformed input.
fn decode_list(bytes: &[u8]) -> Option<Vec<(PartyId, Vec<u8>, Signature)>> {
    let mut rest = bytes;
    let take = |rest: &mut &[u8], n: usize| -> Option<Vec<u8>> {
        if rest.len() < n {
            return None;
        }
        let (head, tail) = rest.split_at(n);
        *rest = tail;
        Some(head.to_vec())
    };
    let count = u32::from_be_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
    if count > 4096 {
        return None; // sanity bound
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let party = u32::from_be_bytes(take(&mut rest, 4)?.try_into().ok()?) as PartyId;
        let len = u32::from_be_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
        if len > 1 << 24 {
            return None;
        }
        let payload = take(&mut rest, len)?;
        let sig_bytes: [u8; 64] = take(&mut rest, 64)?.try_into().ok()?;
        out.push((party, payload, Signature::from_bytes(&sig_bytes)?));
    }
    if !rest.is_empty() {
        return None;
    }
    Some(out)
}

/// Structural bounds on a proposal batch: entry count within
/// [`QUEUED_BATCH_DECODE_CAP`], no empty sub-payloads (empty batches —
/// not empty payloads — are the round filler), total bytes within
/// [`MAX_PAYLOAD`].
pub fn batch_within_bounds(batch: &[Vec<u8>]) -> bool {
    if batch.len() > QUEUED_BATCH_DECODE_CAP {
        return false;
    }
    let mut total = 0usize;
    for p in batch {
        if p.is_empty() {
            return false;
        }
        total += p.len();
        if total > MAX_PAYLOAD {
            return false;
        }
    }
    true
}

/// Encodes a proposal batch: `count ‖ (len ‖ payload)*`. `Queued`
/// signatures and MVBA list entries cover this encoding, so batch
/// boundaries are authenticated.
pub fn encode_batch(batch: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + batch.iter().map(|p| 4 + p.len()).sum::<usize>());
    out.extend_from_slice(&(batch.len() as u32).to_be_bytes());
    for p in batch {
        out.extend_from_slice(&(p.len() as u32).to_be_bytes());
        out.extend_from_slice(p);
    }
    out
}

/// Decodes a proposal batch, enforcing the [`batch_within_bounds`]
/// caps; `None` on malformed or oversized input.
pub fn decode_batch(bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    let mut rest = bytes;
    let take = |rest: &mut &[u8], n: usize| -> Option<Vec<u8>> {
        if rest.len() < n {
            return None;
        }
        let (head, tail) = rest.split_at(n);
        *rest = tail;
        Some(head.to_vec())
    };
    let count = u32::from_be_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
    if count > QUEUED_BATCH_DECODE_CAP {
        return None;
    }
    let mut total = 0usize;
    let mut out = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let len = u32::from_be_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
        if len == 0 {
            return None; // empty payloads are reserved
        }
        total += len;
        if total > MAX_PAYLOAD {
            return None;
        }
        out.push(take(&mut rest, len)?);
    }
    if !rest.is_empty() {
        return None;
    }
    Some(out)
}

/// [`Protocol`] adapter: one atomic-broadcast server as a simulator
/// node. Inputs are payloads to broadcast; outputs are total-order
/// deliveries.
#[derive(Debug)]
pub struct AbcNode {
    abc: AtomicBroadcast,
    rng: SeededRng,
}

impl AbcNode {
    /// Wraps an endpoint with its nonce RNG.
    pub fn new(abc: AtomicBroadcast, rng: SeededRng) -> Self {
        AbcNode { abc, rng }
    }

    /// Read access to the endpoint.
    pub fn endpoint(&self) -> &AtomicBroadcast {
        &self.abc
    }

    /// Mutable access to the endpoint (GC tuning, fast-forward).
    pub fn endpoint_mut(&mut self) -> &mut AtomicBroadcast {
        &mut self.abc
    }

    /// Publishes retained-state gauges so long-run boundedness is
    /// measurable rather than asserted.
    fn record_retention(&self, ctx: &Context) {
        ctx.obs.gauge_set(
            Layer::Abc,
            "retained_rounds",
            self.abc.retained_rounds() as u64,
        );
        ctx.obs.gauge_set(
            Layer::Abc,
            "retained_bytes",
            self.abc.retained_bytes() as u64,
        );
        ctx.obs.gauge_set(
            Layer::Abc,
            "tracked_rounds",
            self.abc.tracked_rounds() as u64,
        );
        ctx.obs
            .gauge_set(Layer::Abc, "rounds_in_flight", self.abc.rounds_in_flight());
        ctx.obs
            .gauge_set(Layer::Abc, "batch_size", self.abc.last_batch_size());
        if let Some(pool) = self.abc.verify_pool() {
            ctx.obs.gauge_set(
                Layer::Abc,
                "verify_jobs_off_thread",
                pool.stats().ran_off_thread,
            );
        }
    }
}

impl Protocol for AbcNode {
    type Message = AbcMessage;
    type Input = Vec<u8>;
    type Output = AbcDeliver;

    fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<AbcMessage, AbcDeliver>) {
        let mut out = Outbox::new(self.abc.n());
        for d in self.abc.broadcast(input, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: AbcMessage,
        fx: &mut Effects<AbcMessage, AbcDeliver>,
    ) {
        let mut out = Outbox::new(self.abc.n());
        for d in self.abc.on_message(from, msg, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_tick(&mut self, fx: &mut Effects<AbcMessage, AbcDeliver>) {
        let mut out = Outbox::new(self.abc.n());
        for d in self.abc.on_tick(&mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: Vec<u8>,
        fx: &mut Effects<AbcMessage, AbcDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_input(input, fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        record_deliveries(ctx, fx, o0);
        self.record_retention(ctx);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: AbcMessage,
        fx: &mut Effects<AbcMessage, AbcDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        observe_wire(ctx, "recv", &msg);
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        record_deliveries(ctx, fx, o0);
        self.record_retention(ctx);
    }

    fn on_tick_ctx(&mut self, ctx: &Context, fx: &mut Effects<AbcMessage, AbcDeliver>) {
        if !ctx.obs.is_enabled() {
            return self.on_tick(fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_tick(fx);
        for (_, m) in &fx.sends()[s0..] {
            observe_wire(ctx, "sent", m);
        }
        record_deliveries(ctx, fx, o0);
        self.record_retention(ctx);
    }
}

/// Records each total-order delivery appended past `mark`.
fn record_deliveries(ctx: &Context, fx: &Effects<AbcMessage, AbcDeliver>, mark: usize) {
    for d in &fx.outputs()[mark..] {
        ctx.obs.inc(Layer::Abc, "delivered");
        ctx.obs.event(
            Event::new(Layer::Abc, EventKind::Deliver, ctx.me)
                .value(d.seq)
                .at(ctx.at),
        );
    }
}

/// Builds `n` connected [`AbcNode`]s for a dealt system (test/bench
/// helper).
pub fn abc_nodes(
    public: PublicParameters,
    bundles: Vec<ServerKeyBundle>,
    seed: u64,
) -> Vec<AbcNode> {
    let public = Arc::new(public);
    bundles
        .into_iter()
        .map(|b| {
            let rng = SeededRng::new(seed ^ (b.party() as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
            AbcNode::new(
                AtomicBroadcast::new(Tag::root("abc"), Arc::clone(&public), Arc::new(b)),
                rng,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;
    use sintra_net::sim::{Behavior, LifoScheduler, RandomScheduler, Simulation};

    fn nodes(n: usize, t: usize, seed: u64) -> Vec<AbcNode> {
        let ts = TrustStructure::threshold(n, t).unwrap();
        let mut rng = SeededRng::new(seed);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        abc_nodes(public, bundles, seed)
    }

    fn delivered_payloads(
        sim: &Simulation<AbcNode, impl sintra_net::sim::Scheduler<AbcMessage>>,
        p: usize,
    ) -> Vec<Vec<u8>> {
        sim.outputs(p).iter().map(|d| d.payload.clone()).collect()
    }

    #[test]
    fn single_broadcast_total_order() {
        let mut sim = Simulation::builder(nodes(4, 1, 1), RandomScheduler)
            .seed(2)
            .build();
        sim.input(0, b"m1".to_vec());
        sim.run_until_quiet(10_000_000);
        for p in 0..4 {
            assert_eq!(
                delivered_payloads(&sim, p),
                vec![b"m1".to_vec()],
                "party {p}"
            );
        }
    }

    #[test]
    fn concurrent_broadcasts_same_order_everywhere() {
        for seed in 0..3u64 {
            let mut sim = Simulation::builder(nodes(4, 1, 10 + seed), RandomScheduler)
                .seed(20 + seed)
                .build();
            for p in 0..4 {
                sim.input(p, format!("msg-from-{p}").into_bytes());
            }
            sim.run_until_quiet(50_000_000);
            let reference = delivered_payloads(&sim, 0);
            assert_eq!(reference.len(), 4, "all messages delivered (seed {seed})");
            for p in 1..4 {
                assert_eq!(
                    delivered_payloads(&sim, p),
                    reference,
                    "party {p} seed {seed}"
                );
            }
            // Sequence numbers are consecutive.
            for p in 0..4 {
                let seqs: Vec<u64> = sim.outputs(p).iter().map(|d| d.seq).collect();
                assert_eq!(seqs, (0..4).collect::<Vec<u64>>());
            }
        }
    }

    #[test]
    fn order_holds_under_lifo() {
        let mut sim = Simulation::builder(nodes(4, 1, 40), LifoScheduler)
            .seed(41)
            .build();
        for p in 0..4 {
            sim.input(p, format!("m{p}").into_bytes());
        }
        sim.run_until_quiet(50_000_000);
        let reference = delivered_payloads(&sim, 0);
        assert_eq!(reference.len(), 4);
        for p in 1..4 {
            assert_eq!(delivered_payloads(&sim, p), reference);
        }
    }

    #[test]
    fn crash_fault_does_not_block_ordering() {
        let mut sim = Simulation::builder(nodes(4, 1, 50), RandomScheduler)
            .seed(51)
            .build();
        sim.corrupt(3, Behavior::Crash);
        sim.input(0, b"a".to_vec());
        sim.input(1, b"b".to_vec());
        sim.run_until_quiet(50_000_000);
        let reference = delivered_payloads(&sim, 0);
        assert_eq!(reference.len(), 2);
        for p in 1..3 {
            assert_eq!(delivered_payloads(&sim, p), reference, "party {p}");
        }
    }

    #[test]
    fn multiple_messages_from_one_party() {
        let mut sim = Simulation::builder(nodes(4, 1, 60), RandomScheduler)
            .seed(61)
            .build();
        sim.input(0, b"first".to_vec());
        sim.input(0, b"second".to_vec());
        sim.input(0, b"third".to_vec());
        sim.run_until_quiet(100_000_000);
        let reference = delivered_payloads(&sim, 0);
        assert_eq!(reference.len(), 3);
        for p in 1..4 {
            assert_eq!(delivered_payloads(&sim, p), reference, "party {p}");
        }
    }

    #[test]
    fn duplicate_broadcast_delivered_once() {
        let mut sim = Simulation::builder(nodes(4, 1, 70), RandomScheduler)
            .seed(71)
            .build();
        sim.input(0, b"dup".to_vec());
        sim.input(1, b"dup".to_vec());
        sim.input(2, b"other".to_vec());
        sim.run_until_quiet(50_000_000);
        for p in 0..4 {
            let payloads = delivered_payloads(&sim, p);
            let dups = payloads.iter().filter(|x| x.as_slice() == b"dup").count();
            assert_eq!(dups, 1, "party {p}: dedup across parties");
            assert!(payloads.contains(&b"other".to_vec()));
        }
    }

    #[test]
    fn codec_roundtrip_and_bounds() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(1);
        let (_, bundles) = Dealer::deal(&ts, &mut rng);
        let sig = bundles[0].auth_key().sign(b"x", &mut rng);
        let entries = vec![
            (0, b"alpha".to_vec(), sig),
            (2, Vec::new(), sig),
            (3, vec![0u8; 300], sig),
        ];
        let encoded = encode_list(&entries);
        let decoded = decode_list(&encoded).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].1, b"alpha".to_vec());
        assert_eq!(decoded[1].1, Vec::<u8>::new());
        // Truncated input fails cleanly.
        assert!(decode_list(&encoded[..encoded.len() - 1]).is_none());
        assert!(decode_list(b"").is_none());
        // Trailing garbage fails.
        let mut padded = encoded;
        padded.push(0);
        assert!(decode_list(&padded).is_none());
    }

    #[test]
    fn push_flood_is_bounded_per_sender() {
        let mut ns = nodes(4, 1, 90);
        let node = &mut ns[0].abc;
        node.set_push_bound(8);
        let mut rng = SeededRng::new(1);
        let mut out = Outbox::new(node.n());
        // A Byzantine flooder pushes far more distinct payloads than the
        // per-sender budget; the honest queue absorbs only the budget.
        for i in 0..1_000u32 {
            node.on_message(
                3,
                AbcMessage::Push(format!("flood-{i}").into_bytes()),
                &mut rng,
                &mut out,
            );
        }
        assert_eq!(node.push_debt(3), 8, "debt capped at the bound");
        assert!(node.queue_len() <= 8, "queue growth bounded");
        // An honest pusher is unaffected by the flooder's exhausted
        // budget.
        node.on_message(1, AbcMessage::Push(b"honest".to_vec()), &mut rng, &mut out);
        assert_eq!(node.push_debt(1), 1);
        assert_eq!(node.queue_len(), 9);
    }

    #[test]
    fn far_future_rounds_create_no_state() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(2);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let tag = Tag::root("abc");
        let mut node = AtomicBroadcast::new(
            tag.clone(),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        let mut out = Outbox::new(node.n());
        // Correctly signed proposals for far-future rounds (round numbers
        // are attacker-chosen) are refused.
        for round in 1_000..1_100u64 {
            let batch = vec![b"attack".to_vec()];
            let sig = bundles[3].auth_key().sign(
                &tag.message(&[b"queued", &round.to_be_bytes(), &encode_batch(&batch)]),
                &mut rng,
            );
            node.on_message(
                3,
                AbcMessage::Queued { round, batch, sig },
                &mut rng,
                &mut out,
            );
        }
        assert_eq!(node.tracked_rounds(), 0, "no far-future proposal state");
        // Far-future MVBA traffic instantiates no agreement machine.
        let share = bundles[3].coin_key().share(b"x", &mut rng);
        node.on_message(
            3,
            AbcMessage::Mvba {
                round: 5_000,
                inner: MvbaMessage::ElectCoin { election: 0, share },
            },
            &mut rng,
            &mut out,
        );
        assert_eq!(node.tracked_rounds(), 0, "no far-future MVBA machine");
        // In-window traffic still lands.
        let batch = vec![b"near".to_vec()];
        let sig = bundles[2].auth_key().sign(
            &tag.message(&[b"queued", &3u64.to_be_bytes(), &encode_batch(&batch)]),
            &mut rng,
        );
        node.on_message(
            2,
            AbcMessage::Queued {
                round: 3,
                batch,
                sig,
            },
            &mut rng,
            &mut out,
        );
        assert_eq!(node.tracked_rounds(), 1);
    }

    #[test]
    fn retained_rounds_bounded_over_500_rounds() {
        // A single-party group completes rounds immediately, making 500
        // agreement rounds cheap; the regression is that decided lists
        // (and working state) stay bounded by the GC window instead of
        // growing with the round count.
        // batch_cap = 1 pins one payload per round — the test measures
        // GC over many rounds, not batching.
        let mut ns = nodes(1, 0, 100);
        ns[0].endpoint_mut().tune(&AbcTuning {
            batch_cap: 1,
            ..AbcTuning::default()
        });
        let mut sim = Simulation::builder(ns, RandomScheduler).seed(101).build();
        for i in 0..500u32 {
            sim.input(0, format!("payload-{i}").into_bytes());
        }
        sim.run_until_quiet(100_000_000);
        let abc = sim.node(0).unwrap().endpoint();
        assert_eq!(sim.outputs(0).len(), 500, "all payloads ordered");
        assert!(abc.rounds_completed() >= 500);
        assert!(
            (abc.retained_rounds() as u64) <= abc.gc_window(),
            "retained rounds {} exceed GC window {}",
            abc.retained_rounds(),
            abc.gc_window()
        );
        assert!(
            abc.tracked_rounds() <= (ROUND_RETROSPECT + ROUND_LOOKAHEAD) as usize + 1,
            "working state bounded"
        );
        // Deliveries carry their agreement round, consecutively.
        let rounds: Vec<u64> = sim.outputs(0).iter().map(|d| d.round).collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn silent_party_cannot_pin_memory() {
        // A crashed party never acknowledges any round; the hard GC cap
        // must reclaim state anyway.
        let mut ns = nodes(4, 1, 110);
        for node in &mut ns {
            node.endpoint_mut().set_gc_window(8);
        }
        let mut sim = Simulation::builder(ns, RandomScheduler).seed(111).build();
        sim.corrupt(3, Behavior::Crash);
        for i in 0..30u32 {
            sim.input(0, format!("m-{i}").into_bytes());
        }
        sim.run_until_quiet(200_000_000);
        let abc = sim.node(0).unwrap().endpoint();
        assert_eq!(sim.outputs(0).len(), 30);
        assert!(
            abc.retained_rounds() <= 8,
            "silent party pinned {} rounds of memory",
            abc.retained_rounds()
        );
    }

    #[test]
    fn fast_forward_jumps_round_and_seq() {
        let mut ns = nodes(4, 1, 120);
        let abc = ns[0].endpoint_mut();
        let seed = vec![(16, digest(b"old")), (5, digest(b"ancient"))];
        abc.fast_forward(42, 17, &seed);
        assert_eq!(abc.delivered_count(), 42);
        assert_eq!(abc.round(), 17);
        assert_eq!(abc.retained_rounds(), 0);
        // The seeded dedup window survives (within the horizon).
        assert_eq!(
            abc.dedup_window(),
            vec![(5, digest(b"ancient")), (16, digest(b"old"))]
        );
        // Fast-forwarding backwards is a no-op.
        abc.fast_forward(1, 2, &[]);
        assert_eq!(abc.delivered_count(), 42);
        assert_eq!(abc.round(), 17);
    }

    #[test]
    fn dedup_window_rotates_and_stays_bounded() {
        // A single-party group completes a round per broadcast. The
        // delivered-digest window must rotate at DEDUP_ROUNDS — so a
        // payload re-pushed long after delivery is delivered again
        // (windowed at-most-once), and memory stays bounded.
        let mut ns = nodes(1, 0, 130);
        ns[0].endpoint_mut().tune(&AbcTuning {
            batch_cap: 1,
            ..AbcTuning::default()
        });
        let mut sim = Simulation::builder(ns, RandomScheduler).seed(131).build();
        sim.input(0, b"evergreen".to_vec());
        sim.run_until_quiet(10_000_000);
        assert_eq!(sim.outputs(0).len(), 1);
        // Within the window, a re-push is suppressed.
        sim.input(0, b"evergreen".to_vec());
        sim.run_until_quiet(10_000_000);
        assert_eq!(sim.outputs(0).len(), 1, "deduped within the window");
        for i in 0..(DEDUP_ROUNDS + 8) {
            sim.input(0, format!("filler-{i}").into_bytes());
        }
        sim.run_until_quiet(200_000_000);
        let before = sim.outputs(0).len();
        sim.input(0, b"evergreen".to_vec());
        sim.run_until_quiet(10_000_000);
        assert_eq!(
            sim.outputs(0).len(),
            before + 1,
            "out-of-window duplicate is re-delivered"
        );
        let abc = sim.node(0).unwrap().endpoint();
        assert!(
            abc.dedup_window().len() as u64 <= DEDUP_ROUNDS + 1,
            "dedup window bounded, got {}",
            abc.dedup_window().len()
        );
        assert!(
            abc.retained_bytes() >= abc.dedup_window().len() * 80,
            "dedup window counted in retained bytes"
        );
    }

    #[test]
    fn batch_codec_roundtrip_and_hostile_inputs() {
        // Round trip, including the empty (filler) batch.
        let batch = vec![b"a".to_vec(), vec![7u8; 300], b"zz".to_vec()];
        assert_eq!(decode_batch(&encode_batch(&batch)).unwrap(), batch);
        assert_eq!(
            decode_batch(&encode_batch(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );
        // Truncated and trailing input fail cleanly.
        let enc = encode_batch(&batch);
        assert!(decode_batch(&enc[..enc.len() - 1]).is_none());
        assert!(decode_batch(b"").is_none());
        let mut padded = enc.clone();
        padded.push(0);
        assert!(decode_batch(&padded).is_none());
        // Empty sub-payloads are reserved (fillers are empty *batches*).
        let mut with_empty = Vec::new();
        with_empty.extend_from_slice(&1u32.to_be_bytes());
        with_empty.extend_from_slice(&0u32.to_be_bytes());
        assert!(decode_batch(&with_empty).is_none());
        // Entry count past the decode cap is refused without allocating.
        let mut flood = Vec::new();
        flood.extend_from_slice(&((QUEUED_BATCH_DECODE_CAP + 1) as u32).to_be_bytes());
        assert!(decode_batch(&flood).is_none());
        // Total bytes past MAX_PAYLOAD are refused even if each entry
        // is individually small enough.
        let big = vec![vec![0u8; MAX_PAYLOAD / 2 + 1]; 2];
        assert!(decode_batch(&encode_batch(&big)).is_none());
        assert!(!batch_within_bounds(&big));
        assert!(!batch_within_bounds(&[Vec::new()]));
        assert!(batch_within_bounds(&[b"x".to_vec()]));
    }

    #[test]
    fn select_batch_respects_caps_and_stays_a_prefix() {
        let mut ns = nodes(4, 1, 140);
        let abc = ns[0].endpoint_mut();
        abc.tune(&AbcTuning {
            batch_cap: 3,
            batch_bytes: 1 << 10,
            ..AbcTuning::default()
        });
        for i in 0..10u32 {
            abc.enqueue(format!("payload-{i}").into_bytes());
        }
        let batch = abc.select_batch();
        assert_eq!(batch.len(), 3, "entry cap honored");
        assert_eq!(batch[0], b"payload-0".to_vec(), "queue prefix order");
        // Selection is idempotent until a proposal or delivery mutates
        // the state: it stays a prefix, never skips ahead (the
        // FIFO-preserving rule — see `select_batch`).
        assert_eq!(abc.select_batch(), batch);
        // Once that prefix is in flight, a concurrent pipelined round
        // re-proposes it *and* extends past it by the entry cap, so
        // in-flight content never crowds out new payloads.
        abc.proposed_cover.insert(0, batch.len());
        let extended = abc.select_batch();
        assert_eq!(extended.len(), 6, "cap extends past the covered prefix");
        assert_eq!(extended[..3], batch[..], "covered prefix rides along");
        assert_eq!(extended[3], b"payload-3".to_vec(), "then fresh entries");
        // A delivery that removes a covered entry shrinks the cover:
        // position 0 leaves the queue, the cover drops to 2.
        abc.queue.pop_front();
        for cover in abc.proposed_cover.values_mut() {
            *cover -= 1;
        }
        assert_eq!(abc.select_batch().len(), 5, "cover shrank with the queue");
        abc.proposed_cover.clear();
        // The byte budget caps the fresh tail of a batch…
        abc.tune(&AbcTuning {
            batch_bytes: 1,
            ..AbcTuning::default()
        });
        assert_eq!(abc.select_batch().len(), 1, "byte budget caps the tail");
        // …but never starves an oversized head-of-queue payload.
        assert_eq!(abc.select_batch()[0], b"payload-1".to_vec());
        // Covered entries are budget-exempt (they already rode an
        // earlier round's budget); the fresh budget applies past them,
        // and with covered content aboard there is no head exemption —
        // an over-budget fresh entry waits for the covering round to
        // close rather than bloating a batch that already progresses.
        abc.proposed_cover.insert(0, 3);
        assert_eq!(
            abc.select_batch().len(),
            3,
            "fresh tail waits out the budget"
        );
    }

    #[test]
    fn batched_pipelined_run_matches_across_parties() {
        // Defaults (batch_cap > 1, pipeline_depth > 1) must preserve
        // agreement on one total order with multiple payloads per party.
        for seed in 0..2u64 {
            let mut sim = Simulation::builder(nodes(4, 1, 150 + seed), RandomScheduler)
                .seed(160 + seed)
                .build();
            for p in 0..4 {
                for i in 0..4u32 {
                    sim.input(p, format!("m-{p}-{i}").into_bytes());
                }
            }
            sim.run_until_quiet(200_000_000);
            let reference = delivered_payloads(&sim, 0);
            assert_eq!(reference.len(), 16, "all 16 payloads ordered (seed {seed})");
            for p in 1..4 {
                assert_eq!(delivered_payloads(&sim, p), reference, "party {p}");
            }
            // Batching buys amortization: 16 payloads in < 16 rounds.
            let abc = sim.node(0).unwrap().endpoint();
            assert!(
                abc.rounds_completed() < 16,
                "batching amortized rounds: {} completed",
                abc.rounds_completed()
            );
        }
    }

    #[test]
    fn pipelined_ack_carries_slack() {
        // A Queued for round r only proves delivery through
        // r - (MAX_PIPELINE_DEPTH - 1); the GC watermark must not
        // over-advance on pipelined proposals.
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(3);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let tag = Tag::root("abc");
        let mut node = AtomicBroadcast::new(
            tag.clone(),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
        );
        let mut out = Outbox::new(node.n());
        let round = 10u64;
        let batch = vec![b"ahead".to_vec()];
        let sig = bundles[3].auth_key().sign(
            &tag.message(&[b"queued", &round.to_be_bytes(), &encode_batch(&batch)]),
            &mut rng,
        );
        node.on_message(
            3,
            AbcMessage::Queued { round, batch, sig },
            &mut rng,
            &mut out,
        );
        assert_eq!(
            node.ack_round[3],
            round - PIPELINE_ACK_SLACK,
            "ack discounted by the pipeline slack"
        );
    }

    #[test]
    fn inline_verify_pool_preserves_delivery() {
        // A 0-worker pool must be behaviorally inert: same agreement,
        // everything verified inline on the protocol thread.
        let mut ns = nodes(4, 1, 170);
        let pool = VerifyPool::new(0);
        for node in &mut ns {
            node.endpoint_mut().set_verify_pool(Arc::clone(&pool));
        }
        let mut sim = Simulation::builder(ns, RandomScheduler).seed(171).build();
        for p in 0..4 {
            sim.input(p, format!("inline-{p}").into_bytes());
        }
        sim.run_until_quiet(100_000_000);
        let reference = delivered_payloads(&sim, 0);
        assert_eq!(reference.len(), 4);
        for p in 1..4 {
            assert_eq!(delivered_payloads(&sim, p), reference, "party {p}");
        }
        let stats = pool.stats();
        assert!(stats.submitted > 0, "coin batches went through the pool");
        assert_eq!(stats.ran_inline, stats.submitted, "0 workers: all inline");
        assert_eq!(stats.ran_off_thread, 0);
    }

    #[test]
    fn threaded_verify_pool_runs_off_thread() {
        // Single-party group driven by hand: broadcast, shuttle the
        // self-addressed messages, and tick until the off-thread verdict
        // lands. The crypto-op attribution is the pool's own counters.
        let ts = TrustStructure::threshold(1, 0).unwrap();
        let mut rng = SeededRng::new(5);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let mut abc = AtomicBroadcast::new(
            Tag::root("abc"),
            Arc::new(public),
            Arc::new(bundles.into_iter().next().unwrap()),
        );
        let pool = VerifyPool::new(2);
        abc.set_verify_pool(Arc::clone(&pool));
        let mut out = Outbox::new(1);
        let mut delivered = abc.broadcast(b"offload".to_vec(), &mut rng, &mut out);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut inbox: VecDeque<AbcMessage> = out.into_iter().map(|(_, m)| m).collect();
        while delivered.is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "no delivery within 10s"
            );
            let mut out = Outbox::new(1);
            if let Some(m) = inbox.pop_front() {
                delivered.extend(abc.on_message(0, m, &mut rng, &mut out));
            } else {
                // Idle: the verdict is still at the pool; tick to drain.
                std::thread::sleep(std::time::Duration::from_millis(1));
                delivered.extend(abc.on_tick(&mut rng, &mut out));
            }
            inbox.extend(out.into_iter().map(|(_, m)| m));
        }
        assert_eq!(delivered[0].payload, b"offload".to_vec());
        pool.shutdown();
        let stats = pool.stats();
        assert!(stats.ran_off_thread >= 1, "verification left the thread");
        assert_eq!(stats.ran_inline, 0);
    }

    #[test]
    #[should_panic(expected = "reserved as fillers")]
    fn empty_broadcast_panics() {
        let mut ns = nodes(4, 1, 80);
        let mut rng = SeededRng::new(1);
        let n = ns[0].abc.n();
        ns[0]
            .abc
            .broadcast(Vec::new(), &mut rng, &mut Outbox::new(n));
    }
}
