//! Shared plumbing for the protocol stack: per-server context, instance
//! tags, and sub-protocol outboxes.

use sintra_adversary::party::PartyId;
use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::hash::Sha256;
use sintra_crypto::rng::SeededRng;
use std::sync::Arc;

/// A 32-byte message digest.
pub type Digest = [u8; 32];

/// Computes the digest of a payload.
pub fn digest(payload: &[u8]) -> Digest {
    Sha256::digest(payload)
}

/// Messages queued by a sub-protocol, addressed by party.
pub type Outbox<M> = Vec<(PartyId, M)>;

/// Queues `msg` for every party in `0..n` (including self; protocols
/// count their own votes through the same path as everyone else's).
pub fn send_all<M: Clone>(out: &mut Outbox<M>, n: usize, msg: M) {
    for to in 0..n {
        out.push((to, msg.clone()));
    }
}

/// A hierarchical protocol-instance tag. Tags separate the cryptographic
/// domains of concurrent instances: signature shares, coin names, and
/// transcripts all bind the tag, so messages cannot be replayed across
/// instances (or across layers of the stack).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(Vec<u8>);

impl Tag {
    /// A root tag for a top-level instance.
    pub fn root(name: &str) -> Tag {
        let mut v = Vec::with_capacity(name.len() + 1);
        v.extend_from_slice(name.as_bytes());
        Tag(v)
    }

    /// Derives a child tag (unambiguous framing).
    pub fn child(&self, label: &str, index: u64) -> Tag {
        let mut v = self.0.clone();
        v.push(b'/');
        v.extend_from_slice(label.as_bytes());
        v.push(b':');
        v.extend_from_slice(&index.to_be_bytes());
        Tag(v)
    }

    /// The raw tag bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Builds the byte string signed/hashed for this tag and context
    /// fields.
    pub fn message(&self, fields: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len() + 16);
        out.extend_from_slice(&(self.0.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.0);
        for f in fields {
            out.extend_from_slice(&(f.len() as u64).to_be_bytes());
            out.extend_from_slice(f);
        }
        out
    }
}

impl core::fmt::Debug for Tag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Tag(")?;
        for b in &self.0 {
            if b.is_ascii_graphic() {
                write!(f, "{}", *b as char)?;
            } else {
                write!(f, "\\x{:02x}", b)?;
            }
        }
        write!(f, ")")
    }
}

/// Per-server protocol context: identity, public parameters, secret key
/// bundle, and a deterministic RNG stream for nonces.
#[derive(Clone, Debug)]
pub struct Context {
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    /// Nonce randomness (deterministic per seed for replayable runs).
    pub rng: SeededRng,
}

impl Context {
    /// Creates the context for one server.
    pub fn new(public: Arc<PublicParameters>, bundle: Arc<ServerKeyBundle>, seed: u64) -> Self {
        let me = bundle.party() as u64;
        Context {
            public,
            bundle,
            rng: SeededRng::new(seed ^ me.wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// This server's party id.
    pub fn me(&self) -> PartyId {
        self.bundle.party()
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.public.n()
    }

    /// The public parameters.
    pub fn public(&self) -> &PublicParameters {
        &self.public
    }

    /// The secret key bundle.
    pub fn bundle(&self) -> &ServerKeyBundle {
        &self.bundle
    }

    /// The trust structure.
    pub fn structure(&self) -> &TrustStructure {
        self.public.structure()
    }
}

/// Builds the `n` per-server contexts for a dealt system (test/bench
/// helper).
pub fn contexts(
    public: PublicParameters,
    bundles: Vec<ServerKeyBundle>,
    seed: u64,
) -> Vec<Context> {
    let public = Arc::new(public);
    bundles
        .into_iter()
        .map(|b| Context::new(Arc::clone(&public), Arc::new(b), seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;

    #[test]
    fn tags_are_unambiguous() {
        let a = Tag::root("abc").child("round", 1).child("e", 2);
        let b = Tag::root("abc").child("round", 12).child("e", 2);
        assert_ne!(a, b);
        assert_ne!(a.message(&[b"x"]), b.message(&[b"x"]));
        assert_ne!(a.message(&[b"x", b"y"]), a.message(&[b"xy"]));
        assert!(format!("{a:?}").contains("abc"));
    }

    #[test]
    fn context_construction() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(1);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let ctxs = contexts(public, bundles, 7);
        assert_eq!(ctxs.len(), 4);
        for (i, c) in ctxs.iter().enumerate() {
            assert_eq!(c.me(), i);
            assert_eq!(c.n(), 4);
        }
        // RNG streams differ per party.
        let mut a = ctxs[0].rng.clone();
        let mut b = ctxs[1].rng.clone();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn send_all_includes_self() {
        let mut out: Outbox<u8> = Vec::new();
        send_all(&mut out, 3, 9);
        assert_eq!(out, vec![(0, 9), (1, 9), (2, 9)]);
    }

    #[test]
    fn digest_is_stable() {
        assert_eq!(digest(b"x"), digest(b"x"));
        assert_ne!(digest(b"x"), digest(b"y"));
    }
}
