//! Shared plumbing for the protocol stack: per-server context, instance
//! tags, and sub-protocol outboxes.

use sintra_adversary::party::{PartyId, PartySet};
use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::hash::Sha256;
use sintra_crypto::rng::SeededRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A 32-byte message digest.
pub type Digest = [u8; 32];

/// Stable lowercase names for wire-message variants, keyed into
/// per-kind `<layer>.sent.<kind>` / `<layer>.recv.<kind>` counters by
/// the observability layer. Implemented by every protocol's message
/// enum.
pub trait WireKind {
    /// The variant's stable metric-name component (e.g. `"echo"`).
    fn kind(&self) -> &'static str;
}

/// Counts every wire message appended to `fx` past `mark` under the
/// layer's `sent.<kind>` counters. Instrumented node adapters call
/// this after delegating to their uninstrumented handler.
pub(crate) fn count_sent<M: WireKind, O>(
    ctx: &sintra_net::protocol::Context,
    layer: sintra_obs::Layer,
    fx: &sintra_net::protocol::Effects<M, O>,
    mark: usize,
) {
    for (_, m) in &fx.sends()[mark..] {
        ctx.obs.inc2(layer, "sent", m.kind());
    }
}

/// Computes the digest of a payload.
pub fn digest(payload: &[u8]) -> Digest {
    Sha256::digest(payload)
}

/// Messages queued by a sub-protocol, addressed by party.
///
/// The outbox knows the group size of the instance that writes into it,
/// so protocols broadcast with [`Outbox::broadcast`] instead of every
/// call site re-supplying its own `n` — the duplicated-`n` parameter of
/// the old `send_all` free function is gone. An outbox iterates as
/// `(PartyId, M)` pairs, oldest first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outbox<M> {
    n: usize,
    msgs: Vec<(PartyId, M)>,
}

impl<M> Outbox<M> {
    /// An empty outbox for a group of `n` parties.
    pub fn new(n: usize) -> Self {
        Outbox {
            n,
            msgs: Vec::new(),
        }
    }

    /// The group size this outbox was built for.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Queues `msg` for one party (including self).
    pub fn send(&mut self, to: PartyId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Queues `msg` for every party in the group (including self;
    /// protocols count their own votes through the same path as
    /// everyone else's).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        assert!(
            self.n > 0,
            "Outbox built for an empty group; construct with Outbox::new(n)"
        );
        for to in 0..self.n {
            self.msgs.push((to, msg.clone()));
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The queued messages, in queueing order.
    pub fn as_slice(&self) -> &[(PartyId, M)] {
        &self.msgs
    }

    /// Iterates over the queued messages without consuming them.
    pub fn iter(&self) -> core::slice::Iter<'_, (PartyId, M)> {
        self.msgs.iter()
    }

    /// Discards the queued messages, keeping the group size.
    pub fn clear(&mut self) {
        self.msgs.clear();
    }

    /// Drains the queued messages, leaving the outbox empty (and its
    /// group size intact).
    pub fn drain(&mut self) -> Vec<(PartyId, M)> {
        core::mem::take(&mut self.msgs)
    }

    /// Consumes the outbox into its queued messages.
    pub fn into_vec(self) -> Vec<(PartyId, M)> {
        self.msgs
    }
}

impl<M> IntoIterator for Outbox<M> {
    type Item = (PartyId, M);
    type IntoIter = std::vec::IntoIter<(PartyId, M)>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.into_iter()
    }
}

impl<'a, M> IntoIterator for &'a Outbox<M> {
    type Item = &'a (PartyId, M);
    type IntoIter = core::slice::Iter<'a, (PartyId, M)>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

/// Queues `msg` for every party in `0..n`.
#[deprecated(
    since = "0.1.0",
    note = "use `Outbox::broadcast(msg)`; the outbox knows its group size"
)]
pub fn send_all<M: Clone>(out: &mut Outbox<M>, n: usize, msg: M) {
    let _ = n;
    out.broadcast(msg);
}

/// A hierarchical protocol-instance tag. Tags separate the cryptographic
/// domains of concurrent instances: signature shares, coin names, and
/// transcripts all bind the tag, so messages cannot be replayed across
/// instances (or across layers of the stack).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(Vec<u8>);

impl Tag {
    /// A root tag for a top-level instance.
    pub fn root(name: &str) -> Tag {
        let mut v = Vec::with_capacity(name.len() + 1);
        v.extend_from_slice(name.as_bytes());
        Tag(v)
    }

    /// Derives a child tag (unambiguous framing).
    pub fn child(&self, label: &str, index: u64) -> Tag {
        let mut v = self.0.clone();
        v.push(b'/');
        v.extend_from_slice(label.as_bytes());
        v.push(b':');
        v.extend_from_slice(&index.to_be_bytes());
        Tag(v)
    }

    /// The raw tag bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Builds the byte string signed/hashed for this tag and context
    /// fields.
    pub fn message(&self, fields: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len() + 16);
        out.extend_from_slice(&(self.0.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.0);
        for f in fields {
            out.extend_from_slice(&(f.len() as u64).to_be_bytes());
            out.extend_from_slice(f);
        }
        out
    }
}

impl core::fmt::Debug for Tag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Tag(")?;
        for b in &self.0 {
            if b.is_ascii_graphic() {
                write!(f, "{}", *b as char)?;
            } else {
                write!(f, "\\x{:02x}", b)?;
            }
        }
        write!(f, ")")
    }
}

/// Quorum-time batch verification tracker for threshold shares.
///
/// The seed protocols verified every share's validity proof on arrival.
/// With random-linear-combination batch verification it is much cheaper
/// to accept shares *structurally*, wait until a candidate quorum is
/// present, and check the whole set with one multi-exponentiation. This
/// tracker holds the unverified pool and the settled set, and remembers
/// culprits: a party whose share fails settlement is banned, and later
/// shares from banned parties are dropped on arrival — a Byzantine
/// sender gets exactly one chance to poison a batch, so the expensive
/// per-share fallback runs at most once per faulty party.
///
/// The ban set doubles as the tracker's per-sender verdict cache: a
/// negative verdict for a sender is permanent and is checked in O(1) at
/// [`insert`](Self::insert) (positive verdicts cannot be cached across
/// batches — a later share from the same sender is different data, and
/// within one tracker a party contributes at most one share anyway).
/// Protocols that spin up one tracker per round seed each new round
/// with [`with_bans`](Self::with_bans) from an instance-wide culprit
/// set, so a sender attributed in round `r` costs zero verification
/// work in every round after `r` instead of re-poisoning each fresh
/// batch — without that propagation a spamming Byzantine sender forces
/// a full per-share fallback pass per round.
#[derive(Clone, Debug)]
pub struct BatchedShares<S> {
    pending: BTreeMap<PartyId, S>,
    verified: BTreeMap<PartyId, S>,
    banned: PartySet,
}

impl<S> Default for BatchedShares<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> BatchedShares<S> {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::with_bans(PartySet::new())
    }

    /// An empty tracker pre-seeded with known culprits: shares from
    /// `banned` parties are rejected on arrival without any
    /// verification. This is how per-round trackers inherit the
    /// instance-wide verdict cache (see the type docs).
    pub fn with_bans(banned: PartySet) -> Self {
        BatchedShares {
            pending: BTreeMap::new(),
            verified: BTreeMap::new(),
            banned,
        }
    }

    /// Bans `party` outright: its pending share (if any) is dropped and
    /// future shares are rejected on arrival. Used to propagate a
    /// culprit verdict from a sibling tracker (another round or phase
    /// of the same instance) — an invalid share proves its sender
    /// Byzantine everywhere, not just in the batch that caught it.
    /// Returns whether a pending share was dropped, so callers that
    /// mirror membership in auxiliary party sets can cull those too.
    pub fn ban(&mut self, party: PartyId) -> bool {
        let dropped = self.pending.remove(&party).is_some();
        self.banned.insert(party);
        dropped
    }

    /// Records a share from `party` (first share wins; banned parties
    /// and duplicates are ignored). Returns whether it was stored.
    pub fn insert(&mut self, party: PartyId, share: S) -> bool {
        if self.banned.contains(party)
            || self.pending.contains_key(&party)
            || self.verified.contains_key(&party)
        {
            return false;
        }
        self.pending.insert(party, share);
        true
    }

    /// Parties with a recorded (pending or settled) share — the
    /// candidate set for quorum checks.
    pub fn holders(&self) -> PartySet {
        let mut set = PartySet::new();
        for p in self.pending.keys().chain(self.verified.keys()) {
            set.insert(*p);
        }
        set
    }

    /// Whether any shares still await verification.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// The settled shares, by party.
    pub fn verified(&self) -> &BTreeMap<PartyId, S> {
        &self.verified
    }

    /// Parties banned by earlier settlements.
    pub fn banned(&self) -> &PartySet {
        &self.banned
    }

    /// Batch-verifies all pending shares via `verify` (a closure over a
    /// scheme's `verify_shares`, returning the culprit parties on
    /// failure). Culprits are banned and their shares dropped; the
    /// survivors move to the settled set. Returns the banned-this-call
    /// culprits, empty when the whole batch was clean.
    pub fn settle(&mut self, verify: impl FnOnce(&[S]) -> Result<(), Vec<PartyId>>) -> Vec<PartyId>
    where
        S: Clone,
    {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let batch: Vec<S> = self.pending.values().cloned().collect();
        let culprits = match verify(&batch) {
            Ok(()) => Vec::new(),
            Err(culprits) => culprits,
        };
        for culprit in &culprits {
            self.pending.remove(culprit);
            self.banned.insert(*culprit);
        }
        self.verified.append(&mut self.pending);
        culprits
    }

    /// Snapshot of the pending pool, for handing a verification batch
    /// to an off-thread worker. The pool is left untouched; pair with
    /// [`BatchedShares::apply_verdict`] once the worker reports back.
    pub fn pending_snapshot(&self) -> Vec<(PartyId, S)>
    where
        S: Clone,
    {
        self.pending.iter().map(|(p, s)| (*p, s.clone())).collect()
    }

    /// Applies an off-thread verification verdict for the batch that
    /// was snapshotted as `parties`: culprits are banned and dropped,
    /// the rest of the snapshot moves to the settled set. Shares that
    /// arrived after the snapshot stay pending for a later batch.
    pub fn apply_verdict(&mut self, parties: &[PartyId], culprits: &[PartyId]) {
        for culprit in culprits {
            self.pending.remove(culprit);
            self.banned.insert(*culprit);
        }
        for party in parties {
            if culprits.contains(party) {
                continue;
            }
            if let Some(share) = self.pending.remove(party) {
                self.verified.insert(*party, share);
            }
        }
    }
}

/// Per-server protocol context: identity, public parameters, secret key
/// bundle, and a deterministic RNG stream for nonces.
#[derive(Clone, Debug)]
pub struct Context {
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    /// Nonce randomness (deterministic per seed for replayable runs).
    pub rng: SeededRng,
}

impl Context {
    /// Creates the context for one server.
    pub fn new(public: Arc<PublicParameters>, bundle: Arc<ServerKeyBundle>, seed: u64) -> Self {
        let me = bundle.party() as u64;
        Context {
            public,
            bundle,
            rng: SeededRng::new(seed ^ me.wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// This server's party id.
    pub fn me(&self) -> PartyId {
        self.bundle.party()
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.public.n()
    }

    /// The public parameters.
    pub fn public(&self) -> &PublicParameters {
        &self.public
    }

    /// The secret key bundle.
    pub fn bundle(&self) -> &ServerKeyBundle {
        &self.bundle
    }

    /// The trust structure.
    pub fn structure(&self) -> &TrustStructure {
        self.public.structure()
    }
}

/// Builds the `n` per-server contexts for a dealt system (test/bench
/// helper).
pub fn contexts(
    public: PublicParameters,
    bundles: Vec<ServerKeyBundle>,
    seed: u64,
) -> Vec<Context> {
    let public = Arc::new(public);
    bundles
        .into_iter()
        .map(|b| Context::new(Arc::clone(&public), Arc::new(b), seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;

    #[test]
    fn tags_are_unambiguous() {
        let a = Tag::root("abc").child("round", 1).child("e", 2);
        let b = Tag::root("abc").child("round", 12).child("e", 2);
        assert_ne!(a, b);
        assert_ne!(a.message(&[b"x"]), b.message(&[b"x"]));
        assert_ne!(a.message(&[b"x", b"y"]), a.message(&[b"xy"]));
        assert!(format!("{a:?}").contains("abc"));
    }

    #[test]
    fn context_construction() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(1);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let ctxs = contexts(public, bundles, 7);
        assert_eq!(ctxs.len(), 4);
        for (i, c) in ctxs.iter().enumerate() {
            assert_eq!(c.me(), i);
            assert_eq!(c.n(), 4);
        }
        // RNG streams differ per party.
        let mut a = ctxs[0].rng.clone();
        let mut b = ctxs[1].rng.clone();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn broadcast_includes_self() {
        let mut out: Outbox<u8> = Outbox::new(3);
        out.broadcast(9);
        assert_eq!(out.as_slice(), &[(0, 9), (1, 9), (2, 9)]);
        assert_eq!(out.group_size(), 3);
        out.send(1, 7);
        assert_eq!(out.len(), 4);
        assert_eq!(out.drain().len(), 4);
        assert!(out.is_empty());
        assert_eq!(out.group_size(), 3, "drain keeps the group size");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_send_all_still_broadcasts() {
        let mut out: Outbox<u8> = Outbox::new(2);
        #[allow(deprecated)]
        send_all(&mut out, 2, 5);
        assert_eq!(out.as_slice(), &[(0, 5), (1, 5)]);
    }

    #[test]
    fn digest_is_stable() {
        assert_eq!(digest(b"x"), digest(b"x"));
        assert_ne!(digest(b"x"), digest(b"y"));
    }

    #[test]
    fn batched_shares_dedups_and_tracks_holders() {
        let mut tracker: BatchedShares<u8> = BatchedShares::new();
        assert!(tracker.insert(1, 10));
        assert!(!tracker.insert(1, 11), "first share per party wins");
        assert!(tracker.insert(2, 20));
        assert!(tracker.has_pending());
        let holders = tracker.holders();
        assert!(holders.contains(1) && holders.contains(2) && holders.len() == 2);
        // A clean settlement moves everything to the verified set.
        assert!(tracker.settle(|_| Ok(())).is_empty());
        assert!(!tracker.has_pending());
        assert_eq!(tracker.verified().len(), 2);
        // Holders still counts settled shares; duplicates stay rejected.
        assert_eq!(tracker.holders().len(), 2);
        assert!(!tracker.insert(2, 21));
    }

    #[test]
    fn batched_shares_bans_culprits_once() {
        let mut tracker: BatchedShares<u8> = BatchedShares::new();
        tracker.insert(0, 1);
        tracker.insert(3, 99);
        // Settlement attributes party 3; its share is dropped, the
        // survivor is settled.
        let culprits = tracker.settle(|batch| {
            assert_eq!(batch, &[1, 99]);
            Err(vec![3])
        });
        assert_eq!(culprits, vec![3]);
        assert!(tracker.banned().contains(3));
        assert_eq!(tracker.verified().len(), 1);
        assert!(tracker.verified().contains_key(&0));
        // A banned party never re-enters, so it poisons at most one
        // batch.
        assert!(!tracker.insert(3, 100));
        assert!(!tracker.holders().contains(3));
        // Settling with nothing pending is a no-op.
        assert!(tracker.settle(|_| Err(vec![0])).is_empty());
        assert_eq!(tracker.verified().len(), 1);
    }

    #[test]
    fn batched_shares_inherit_and_propagate_bans() {
        let mut known = PartySet::new();
        known.insert(2);
        // A tracker seeded with a known culprit rejects it on arrival:
        // no share stored, so no verification (batch or fallback) ever
        // sees this sender again.
        let mut tracker: BatchedShares<u8> = BatchedShares::with_bans(known);
        assert!(!tracker.insert(2, 7));
        assert!(tracker.insert(0, 1));
        assert!(!tracker.has_pending() || tracker.pending_snapshot().len() == 1);
        // A cross-tracker ban drops the pending share and blocks
        // re-entry, but leaves already-verified shares alone.
        assert!(tracker.insert(3, 9));
        tracker.settle(|_| Ok(())).is_empty().then_some(()).unwrap();
        assert!(tracker.insert(4, 4));
        tracker.ban(4);
        tracker.ban(3);
        assert!(!tracker.insert(4, 5));
        assert!(tracker.verified().contains_key(&3), "verified share kept");
        assert!(!tracker.holders().contains(4));
    }
}
