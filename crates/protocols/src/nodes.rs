//! Public [`Protocol`] adapters for the core stack — one simulator node
//! per protocol instance.
//!
//! The per-protocol test modules keep private wrappers of the same
//! shape; the adapters here are the *public* ones, consumed by the
//! fault-injection campaigns (`sintra-net`'s `campaign` module), the
//! adversarial integration tests, and the soak binary in `sintra-bench`.
//! Each comes with a `*_nodes` builder that deals a fresh key setup for
//! a seed, so a campaign can rebuild bit-identical replicas per case.

use crate::abba::{Abba, AbbaMessage};
use crate::cbc::{CbcMessage, ConsistentBroadcast};
use crate::common::{contexts, count_sent, Outbox, Tag, WireKind};
use crate::mvba::{Mvba, MvbaMessage, ValidityPredicate};
use crate::rbc::{RbcMessage, ReliableBroadcast};
use sintra_adversary::party::PartyId;
use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::Dealer;
use sintra_crypto::rng::SeededRng;
use sintra_net::protocol::{Context, Effects, Protocol};
use sintra_obs::{Event, EventKind, Layer};
use std::sync::Arc;

/// One reliable-broadcast instance as a simulator node.
#[derive(Debug)]
pub struct RbcNode {
    rbc: ReliableBroadcast,
}

impl RbcNode {
    /// Wraps an instance.
    pub fn new(rbc: ReliableBroadcast) -> Self {
        RbcNode { rbc }
    }

    /// Read access to the instance.
    pub fn instance(&self) -> &ReliableBroadcast {
        &self.rbc
    }
}

impl Protocol for RbcNode {
    type Message = RbcMessage;
    type Input = Vec<u8>;
    type Output = Vec<u8>;

    fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<RbcMessage, Vec<u8>>) {
        let mut out = Outbox::new(self.rbc.n());
        self.rbc.broadcast(input, &mut out);
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: RbcMessage,
        fx: &mut Effects<RbcMessage, Vec<u8>>,
    ) {
        let mut out = Outbox::new(self.rbc.n());
        if let Some(delivered) = self.rbc.on_message(from, msg, &mut out) {
            fx.output(delivered);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: Vec<u8>,
        fx: &mut Effects<RbcMessage, Vec<u8>>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let mark = fx.sends().len();
        self.on_input(input, fx);
        count_sent(ctx, Layer::Rbc, fx, mark);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: RbcMessage,
        fx: &mut Effects<RbcMessage, Vec<u8>>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        ctx.obs.inc2(Layer::Rbc, "recv", msg.kind());
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        count_sent(ctx, Layer::Rbc, fx, s0);
        for _ in o0..fx.outputs().len() {
            ctx.obs.inc(Layer::Rbc, "delivered");
            ctx.obs
                .event(Event::new(Layer::Rbc, EventKind::Deliver, ctx.me).at(ctx.at));
        }
    }
}

/// Builds `n` connected [`RbcNode`]s for one broadcast from `sender`.
pub fn rbc_nodes(n: usize, t: usize, sender: PartyId) -> Vec<RbcNode> {
    let ts = TrustStructure::threshold(n, t).expect("valid (n, t)");
    (0..n)
        .map(|me| RbcNode::new(ReliableBroadcast::new(me, ts.clone(), sender)))
        .collect()
}

/// One consistent-broadcast instance as a simulator node; outputs the
/// delivered payload.
#[derive(Debug)]
pub struct CbcNode {
    cbc: ConsistentBroadcast,
    rng: SeededRng,
}

impl CbcNode {
    /// Wraps an instance with its nonce RNG.
    pub fn new(cbc: ConsistentBroadcast, rng: SeededRng) -> Self {
        CbcNode { cbc, rng }
    }

    /// Read access to the instance.
    pub fn instance(&self) -> &ConsistentBroadcast {
        &self.cbc
    }
}

impl Protocol for CbcNode {
    type Message = CbcMessage;
    type Input = Vec<u8>;
    type Output = Vec<u8>;

    fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<CbcMessage, Vec<u8>>) {
        let mut out = Outbox::new(self.cbc.n());
        self.cbc.broadcast(input, &mut out);
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: CbcMessage,
        fx: &mut Effects<CbcMessage, Vec<u8>>,
    ) {
        let mut out = Outbox::new(self.cbc.n());
        if let Some(v) = self.cbc.on_message(from, msg, &mut self.rng, &mut out) {
            fx.output(v.payload);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: Vec<u8>,
        fx: &mut Effects<CbcMessage, Vec<u8>>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let mark = fx.sends().len();
        self.on_input(input, fx);
        count_sent(ctx, Layer::Cbc, fx, mark);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: CbcMessage,
        fx: &mut Effects<CbcMessage, Vec<u8>>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        ctx.obs.inc2(Layer::Cbc, "recv", msg.kind());
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        count_sent(ctx, Layer::Cbc, fx, s0);
        for _ in o0..fx.outputs().len() {
            ctx.obs.inc(Layer::Cbc, "delivered");
            ctx.obs
                .event(Event::new(Layer::Cbc, EventKind::Deliver, ctx.me).at(ctx.at));
        }
    }
}

/// Builds `n` connected [`CbcNode`]s for one broadcast from `sender`.
pub fn cbc_nodes(n: usize, t: usize, sender: PartyId, seed: u64) -> Vec<CbcNode> {
    let ts = TrustStructure::threshold(n, t).expect("valid (n, t)");
    let mut rng = SeededRng::new(seed);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    contexts(public, bundles, seed)
        .into_iter()
        .map(|c| {
            CbcNode::new(
                ConsistentBroadcast::new(
                    Tag::root("cbc"),
                    sender,
                    Arc::new(c.public().clone()),
                    Arc::new(c.bundle().clone()),
                ),
                c.rng.clone(),
            )
        })
        .collect()
}

/// One unbiased binary-agreement instance as a simulator node.
#[derive(Debug)]
pub struct AbbaNode {
    abba: Abba<()>,
    rng: SeededRng,
}

impl AbbaNode {
    /// Wraps an instance with its nonce RNG.
    pub fn new(abba: Abba<()>, rng: SeededRng) -> Self {
        AbbaNode { abba, rng }
    }

    /// Read access to the instance.
    pub fn instance(&self) -> &Abba<()> {
        &self.abba
    }

    /// Records any decision appended past `mark`: the `abba.rounds`
    /// counter (total rounds spent to decide), the deciding-round
    /// histogram, and a `Decide` trace event.
    fn record_decisions(&self, ctx: &Context, fx: &Effects<AbbaMessage<()>, bool>, mark: usize) {
        for d in &fx.outputs()[mark..] {
            let round = self.abba.round();
            ctx.obs.inc(Layer::Abba, "decided");
            ctx.obs.add(Layer::Abba, "rounds", round);
            ctx.obs.observe(Layer::Abba, "decide_round", round);
            ctx.obs.event(
                Event::new(Layer::Abba, EventKind::Decide, ctx.me)
                    .round(round.min(u32::MAX as u64) as u32)
                    .value(*d as u64)
                    .at(ctx.at),
            );
        }
    }
}

impl Protocol for AbbaNode {
    type Message = AbbaMessage<()>;
    type Input = bool;
    type Output = bool;

    fn on_input(&mut self, input: bool, fx: &mut Effects<AbbaMessage<()>, bool>) {
        let mut out = Outbox::new(self.abba.n());
        if let Some(d) = self.abba.propose(input, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: AbbaMessage<()>,
        fx: &mut Effects<AbbaMessage<()>, bool>,
    ) {
        let mut out = Outbox::new(self.abba.n());
        if let Some(d) = self.abba.on_message(from, msg, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: bool,
        fx: &mut Effects<AbbaMessage<()>, bool>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_input(input, fx);
        count_sent(ctx, Layer::Abba, fx, s0);
        self.record_decisions(ctx, fx, o0);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: AbbaMessage<()>,
        fx: &mut Effects<AbbaMessage<()>, bool>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        ctx.obs.inc2(Layer::Abba, "recv", msg.kind());
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        count_sent(ctx, Layer::Abba, fx, s0);
        self.record_decisions(ctx, fx, o0);
    }
}

/// Builds `n` connected [`AbbaNode`]s for one agreement instance.
pub fn abba_nodes(n: usize, t: usize, seed: u64) -> Vec<AbbaNode> {
    let ts = TrustStructure::threshold(n, t).expect("valid (n, t)");
    let mut rng = SeededRng::new(seed);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    contexts(public, bundles, seed)
        .into_iter()
        .map(|c| {
            AbbaNode::new(
                Abba::new(
                    Tag::root("abba"),
                    Arc::new(c.public().clone()),
                    Arc::new(c.bundle().clone()),
                ),
                c.rng.clone(),
            )
        })
        .collect()
}

/// One multi-valued agreement instance as a simulator node.
#[derive(Debug)]
pub struct MvbaNode {
    mvba: Mvba,
    rng: SeededRng,
}

impl MvbaNode {
    /// Wraps an instance with its nonce RNG.
    pub fn new(mvba: Mvba, rng: SeededRng) -> Self {
        MvbaNode { mvba, rng }
    }

    /// Read access to the instance.
    pub fn instance(&self) -> &Mvba {
        &self.mvba
    }

    /// Records a decision appended past `mark` plus the election-depth
    /// and vote-buffer gauges (the lookahead bound the protocol
    /// enforces against attacker-chosen election numbers).
    fn record_decisions(&self, ctx: &Context, fx: &Effects<MvbaMessage, Vec<u8>>, mark: usize) {
        ctx.obs
            .gauge_set(Layer::Mvba, "elections", self.mvba.elections());
        ctx.obs.gauge_set(
            Layer::Mvba,
            "buffered_votes",
            self.mvba.buffered_votes() as u64,
        );
        for _ in &fx.outputs()[mark..] {
            ctx.obs.inc(Layer::Mvba, "decided");
            ctx.obs
                .observe(Layer::Mvba, "decide_elections", self.mvba.elections());
            ctx.obs.event(
                Event::new(Layer::Mvba, EventKind::Decide, ctx.me)
                    .instance(self.mvba.elections().min(u32::MAX as u64) as u32)
                    .at(ctx.at),
            );
        }
    }
}

impl Protocol for MvbaNode {
    type Message = MvbaMessage;
    type Input = Vec<u8>;
    type Output = Vec<u8>;

    fn on_input(&mut self, input: Vec<u8>, fx: &mut Effects<MvbaMessage, Vec<u8>>) {
        let mut out = Outbox::new(self.mvba.n());
        if let Some(d) = self.mvba.propose(input, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: MvbaMessage,
        fx: &mut Effects<MvbaMessage, Vec<u8>>,
    ) {
        let mut out = Outbox::new(self.mvba.n());
        if let Some(d) = self.mvba.on_message(from, msg, &mut self.rng, &mut out) {
            fx.output(d);
        }
        for (to, m) in out {
            fx.send(to, m);
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: Vec<u8>,
        fx: &mut Effects<MvbaMessage, Vec<u8>>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_input(input, fx);
        for (_, m) in &fx.sends()[s0..] {
            crate::mvba::observe_wire(ctx, "sent", m);
        }
        self.record_decisions(ctx, fx, o0);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: MvbaMessage,
        fx: &mut Effects<MvbaMessage, Vec<u8>>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        crate::mvba::observe_wire(ctx, "recv", &msg);
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        for (_, m) in &fx.sends()[s0..] {
            crate::mvba::observe_wire(ctx, "sent", m);
        }
        self.record_decisions(ctx, fx, o0);
    }
}

/// Builds `n` connected [`MvbaNode`]s under `predicate`.
pub fn mvba_nodes(n: usize, t: usize, seed: u64, predicate: ValidityPredicate) -> Vec<MvbaNode> {
    let ts = TrustStructure::threshold(n, t).expect("valid (n, t)");
    let mut rng = SeededRng::new(seed);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    contexts(public, bundles, seed)
        .into_iter()
        .map(|c| {
            MvbaNode::new(
                Mvba::new(
                    Tag::root("mvba"),
                    Arc::new(c.public().clone()),
                    Arc::new(c.bundle().clone()),
                    Arc::clone(&predicate),
                ),
                c.rng.clone(),
            )
        })
        .collect()
}
