//! Failure-detector baseline: rotating-coordinator atomic broadcast.
//!
//! The comparison system for experiment **E1 (Figure 1)**. It models
//! the deterministic, failure-detector-driven protocol class the paper
//! surveys (SecureRing, DGG00, and in spirit CL99): a coordinator
//! sequences requests, replicas acknowledge, deliveries need a core
//! quorum of acks, and *timeouts* drive view changes when the
//! coordinator looks dead.
//!
//! §2.2's argument is exactly about this class: an adversary that merely
//! *delays* traffic from each coordinator in turn — cheaper than
//! subverting any machine — makes the failure detector uselessly
//! suspicious, so the system churns through views without delivering,
//! while safety-preserving but liveness-dead. The randomized SINTRA
//! stack has no timeout to attack. The experiment drives both under the
//! same [`sintra_net::sim::TargetedDelayScheduler`] and counts
//! deliveries.
//!
//! This baseline intentionally implements only the liveness-relevant
//! skeleton (order / ack / suspect / view change with per-view quorum
//! delivery); it is **not** a full PBFT and is not meant as a safe
//! replication system.

use crate::common::{digest, Digest, WireKind};
use sintra_adversary::party::{PartyId, PartySet};
use sintra_adversary::structure::TrustStructure;
use sintra_net::protocol::{Context, Effects, Protocol};
use sintra_obs::{Event, EventKind, Layer};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Baseline wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum FdMessage {
    /// Client payload dissemination (enters every queue).
    Push(Vec<u8>),
    /// Coordinator's sequencing decision.
    Order {
        /// View the coordinator believes it leads.
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// The payload.
        payload: Vec<u8>,
    },
    /// Replica acknowledgment.
    Ack {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Payload digest.
        digest: Digest,
    },
    /// Timeout-driven suspicion of the view's coordinator.
    Suspect {
        /// The suspected view.
        view: u64,
    },
}

impl WireKind for FdMessage {
    fn kind(&self) -> &'static str {
        match self {
            FdMessage::Push(_) => "push",
            FdMessage::Order { .. } => "order",
            FdMessage::Ack { .. } => "ack",
            FdMessage::Suspect { .. } => "suspect",
        }
    }
}

/// One delivery from the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdDeliver {
    /// Sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: Vec<u8>,
}

/// Rotating-coordinator atomic broadcast replica with a timeout failure
/// detector (driven by [`Protocol::on_tick`]).
#[derive(Debug)]
pub struct FdAbcNode {
    me: PartyId,
    n: usize,
    structure: TrustStructure,
    /// Ticks without progress before suspecting the coordinator.
    timeout_ticks: u64,
    view: u64,
    queue: VecDeque<Vec<u8>>,
    queued_digests: HashSet<Digest>,
    delivered_digests: HashSet<Digest>,
    /// Payloads ordered by coordinators, per (view, seq).
    orders: HashMap<(u64, u64), Vec<u8>>,
    /// Ack voters per (view, seq, digest).
    acks: HashMap<(u64, u64, Digest), PartySet>,
    /// Suspect voters per view.
    suspects: BTreeMap<u64, PartySet>,
    /// Delivered log (in-order emission).
    delivered: BTreeMap<u64, Vec<u8>>,
    next_emit: u64,
    /// Coordinator bookkeeping: next sequence number to assign.
    next_assign: u64,
    /// Sequences I ordered in the current view (coordinator only).
    my_orders: HashSet<u64>,
    /// Views I already broadcast a suspicion for (one per view).
    suspected_views: HashSet<u64>,
    ticks_since_progress: u64,
    /// Total view changes (observability for the experiment).
    pub view_changes: u64,
}

impl FdAbcNode {
    /// Creates a replica. `timeout_ticks` is the failure-detector
    /// timeout in simulator ticks.
    pub fn new(me: PartyId, structure: TrustStructure, timeout_ticks: u64) -> Self {
        let n = structure.n();
        FdAbcNode {
            me,
            n,
            structure,
            timeout_ticks,
            view: 0,
            queue: VecDeque::new(),
            queued_digests: HashSet::new(),
            delivered_digests: HashSet::new(),
            orders: HashMap::new(),
            acks: HashMap::new(),
            suspects: BTreeMap::new(),
            delivered: BTreeMap::new(),
            next_emit: 0,
            next_assign: 0,
            my_orders: HashSet::new(),
            suspected_views: HashSet::new(),
            ticks_since_progress: 0,
            view_changes: 0,
        }
    }

    /// Number of payloads delivered.
    pub fn delivered_count(&self) -> u64 {
        self.next_emit
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    fn coordinator(&self, view: u64) -> PartyId {
        (view % self.n as u64) as PartyId
    }

    fn enqueue(&mut self, payload: Vec<u8>) {
        let d = digest(&payload);
        if payload.is_empty()
            || self.delivered_digests.contains(&d)
            || !self.queued_digests.insert(d)
        {
            return;
        }
        self.queue.push_back(payload);
    }

    /// Coordinator work: order the queue head if nothing outstanding.
    fn coordinate(&mut self, fx: &mut Effects<FdMessage, FdDeliver>) {
        if self.coordinator(self.view) != self.me {
            return;
        }
        if self.next_assign < self.next_emit {
            self.next_assign = self.next_emit;
        }
        // Order one payload at a time per assigned slot.
        while self.my_orders.is_empty() && !self.queue.is_empty() {
            let payload = self.queue.front().cloned().expect("nonempty");
            let seq = self.next_assign;
            self.my_orders.insert(seq);
            fx.broadcast(FdMessage::Order {
                view: self.view,
                seq,
                payload,
            });
        }
    }

    /// Delivery check: quorum of acks in the replica's *current* view
    /// (the classic per-view rule), digest not yet delivered.
    fn try_deliver(
        &mut self,
        view: u64,
        seq: u64,
        d: Digest,
        fx: &mut Effects<FdMessage, FdDeliver>,
    ) {
        if view != self.view
            || self.delivered.contains_key(&seq)
            || seq < self.next_emit
            || self.delivered_digests.contains(&d)
        {
            return;
        }
        let Some(voters) = self.acks.get(&(view, seq, d)) else {
            return;
        };
        if !self.structure.is_core(voters) {
            return;
        }
        if let Some(payload) = self.orders.get(&(view, seq)).cloned() {
            if digest(&payload) == d {
                self.delivered.insert(seq, payload);
                self.emit_ready(fx);
                self.coordinate(fx);
            }
        }
    }

    fn emit_ready(&mut self, fx: &mut Effects<FdMessage, FdDeliver>) {
        while let Some(payload) = self.delivered.remove(&self.next_emit) {
            let d = digest(&payload);
            if self.queued_digests.remove(&d) {
                self.queue.retain(|p| digest(p) != d);
            }
            if self.delivered_digests.insert(d) {
                fx.output(FdDeliver {
                    seq: self.next_emit,
                    payload,
                });
            }
            self.next_emit += 1;
            self.next_assign = self.next_assign.max(self.next_emit);
            self.ticks_since_progress = 0;
            self.my_orders.clear();
        }
    }

    fn change_view(&mut self, to_view: u64, fx: &mut Effects<FdMessage, FdDeliver>) {
        if to_view <= self.view {
            return;
        }
        self.view = to_view;
        self.view_changes += 1;
        self.ticks_since_progress = 0;
        self.my_orders.clear();
        // Acknowledge any orders buffered for the new view, and re-check
        // ack quorums that may already be complete for it.
        let now_ackable: Vec<(u64, Vec<u8>)> = self
            .orders
            .iter()
            .filter(|((v, _), _)| *v == to_view)
            .map(|((_, s), p)| (*s, p.clone()))
            .collect();
        for (seq, payload) in now_ackable {
            let d = digest(&payload);
            fx.broadcast(FdMessage::Ack {
                view: to_view,
                seq,
                digest: d,
            });
            self.try_deliver(to_view, seq, d, fx);
        }
    }
}

impl Protocol for FdAbcNode {
    type Message = FdMessage;
    type Input = Vec<u8>;
    type Output = FdDeliver;

    fn on_input(&mut self, payload: Vec<u8>, fx: &mut Effects<FdMessage, FdDeliver>) {
        fx.broadcast(FdMessage::Push(payload.clone()));
        self.enqueue(payload);
        self.coordinate(fx);
    }

    fn on_message(
        &mut self,
        from: PartyId,
        msg: FdMessage,
        fx: &mut Effects<FdMessage, FdDeliver>,
    ) {
        match msg {
            FdMessage::Push(payload) => {
                self.enqueue(payload);
                self.coordinate(fx);
            }
            FdMessage::Order { view, seq, payload } => {
                if view < self.view || from != self.coordinator(view) || payload.is_empty() {
                    return;
                }
                let d = digest(&payload);
                self.orders.entry((view, seq)).or_insert(payload);
                if view == self.view {
                    fx.broadcast(FdMessage::Ack {
                        view,
                        seq,
                        digest: d,
                    });
                }
                // Orders for future views are buffered and acknowledged
                // when this replica's view catches up (see change_view).
            }
            FdMessage::Ack {
                view,
                seq,
                digest: d,
            } => {
                let voters = self.acks.entry((view, seq, d)).or_default();
                voters.insert(from);
                self.try_deliver(view, seq, d, fx);
            }
            FdMessage::Suspect { view } => {
                if view < self.view {
                    return;
                }
                let voters = self.suspects.entry(view).or_default();
                voters.insert(from);
                // A non-corruptible set of suspicions triggers the view
                // change (one honest suspicion could be the adversary's
                // doing... which is exactly the problem with this
                // design — a qualified set is the standard mitigation).
                if self.structure.is_qualified(voters) {
                    self.change_view(view + 1, fx);
                    self.coordinate(fx);
                }
            }
        }
    }

    fn on_tick(&mut self, fx: &mut Effects<FdMessage, FdDeliver>) {
        // The failure detector: if work is pending and nothing has been
        // delivered for `timeout_ticks`, suspect the coordinator.
        let work_pending = !self.queue.is_empty();
        if !work_pending {
            self.ticks_since_progress = 0;
            return;
        }
        self.ticks_since_progress += 1;
        if self.ticks_since_progress >= self.timeout_ticks {
            self.ticks_since_progress = 0;
            let view = self.view;
            if self.suspected_views.insert(view) {
                fx.broadcast(FdMessage::Suspect { view });
            }
        }
    }

    fn on_input_ctx(
        &mut self,
        ctx: &Context,
        input: Vec<u8>,
        fx: &mut Effects<FdMessage, FdDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_input(input, fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_input(input, fx);
        self.record(ctx, fx, s0, o0);
    }

    fn on_message_ctx(
        &mut self,
        ctx: &Context,
        from: PartyId,
        msg: FdMessage,
        fx: &mut Effects<FdMessage, FdDeliver>,
    ) {
        if !ctx.obs.is_enabled() {
            return self.on_message(from, msg, fx);
        }
        ctx.obs.inc2(Layer::Fdabc, "recv", msg.kind());
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_message(from, msg, fx);
        self.record(ctx, fx, s0, o0);
    }

    fn on_tick_ctx(&mut self, ctx: &Context, fx: &mut Effects<FdMessage, FdDeliver>) {
        if !ctx.obs.is_enabled() {
            return self.on_tick(fx);
        }
        let (s0, o0) = (fx.sends().len(), fx.outputs().len());
        self.on_tick(fx);
        self.record(ctx, fx, s0, o0);
    }
}

impl FdAbcNode {
    /// Records sends/deliveries appended past the marks, plus the view
    /// gauge — the baseline's churn under targeted delay is exactly what
    /// experiment E1 measures.
    fn record(&self, ctx: &Context, fx: &Effects<FdMessage, FdDeliver>, s0: usize, o0: usize) {
        for (_, m) in &fx.sends()[s0..] {
            ctx.obs.inc2(Layer::Fdabc, "sent", m.kind());
        }
        ctx.obs.gauge_set(Layer::Fdabc, "view", self.view);
        for d in &fx.outputs()[o0..] {
            ctx.obs.inc(Layer::Fdabc, "delivered");
            ctx.obs.event(
                Event::new(Layer::Fdabc, EventKind::Deliver, ctx.me)
                    .value(d.seq)
                    .at(ctx.at),
            );
        }
    }
}

/// Builds `n` baseline replicas.
pub fn fd_nodes(structure: &TrustStructure, timeout_ticks: u64) -> Vec<FdAbcNode> {
    (0..structure.n())
        .map(|me| FdAbcNode::new(me, structure.clone(), timeout_ticks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sintra_net::sim::{RandomScheduler, Simulation, TargetedDelayScheduler};

    fn structure(n: usize, t: usize) -> TrustStructure {
        TrustStructure::threshold(n, t).unwrap()
    }

    #[test]
    fn delivers_under_benign_network() {
        let mut sim = Simulation::builder(fd_nodes(&structure(4, 1), 20), RandomScheduler)
            .seed(1)
            .build();
        sim.enable_ticks(5);
        sim.input(0, b"hello".to_vec());
        sim.run_until_quiet(100_000);
        for p in 0..4 {
            assert_eq!(
                sim.outputs(p),
                &[FdDeliver {
                    seq: 0,
                    payload: b"hello".to_vec()
                }],
                "party {p}"
            );
        }
    }

    #[test]
    fn delivers_multiple_in_order() {
        let mut sim = Simulation::builder(fd_nodes(&structure(4, 1), 20), RandomScheduler)
            .seed(2)
            .build();
        sim.enable_ticks(5);
        for i in 0..5u8 {
            sim.input(0, vec![i + 1]);
        }
        sim.run_until_quiet(1_000_000);
        let reference: Vec<_> = sim.outputs(0).to_vec();
        assert_eq!(reference.len(), 5);
        for p in 1..4 {
            assert_eq!(sim.outputs(p), reference.as_slice(), "party {p}");
        }
    }

    #[test]
    fn targeted_delay_on_coordinator_starves_liveness() {
        // The §2.2 attack: starve the view-0 coordinator (party 0). The
        // suspicion mechanism fires, views rotate, and the adversary
        // follows the new coordinator. Here the simple fixed-victim
        // variant already collapses throughput because party 0 is
        // repeatedly re-elected every n views.
        let victims: PartySet = PartySet::singleton(0);
        let mut sim = Simulation::builder(
            fd_nodes(&structure(4, 1), 4),
            TargetedDelayScheduler { victims },
        )
        .seed(3)
        .build();
        sim.enable_ticks(1);
        for i in 0..4u8 {
            sim.input(1, vec![i + 1]);
        }
        // Bounded run: the system may eventually deliver (eventual
        // delivery holds) but burns view changes doing so.
        sim.run_until(200_000, |s| (0..4).all(|p| s.outputs(p).len() >= 4));
        let changes: u64 = (0..4)
            .filter_map(|p| sim.node(p).map(|n| n.view_changes))
            .sum();
        assert!(
            changes > 0,
            "the failure detector must have made wrong suspicions"
        );
    }

    #[test]
    fn view_changes_rotate_coordinator() {
        // Timeout long enough that the post-change view can complete an
        // order/ack cycle before being suspected itself.
        let mut sim = Simulation::builder(fd_nodes(&structure(4, 1), 25), RandomScheduler)
            .seed(4)
            .build();
        sim.enable_ticks(1);
        // Crash the view-0 coordinator; others must rotate past it.
        sim.corrupt(0, sintra_net::sim::Behavior::Crash);
        sim.input(1, b"m".to_vec());
        sim.run_until(500_000, |s| (1..4).all(|p| !s.outputs(p).is_empty()));
        for p in 1..4 {
            assert!(
                !sim.outputs(p).is_empty(),
                "party {p} delivers after view change"
            );
            assert!(sim.node(p).unwrap().view() >= 1, "view advanced");
        }
    }
}
