//! Canonical binary encodings for every protocol message.
//!
//! The trait, error type, and bounded reader come from the transport
//! crate ([`sintra_net::codec`], re-exported here); this module
//! supplies the `impl WireCodec for …` blocks for the eight wire
//! enums — [`RbcMessage`], [`CbcMessage`], [`AbbaMessage`],
//! [`MvbaMessage`], [`AbcMessage`], [`ScabcMessage`], [`OptMessage`],
//! [`FdMessage`] — and their crypto payloads (signature shares,
//! threshold signatures, coin and decryption shares, vouchers).
//!
//! ## Conventions
//!
//! * Enum variants carry a 1-byte discriminant in declaration order.
//! * Rounds, epochs, views, sequence and election numbers are `u64`
//!   big-endian; party ids are `u32` big-endian.
//! * Variable-length byte fields are `u32`-length-prefixed and capped
//!   at [`MAX_PAYLOAD`] (itself the frame cap, so any payload that
//!   fits a frame decodes).
//! * Crypto objects use their own canonical encodings from
//!   `sintra-crypto` (`Signature` 64 B, `SignatureShare` 68 B,
//!   `ThresholdSignature` 16 B signer mask + 64 B per signer,
//!   coin/decryption shares with `u32` component counts, 132 B per
//!   component); non-canonical group elements are rejected at decode.
//! * Booleans are a strict `0`/`1` byte; anything else is a decode
//!   error, so there is exactly one byte string per message
//!   (mis-framed or tampered traffic cannot alias a valid message).
//!
//! Decoding never panics: every failure mode maps to a
//! [`CodecError`]. The `codec_roundtrip` integration tests check
//! `encode → decode == identity` for all eight enums over dealt crypto
//! material, truncation/corruption rejection at every byte position,
//! and that [`wire::WireSize`](crate::wire::WireSize) equals the
//! encoded length exactly.

use crate::abba::{AbbaMessage, MainVote, MainVoteJust, MainVoteValue, PreVote, PreVoteJust};
use crate::abc::{AbcMessage, QUEUED_BATCH_DECODE_CAP};
use crate::cbc::{CbcMessage, Voucher};
use crate::fdabc::FdMessage;
use crate::mvba::MvbaMessage;
use crate::optimistic::OptMessage;
use crate::rbc::RbcMessage;
use crate::scabc::ScabcMessage;
use sintra_crypto::coin::CoinShare;
use sintra_crypto::schnorr::Signature;
use sintra_crypto::tenc::DecryptionShare;
use sintra_crypto::tsig::{SignatureShare, ThresholdSignature};

pub use sintra_net::codec::{CodecError, Reader, WireCodec, MAX_FRAME, MAX_PAYLOAD};

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(bytes);
}

fn get_payload(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<u8>, CodecError> {
    r.bytes(what, MAX_PAYLOAD)
}

fn put_bool(buf: &mut Vec<u8>, b: bool) {
    buf.push(u8::from(b));
}

fn get_bool(r: &mut Reader<'_>) -> Result<bool, CodecError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        value => Err(CodecError::BadDiscriminant {
            what: "bool",
            value,
        }),
    }
}

impl WireCodec for Voucher {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_bytes(buf, &self.payload);
        self.signature.encode_into(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Voucher {
            payload: get_payload(r, "voucher payload")?,
            signature: ThresholdSignature::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Reliable broadcast
// ---------------------------------------------------------------------

impl WireCodec for RbcMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            RbcMessage::Send(p) => {
                buf.push(0);
                put_bytes(buf, p);
            }
            RbcMessage::Echo(p) => {
                buf.push(1);
                put_bytes(buf, p);
            }
            RbcMessage::Ready(p) => {
                buf.push(2);
                put_bytes(buf, p);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(RbcMessage::Send(get_payload(r, "rbc payload")?)),
            1 => Ok(RbcMessage::Echo(get_payload(r, "rbc payload")?)),
            2 => Ok(RbcMessage::Ready(get_payload(r, "rbc payload")?)),
            value => Err(CodecError::BadDiscriminant {
                what: "RbcMessage",
                value,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Consistent broadcast
// ---------------------------------------------------------------------

impl WireCodec for CbcMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            CbcMessage::Send(p) => {
                buf.push(0);
                put_bytes(buf, p);
            }
            CbcMessage::Echo(share) => {
                buf.push(1);
                share.encode_into(buf);
            }
            CbcMessage::Final(p, sig) => {
                buf.push(2);
                put_bytes(buf, p);
                sig.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(CbcMessage::Send(get_payload(r, "cbc payload")?)),
            1 => Ok(CbcMessage::Echo(SignatureShare::decode(r)?)),
            2 => Ok(CbcMessage::Final(
                get_payload(r, "cbc payload")?,
                ThresholdSignature::decode(r)?,
            )),
            value => Err(CodecError::BadDiscriminant {
                what: "CbcMessage",
                value,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Binary agreement
// ---------------------------------------------------------------------

impl<E: WireCodec> WireCodec for PreVoteJust<E> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            PreVoteJust::FirstRound(None) => buf.push(0),
            PreVoteJust::FirstRound(Some(e)) => {
                buf.push(1);
                e.encode_into(buf);
            }
            PreVoteJust::Hard(sig) => {
                buf.push(2);
                sig.encode_into(buf);
            }
            PreVoteJust::Coin(sig) => {
                buf.push(3);
                sig.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(PreVoteJust::FirstRound(None)),
            1 => Ok(PreVoteJust::FirstRound(Some(E::decode(r)?))),
            2 => Ok(PreVoteJust::Hard(ThresholdSignature::decode(r)?)),
            3 => Ok(PreVoteJust::Coin(ThresholdSignature::decode(r)?)),
            value => Err(CodecError::BadDiscriminant {
                what: "PreVoteJust",
                value,
            }),
        }
    }
}

impl<E: WireCodec> WireCodec for PreVote<E> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.round.to_be_bytes());
        put_bool(buf, self.value);
        self.just.encode_into(buf);
        self.share.encode_into(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PreVote {
            round: r.u64()?,
            value: get_bool(r)?,
            just: PreVoteJust::decode(r)?,
            share: SignatureShare::decode(r)?,
        })
    }
}

impl WireCodec for MainVoteValue {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            MainVoteValue::Zero => 0,
            MainVoteValue::One => 1,
            MainVoteValue::Abstain => 2,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(MainVoteValue::Zero),
            1 => Ok(MainVoteValue::One),
            2 => Ok(MainVoteValue::Abstain),
            value => Err(CodecError::BadDiscriminant {
                what: "MainVoteValue",
                value,
            }),
        }
    }
}

impl<E: WireCodec> WireCodec for MainVoteJust<E> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            MainVoteJust::Value(sig) => {
                buf.push(0);
                sig.encode_into(buf);
            }
            MainVoteJust::Abstain(zero, one) => {
                buf.push(1);
                zero.encode_into(buf);
                one.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(MainVoteJust::Value(ThresholdSignature::decode(r)?)),
            1 => Ok(MainVoteJust::Abstain(
                Box::new(PreVote::decode(r)?),
                Box::new(PreVote::decode(r)?),
            )),
            value => Err(CodecError::BadDiscriminant {
                what: "MainVoteJust",
                value,
            }),
        }
    }
}

impl<E: WireCodec> WireCodec for MainVote<E> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.round.to_be_bytes());
        self.vote.encode_into(buf);
        self.just.encode_into(buf);
        self.share.encode_into(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MainVote {
            round: r.u64()?,
            vote: MainVoteValue::decode(r)?,
            just: MainVoteJust::decode(r)?,
            share: SignatureShare::decode(r)?,
        })
    }
}

impl<E: WireCodec> WireCodec for AbbaMessage<E> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            AbbaMessage::PreVote(pv) => {
                buf.push(0);
                pv.encode_into(buf);
            }
            AbbaMessage::MainVote(mv) => {
                buf.push(1);
                mv.encode_into(buf);
            }
            AbbaMessage::Coin { round, share } => {
                buf.push(2);
                buf.extend_from_slice(&round.to_be_bytes());
                share.encode_into(buf);
            }
            AbbaMessage::Decided {
                round,
                value,
                proof,
            } => {
                buf.push(3);
                buf.extend_from_slice(&round.to_be_bytes());
                put_bool(buf, *value);
                proof.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(AbbaMessage::PreVote(PreVote::decode(r)?)),
            1 => Ok(AbbaMessage::MainVote(MainVote::decode(r)?)),
            2 => Ok(AbbaMessage::Coin {
                round: r.u64()?,
                share: CoinShare::decode(r)?,
            }),
            3 => Ok(AbbaMessage::Decided {
                round: r.u64()?,
                value: get_bool(r)?,
                proof: ThresholdSignature::decode(r)?,
            }),
            value => Err(CodecError::BadDiscriminant {
                what: "AbbaMessage",
                value,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Multi-valued agreement
// ---------------------------------------------------------------------

impl WireCodec for MvbaMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            MvbaMessage::Proposal { proposer, inner } => {
                buf.push(0);
                buf.extend_from_slice(&(*proposer as u32).to_be_bytes());
                inner.encode_into(buf);
            }
            MvbaMessage::ElectCoin { election, share } => {
                buf.push(1);
                buf.extend_from_slice(&election.to_be_bytes());
                share.encode_into(buf);
            }
            MvbaMessage::Vote { election, inner } => {
                buf.push(2);
                buf.extend_from_slice(&election.to_be_bytes());
                inner.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(MvbaMessage::Proposal {
                proposer: r.u32()? as usize,
                inner: CbcMessage::decode(r)?,
            }),
            1 => Ok(MvbaMessage::ElectCoin {
                election: r.u64()?,
                share: CoinShare::decode(r)?,
            }),
            2 => Ok(MvbaMessage::Vote {
                election: r.u64()?,
                inner: AbbaMessage::decode(r)?,
            }),
            value => Err(CodecError::BadDiscriminant {
                what: "MvbaMessage",
                value,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Atomic broadcast
// ---------------------------------------------------------------------

impl WireCodec for AbcMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            AbcMessage::Push(p) => {
                buf.push(0);
                put_bytes(buf, p);
            }
            AbcMessage::Queued { round, batch, sig } => {
                buf.push(1);
                buf.extend_from_slice(&round.to_be_bytes());
                buf.extend_from_slice(&(batch.len() as u32).to_be_bytes());
                for payload in batch {
                    put_bytes(buf, payload);
                }
                sig.encode_into(buf);
            }
            AbcMessage::Mvba { round, inner } => {
                buf.push(2);
                buf.extend_from_slice(&round.to_be_bytes());
                inner.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(AbcMessage::Push(get_payload(r, "abc payload")?)),
            1 => {
                let round = r.u64()?;
                // Batched proposal: entry-count and cumulative-byte
                // caps mirror the RSM layer's DEDUP_DECODE_CAP pattern
                // — a hostile count cannot force allocation, and a
                // hostile batch cannot exceed one payload's budget.
                let count = r.u32()? as usize;
                if count > QUEUED_BATCH_DECODE_CAP {
                    return Err(CodecError::Oversized {
                        what: "abc batch entries",
                        len: count,
                        max: QUEUED_BATCH_DECODE_CAP,
                    });
                }
                let mut batch = Vec::with_capacity(count.min(64));
                let mut total = 0usize;
                for _ in 0..count {
                    let payload = get_payload(r, "abc batch payload")?;
                    if payload.is_empty() {
                        return Err(CodecError::BadElement {
                            what: "abc batch payload (empty)",
                        });
                    }
                    total += payload.len();
                    if total > MAX_PAYLOAD {
                        return Err(CodecError::Oversized {
                            what: "abc batch bytes",
                            len: total,
                            max: MAX_PAYLOAD,
                        });
                    }
                    batch.push(payload);
                }
                Ok(AbcMessage::Queued {
                    round,
                    batch,
                    sig: Signature::decode(r)?,
                })
            }
            2 => Ok(AbcMessage::Mvba {
                round: r.u64()?,
                inner: MvbaMessage::decode(r)?,
            }),
            value => Err(CodecError::BadDiscriminant {
                what: "AbcMessage",
                value,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Secure causal atomic broadcast
// ---------------------------------------------------------------------

impl WireCodec for ScabcMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            ScabcMessage::Abc(inner) => {
                buf.push(0);
                inner.encode_into(buf);
            }
            ScabcMessage::Share { ct_digest, share } => {
                buf.push(1);
                buf.extend_from_slice(ct_digest);
                share.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(ScabcMessage::Abc(AbcMessage::decode(r)?)),
            1 => Ok(ScabcMessage::Share {
                ct_digest: r.array::<32>()?,
                share: DecryptionShare::decode(r)?,
            }),
            value => Err(CodecError::BadDiscriminant {
                what: "ScabcMessage",
                value,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Optimistic (parametrized) atomic broadcast
// ---------------------------------------------------------------------

impl WireCodec for OptMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            OptMessage::Push(p) => {
                buf.push(0);
                put_bytes(buf, p);
            }
            OptMessage::Propose {
                epoch,
                seq,
                payload,
            } => {
                buf.push(1);
                buf.extend_from_slice(&epoch.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                put_bytes(buf, payload);
            }
            OptMessage::Prepare {
                epoch,
                seq,
                digest,
                share,
            } => {
                buf.push(2);
                buf.extend_from_slice(&epoch.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(digest);
                share.encode_into(buf);
            }
            OptMessage::Commit {
                epoch,
                seq,
                digest,
                share,
            } => {
                buf.push(3);
                buf.extend_from_slice(&epoch.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(digest);
                share.encode_into(buf);
            }
            OptMessage::Deliver {
                epoch,
                seq,
                digest,
                cert,
                payload,
            } => {
                buf.push(4);
                buf.extend_from_slice(&epoch.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(digest);
                cert.encode_into(buf);
                put_bytes(buf, payload);
            }
            OptMessage::Complain { epoch, share } => {
                buf.push(5);
                buf.extend_from_slice(&epoch.to_be_bytes());
                share.encode_into(buf);
            }
            OptMessage::Report { epoch, report } => {
                buf.push(6);
                buf.extend_from_slice(&epoch.to_be_bytes());
                put_bytes(buf, report);
            }
            OptMessage::Change { epoch, inner } => {
                buf.push(7);
                buf.extend_from_slice(&epoch.to_be_bytes());
                inner.encode_into(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(OptMessage::Push(get_payload(r, "opt payload")?)),
            1 => Ok(OptMessage::Propose {
                epoch: r.u64()?,
                seq: r.u64()?,
                payload: get_payload(r, "opt payload")?,
            }),
            2 => Ok(OptMessage::Prepare {
                epoch: r.u64()?,
                seq: r.u64()?,
                digest: r.array::<32>()?,
                share: SignatureShare::decode(r)?,
            }),
            3 => Ok(OptMessage::Commit {
                epoch: r.u64()?,
                seq: r.u64()?,
                digest: r.array::<32>()?,
                share: SignatureShare::decode(r)?,
            }),
            4 => Ok(OptMessage::Deliver {
                epoch: r.u64()?,
                seq: r.u64()?,
                digest: r.array::<32>()?,
                cert: ThresholdSignature::decode(r)?,
                payload: get_payload(r, "opt payload")?,
            }),
            5 => Ok(OptMessage::Complain {
                epoch: r.u64()?,
                share: SignatureShare::decode(r)?,
            }),
            6 => Ok(OptMessage::Report {
                epoch: r.u64()?,
                report: get_payload(r, "opt report")?,
            }),
            7 => Ok(OptMessage::Change {
                epoch: r.u64()?,
                inner: MvbaMessage::decode(r)?,
            }),
            value => Err(CodecError::BadDiscriminant {
                what: "OptMessage",
                value,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Fault-detector atomic broadcast
// ---------------------------------------------------------------------

impl WireCodec for FdMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            FdMessage::Push(p) => {
                buf.push(0);
                put_bytes(buf, p);
            }
            FdMessage::Order { view, seq, payload } => {
                buf.push(1);
                buf.extend_from_slice(&view.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                put_bytes(buf, payload);
            }
            FdMessage::Ack { view, seq, digest } => {
                buf.push(2);
                buf.extend_from_slice(&view.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(digest);
            }
            FdMessage::Suspect { view } => {
                buf.push(3);
                buf.extend_from_slice(&view.to_be_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(FdMessage::Push(get_payload(r, "fd payload")?)),
            1 => Ok(FdMessage::Order {
                view: r.u64()?,
                seq: r.u64()?,
                payload: get_payload(r, "fd payload")?,
            }),
            2 => Ok(FdMessage::Ack {
                view: r.u64()?,
                seq: r.u64()?,
                digest: r.array::<32>()?,
            }),
            3 => Ok(FdMessage::Suspect { view: r.u64()? }),
            value => Err(CodecError::BadDiscriminant {
                what: "FdMessage",
                value,
            }),
        }
    }
}
