//! Campaign hooks for the core protocol stack: the protocol-specific
//! glue consumed by `sintra-net`'s fault-injection campaigns.
//!
//! For each protocol this module provides a `*_hooks()` constructor
//! wiring up the standard 4-party, 1-fault configuration: replica
//! builders (keyed per seed), instantiations of every canned
//! [`BehaviorKind`] with protocol-aware equivocation and mutation, input
//! assignments, and the protocol's defining invariant checks. The same
//! hooks drive the debug-mode campaign tests and the release-mode soak
//! binary (`sintra-bench`'s `campaign_soak`), so the smoke grid and the
//! full grid cannot drift apart.

use crate::abba::AbbaMessage;
use crate::abc::{abc_nodes, AbcDeliver, AbcMessage, AbcNode};
use crate::cbc::CbcMessage;
use crate::mvba::MvbaMessage;
use crate::nodes::{
    abba_nodes, cbc_nodes, mvba_nodes, rbc_nodes, AbbaNode, CbcNode, MvbaNode, RbcNode,
};
use crate::rbc::RbcMessage;
use sintra_adversary::party::{PartyId, PartySet};
use sintra_adversary::structure::TrustStructure;
use sintra_crypto::dealer::Dealer;
use sintra_crypto::rng::SeededRng;
use sintra_net::campaign::{invariants, BehaviorKind, CampaignHooks};
use sintra_net::faults;
use sintra_net::sim::Behavior;
use std::cell::Cell;
use std::sync::Arc;

/// Parties in the standard campaign configuration.
pub const N: usize = 4;
/// Fault threshold in the standard campaign configuration.
pub const T: usize = 1;

/// The campaign mixes the case seed with the party id before calling the
/// behavior hook; undo that to rebuild a corrupted party's replica from
/// the same dealt keys as the honest nodes.
fn case_seed(mixed_seed: u64, party: PartyId) -> u64 {
    mixed_seed ^ party as u64
}

fn flip(p: &mut Vec<u8>) {
    if let Some(b) = p.first_mut() {
        *b ^= 0xff;
    } else {
        p.push(0xff);
    }
}

// ---------------------------------------------------------------- RBC

fn rbc_equivocate(to: PartyId, m: RbcMessage) -> RbcMessage {
    let stamp = to as u8;
    match m {
        RbcMessage::Send(mut p) => {
            p.push(stamp);
            RbcMessage::Send(p)
        }
        RbcMessage::Echo(mut p) => {
            p.push(stamp);
            RbcMessage::Echo(p)
        }
        RbcMessage::Ready(mut p) => {
            p.push(stamp);
            RbcMessage::Ready(p)
        }
    }
}

fn rbc_mutate(m: &mut RbcMessage) {
    match m {
        RbcMessage::Send(p) | RbcMessage::Echo(p) | RbcMessage::Ready(p) => flip(p),
    }
}

fn rbc_behavior(kind: BehaviorKind, party: PartyId, seed: u64) -> Behavior<RbcNode> {
    let inner = || rbc_nodes(N, T, 0).remove(party);
    match kind {
        BehaviorKind::Crash => Behavior::Crash,
        BehaviorKind::Equivocate => faults::equivocator(
            party,
            N,
            inner(),
            None,
            |to, m, _| rbc_equivocate(to, m),
            seed,
        ),
        BehaviorKind::Replay => faults::replayer(N, 16, seed),
        BehaviorKind::Mutate => {
            faults::mutator(party, N, inner(), None, |m, _| rbc_mutate(m), 60, seed)
        }
        BehaviorKind::Mute => faults::selective_mute(
            party,
            N,
            inner(),
            None,
            PartySet::singleton((party + 1) % N),
        ),
        BehaviorKind::CrashRecover => faults::crash_recover(
            party,
            N,
            move || rbc_nodes(N, T, 0).remove(party),
            None,
            200,
            5_000,
        ),
    }
}

/// Campaign hooks for reliable broadcast: party 0 broadcasts, every
/// honest party must deliver exactly that payload.
pub fn rbc_hooks<'a>() -> CampaignHooks<'a, RbcNode> {
    CampaignHooks {
        nodes: Box::new(|_seed| rbc_nodes(N, T, 0)),
        behavior: Box::new(rbc_behavior),
        inputs: Box::new(|_seed, _corrupted| vec![(0, b"payload".to_vec())]),
        check: Box::new(|outcome| {
            invariants::agreement(outcome)?;
            invariants::liveness(outcome, 1)?;
            invariants::external_validity(outcome, |o| o == b"payload")
        }),
    }
}

// ---------------------------------------------------------------- CBC

fn cbc_equivocate(to: PartyId, m: CbcMessage) -> CbcMessage {
    match m {
        CbcMessage::Send(mut p) => {
            p.push(to as u8);
            CbcMessage::Send(p)
        }
        CbcMessage::Final(mut p, sig) => {
            p.push(to as u8);
            CbcMessage::Final(p, sig)
        }
        other => other,
    }
}

fn cbc_mutate(m: &mut CbcMessage) {
    match m {
        CbcMessage::Send(p) | CbcMessage::Final(p, _) => flip(p),
        CbcMessage::Echo(_) => {}
    }
}

fn cbc_behavior(kind: BehaviorKind, party: PartyId, seed: u64) -> Behavior<CbcNode> {
    let cs = case_seed(seed, party);
    let inner = move || cbc_nodes(N, T, 0, cs).remove(party);
    match kind {
        BehaviorKind::Crash => Behavior::Crash,
        BehaviorKind::Equivocate => faults::equivocator(
            party,
            N,
            inner(),
            None,
            |to, m, _| cbc_equivocate(to, m),
            seed,
        ),
        BehaviorKind::Replay => faults::replayer(N, 16, seed),
        BehaviorKind::Mutate => {
            faults::mutator(party, N, inner(), None, |m, _| cbc_mutate(m), 60, seed)
        }
        BehaviorKind::Mute => faults::selective_mute(
            party,
            N,
            inner(),
            None,
            PartySet::singleton((party + 1) % N),
        ),
        BehaviorKind::CrashRecover => faults::crash_recover(party, N, inner, None, 200, 5_000),
    }
}

/// Campaign hooks for consistent broadcast: party 0 broadcasts, honest
/// deliverers must agree on exactly that payload.
pub fn cbc_hooks<'a>() -> CampaignHooks<'a, CbcNode> {
    CampaignHooks {
        nodes: Box::new(|seed| cbc_nodes(N, T, 0, seed)),
        behavior: Box::new(cbc_behavior),
        inputs: Box::new(|_seed, _corrupted| vec![(0, b"payload".to_vec())]),
        check: Box::new(|outcome| {
            invariants::agreement(outcome)?;
            invariants::liveness(outcome, 1)?;
            invariants::external_validity(outcome, |o| o == b"payload")
        }),
    }
}

// --------------------------------------------------------------- ABBA

fn abba_equivocate(to: PartyId, mut m: AbbaMessage<()>) -> AbbaMessage<()> {
    // Tell odd receivers the opposite bit. The signature share no longer
    // matches, so honest receivers must reject without state poisoning.
    if to % 2 == 1 {
        if let AbbaMessage::PreVote(pv) = &mut m {
            pv.value = !pv.value;
        }
    }
    m
}

fn abba_mutate(m: &mut AbbaMessage<()>) {
    match m {
        AbbaMessage::PreVote(pv) => pv.round = pv.round.wrapping_add(1),
        AbbaMessage::MainVote(mv) => mv.round = mv.round.wrapping_add(1),
        AbbaMessage::Coin { round, .. } => *round = round.wrapping_add(1),
        AbbaMessage::Decided { value, .. } => *value = !*value,
    }
}

fn abba_behavior(kind: BehaviorKind, party: PartyId, seed: u64) -> Behavior<AbbaNode> {
    let cs = case_seed(seed, party);
    let inner = move || abba_nodes(N, T, cs).remove(party);
    match kind {
        BehaviorKind::Crash => Behavior::Crash,
        BehaviorKind::Equivocate => faults::equivocator(
            party,
            N,
            inner(),
            Some(true),
            |to, m, _| abba_equivocate(to, m),
            seed,
        ),
        BehaviorKind::Replay => faults::replayer(N, 16, seed),
        BehaviorKind::Mutate => faults::mutator(
            party,
            N,
            inner(),
            Some(false),
            |m, _| abba_mutate(m),
            60,
            seed,
        ),
        BehaviorKind::Mute => faults::selective_mute(
            party,
            N,
            inner(),
            Some(true),
            PartySet::singleton((party + 1) % N),
        ),
        BehaviorKind::CrashRecover => faults::crash_recover(party, N, inner, None, 200, 5_000),
    }
}

/// Campaign hooks for binary agreement under mixed honest inputs.
pub fn abba_hooks<'a>() -> CampaignHooks<'a, AbbaNode> {
    CampaignHooks {
        nodes: Box::new(|seed| abba_nodes(N, T, seed)),
        behavior: Box::new(abba_behavior),
        inputs: Box::new(|_seed, corrupted| {
            (0..N)
                .filter(|p| !corrupted.contains(*p))
                .map(|p| (p, p % 2 == 0))
                .collect()
        }),
        check: Box::new(|outcome| {
            invariants::agreement(outcome)?;
            invariants::liveness(outcome, 1)
        }),
    }
}

// ------------------------------- ABBA coin tampering (attribution)

fn abba_tamper_coin(m: &mut AbbaMessage<()>) {
    if let AbbaMessage::Coin { share, .. } = m {
        share.tamper();
    }
}

/// Campaign hooks for the coin-share tampering sweep (satellite of the
/// batch-verification fast path): the corrupted party runs the real
/// protocol, but every outgoing coin share is perturbed so its
/// Chaum-Pedersen proofs fail while staying structurally valid. Honest
/// parties must still agree and terminate (the coin settles from honest
/// shares after the per-share fallback culls the bad one), and — via
/// the final node states in [`RunOutcome`](sintra_net::campaign::RunOutcome)
/// — batch verification must attribute failures *only* to corrupted
/// parties. Every culprit attribution observed at an honest node is
/// counted into `attributions`, so a sweep can additionally assert that
/// the fallback path actually fired somewhere in the grid.
pub fn abba_coin_tamper_hooks(attributions: &Cell<usize>) -> CampaignHooks<'_, AbbaNode> {
    CampaignHooks {
        nodes: Box::new(|seed| abba_nodes(N, T, seed)),
        behavior: Box::new(|kind, party, seed| {
            let cs = case_seed(seed, party);
            match kind {
                BehaviorKind::Mutate => faults::mutator(
                    party,
                    N,
                    abba_nodes(N, T, cs).remove(party),
                    Some(false),
                    |m, _| abba_tamper_coin(m),
                    100,
                    seed,
                ),
                _ => Behavior::Crash,
            }
        }),
        inputs: Box::new(|_seed, corrupted| {
            (0..N)
                .filter(|p| !corrupted.contains(*p))
                .map(|p| (p, p % 2 == 0))
                .collect()
        }),
        check: Box::new(move |outcome| {
            invariants::agreement(outcome)?;
            invariants::liveness(outcome, 1)?;
            for p in outcome.honest() {
                let node = outcome.nodes[p]
                    .as_ref()
                    .ok_or_else(|| format!("honest party {p} has no final node state"))?;
                let banned = node.instance().banned_parties();
                if !banned.is_subset_of(&outcome.corrupted) {
                    return Err(format!(
                        "party {p} attributed honest parties: banned {banned}, corrupted {}",
                        outcome.corrupted
                    ));
                }
                attributions.set(attributions.get() + banned.len());
            }
            Ok(())
        }),
    }
}

// --------------------------------------------------------------- MVBA

fn mvba_equivocate(to: PartyId, mut m: MvbaMessage) -> MvbaMessage {
    if let MvbaMessage::Proposal {
        inner: CbcMessage::Send(p),
        ..
    } = &mut m
    {
        p.push(to as u8);
    }
    m
}

fn mvba_mutate(m: &mut MvbaMessage) {
    match m {
        MvbaMessage::Proposal { proposer, .. } => *proposer = (*proposer + 1) % N,
        MvbaMessage::ElectCoin { election, .. } => *election += 1,
        MvbaMessage::Vote { election, .. } => *election += 1,
    }
}

fn mvba_behavior(kind: BehaviorKind, party: PartyId, seed: u64) -> Behavior<MvbaNode> {
    let cs = case_seed(seed, party);
    let inner =
        move || mvba_nodes(N, T, cs, Arc::new(|v: &[u8]| v.starts_with(b"ok"))).remove(party);
    match kind {
        BehaviorKind::Crash => Behavior::Crash,
        BehaviorKind::Equivocate => faults::equivocator(
            party,
            N,
            inner(),
            Some(b"ok-evil".to_vec()),
            |to, m, _| mvba_equivocate(to, m),
            seed,
        ),
        BehaviorKind::Replay => faults::replayer(N, 16, seed),
        BehaviorKind::Mutate => faults::mutator(
            party,
            N,
            inner(),
            Some(b"ok-evil".to_vec()),
            |m, _| mvba_mutate(m),
            60,
            seed,
        ),
        BehaviorKind::Mute => faults::selective_mute(
            party,
            N,
            inner(),
            Some(b"ok-evil".to_vec()),
            PartySet::singleton((party + 1) % N),
        ),
        BehaviorKind::CrashRecover => faults::crash_recover(party, N, inner, None, 200, 5_000),
    }
}

/// Campaign hooks for multi-valued agreement with the `starts_with("ok")`
/// external validity predicate.
pub fn mvba_hooks<'a>() -> CampaignHooks<'a, MvbaNode> {
    CampaignHooks {
        nodes: Box::new(|seed| mvba_nodes(N, T, seed, Arc::new(|v: &[u8]| v.starts_with(b"ok")))),
        behavior: Box::new(mvba_behavior),
        inputs: Box::new(|_seed, corrupted| {
            (0..N)
                .filter(|p| !corrupted.contains(*p))
                .map(|p| (p, format!("ok-{p}").into_bytes()))
                .collect()
        }),
        check: Box::new(|outcome| {
            invariants::agreement(outcome)?;
            invariants::liveness(outcome, 1)?;
            invariants::external_validity(outcome, |o| o.starts_with(b"ok"))
        }),
    }
}

// ---------------------------------------------------------------- ABC

fn abc_equivocate(to: PartyId, mut m: AbcMessage) -> AbcMessage {
    if let AbcMessage::Push(p) = &mut m {
        p.push(to as u8);
    }
    m
}

fn abc_mutate(m: &mut AbcMessage) {
    match m {
        AbcMessage::Push(p) => flip(p),
        AbcMessage::Queued { batch, .. } => match batch.first_mut() {
            Some(p) => flip(p),
            // Filler batches have no bytes to flip; garble the shape
            // instead so the signature still breaks.
            None => batch.push(vec![0xff]),
        },
        AbcMessage::Mvba { round, .. } => *round += 1,
    }
}

/// Builds the standard 4-party atomic-broadcast replica set for a seed.
pub fn abc_build(seed: u64) -> Vec<AbcNode> {
    let ts = TrustStructure::threshold(N, T).expect("valid (n, t)");
    let mut rng = SeededRng::new(seed);
    let (public, bundles) = Dealer::deal(&ts, &mut rng);
    abc_nodes(public, bundles, seed)
}

fn abc_behavior(kind: BehaviorKind, party: PartyId, seed: u64) -> Behavior<AbcNode> {
    let cs = case_seed(seed, party);
    let inner = move || abc_build(cs).remove(party);
    match kind {
        BehaviorKind::Crash => Behavior::Crash,
        BehaviorKind::Equivocate => faults::equivocator(
            party,
            N,
            inner(),
            Some(b"evil".to_vec()),
            |to, m, _| abc_equivocate(to, m),
            seed,
        ),
        BehaviorKind::Replay => faults::replayer(N, 16, seed),
        BehaviorKind::Mutate => faults::mutator(
            party,
            N,
            inner(),
            Some(b"evil".to_vec()),
            |m, _| abc_mutate(m),
            60,
            seed,
        ),
        BehaviorKind::Mute => faults::selective_mute(
            party,
            N,
            inner(),
            Some(b"evil".to_vec()),
            PartySet::singleton((party + 1) % N),
        ),
        BehaviorKind::CrashRecover => faults::crash_recover(party, N, inner, None, 200, 5_000),
    }
}

/// Campaign hooks for atomic broadcast: every honest party broadcasts
/// one payload; all of them must be totally ordered at every honest
/// party within the step budget.
pub fn abc_hooks<'a>() -> CampaignHooks<'a, AbcNode> {
    CampaignHooks {
        nodes: Box::new(abc_build),
        behavior: Box::new(abc_behavior),
        inputs: Box::new(|_seed, corrupted| {
            (0..N)
                .filter(|p| !corrupted.contains(*p))
                .map(|p| (p, format!("msg-{p}").into_bytes()))
                .collect()
        }),
        check: Box::new(|outcome: &sintra_net::campaign::RunOutcome<AbcNode>| {
            invariants::total_order(outcome)?;
            // Every honest party's payload (N - 1 of them) must get
            // ordered.
            invariants::liveness(outcome, N - 1)?;
            // Delivery sequence numbers must be gapless from 0.
            for p in outcome.honest() {
                for (i, d) in outcome.outputs[p].iter().enumerate() {
                    if d.seq != i as u64 {
                        return Err(format!("party {p} delivery #{i} has sequence {}", d.seq));
                    }
                }
            }
            Ok(())
        }),
    }
}

/// Convenience: the delivered payloads of one party's ABC outcome.
pub fn abc_payloads(outputs: &[AbcDeliver]) -> Vec<Vec<u8>> {
    outputs.iter().map(|d| d.payload.clone()).collect()
}
