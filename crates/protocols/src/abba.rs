//! Randomized binary Byzantine agreement
//! (Cachin-Kursawe-Shoup, PODC 2000 — "Random oracles in
//! Constantinople").
//!
//! The engine of the whole architecture (§3): agreement on one bit with
//! **optimal resilience** (`Q³` / `n > 3t`), expected **constant** round
//! count, and safety/liveness under *every* message schedule — the
//! randomized escape from the FLP impossibility that the paper builds
//! on. Structure per round `r`:
//!
//! 1. **pre-vote** — each party casts a justified pre-vote for a bit;
//! 2. **main-vote** — once a core quorum of pre-votes arrives, the party
//!    main-votes the unanimous bit, or `abstain` when it saw both bits;
//!    it also releases its share of round-`r`'s threshold coin;
//! 3. **decision** — a core quorum of unanimous main-votes decides; a
//!    mixed quorum carries the seen bit into round `r+1` ("hard"
//!    pre-vote); an all-abstain quorum pre-votes the **coin** value.
//!
//! Every vote carries a *justification* so that corrupted parties cannot
//! inject inconsistent votes: main-votes for `b` carry a threshold
//! signature over a core quorum of pre-votes for `b`; abstentions carry
//! one justified pre-vote for each bit; round-`r+1` pre-votes carry
//! either the hard or the coin justification. Deciders broadcast a
//! transferable decision proof (threshold signature over the unanimous
//! main-votes) and halt, which gives termination for everyone.
//!
//! ## Biased ("validated") mode
//!
//! Multi-valued agreement needs the *biased* variant: deciding 1 must
//! imply that some party really holds the candidate proposal. An
//! [`Abba`] constructed with [`Abba::new_biased`] therefore requires
//! every round-1 pre-vote for 1 to carry a piece of **evidence** `E`
//! (for MVBA: the consistent-broadcast voucher) accepted by a pluggable
//! validator. If no honest party inputs 1 and no valid evidence exists,
//! the instance decides 0 in round one; and any admissible 1-decision
//! transitively exposes validated evidence to an honest party, which is
//! exactly the retrieval-liveness argument of the multi-valued protocol.

use crate::common::{BatchedShares, Outbox, Tag, WireKind};
use crate::pool::{Verdict, VerdictChannel, VerifyPool};
use serde::{Deserialize, Serialize};
use sintra_adversary::party::{PartyId, PartySet};
use sintra_crypto::coin::{CoinShare, CoinValue};
use sintra_crypto::dealer::{PublicParameters, ServerKeyBundle};
use sintra_crypto::rng::SeededRng;
use sintra_crypto::tsig::{QuorumRule, SignatureShare, ThresholdSignature};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A main-vote value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MainVoteValue {
    /// Vote for 0.
    Zero,
    /// Vote for 1.
    One,
    /// Abstain (saw both bits pre-voted).
    Abstain,
}

impl MainVoteValue {
    fn code(&self) -> u8 {
        match self {
            MainVoteValue::Zero => 0,
            MainVoteValue::One => 1,
            MainVoteValue::Abstain => 2,
        }
    }

    fn of_bit(b: bool) -> Self {
        if b {
            MainVoteValue::One
        } else {
            MainVoteValue::Zero
        }
    }
}

/// Justification attached to a pre-vote.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PreVoteJust<E> {
    /// Round 1: the party's input. In biased mode a pre-vote for 1 must
    /// carry validator-approved evidence; a pre-vote for 0 carries none.
    FirstRound(Option<E>),
    /// A core-quorum threshold signature on pre-votes for the same bit in
    /// the previous round (carried out of a mixed main-vote quorum).
    Hard(ThresholdSignature),
    /// A core-quorum threshold signature on `abstain` main-votes in the
    /// previous round; the pre-voted bit must equal that round's coin.
    Coin(ThresholdSignature),
}

/// A justified pre-vote.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PreVote<E> {
    /// Round number (1-based).
    pub round: u64,
    /// The pre-voted bit.
    pub value: bool,
    /// Why this pre-vote is admissible.
    pub just: PreVoteJust<E>,
    /// Signature share on `pre(round, value)` (doubles as the vote
    /// signature and as material for main-vote justifications).
    pub share: SignatureShare,
}

/// Justification attached to a main-vote.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MainVoteJust<E> {
    /// For a bit vote: threshold signature over a core quorum of
    /// pre-votes for that bit this round.
    Value(ThresholdSignature),
    /// For an abstention: one justified pre-vote for each bit.
    Abstain(Box<PreVote<E>>, Box<PreVote<E>>),
}

/// A justified main-vote.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MainVote<E> {
    /// Round number.
    pub round: u64,
    /// The vote.
    pub vote: MainVoteValue,
    /// Why this vote is admissible.
    pub just: MainVoteJust<E>,
    /// Signature share on `main(round, vote)`.
    pub share: SignatureShare,
}

/// ABBA wire messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AbbaMessage<E> {
    /// A pre-vote.
    PreVote(PreVote<E>),
    /// A main-vote.
    MainVote(MainVote<E>),
    /// A share of the round's threshold coin.
    Coin {
        /// Round the coin belongs to.
        round: u64,
        /// The coin share.
        share: CoinShare,
    },
    /// A transferable decision proof (threshold signature on a core
    /// quorum of unanimous main-votes).
    Decided {
        /// Deciding round.
        round: u64,
        /// The decided bit.
        value: bool,
        /// Core-quorum threshold signature on `main(round, value)`.
        proof: ThresholdSignature,
    },
}

impl<E> WireKind for AbbaMessage<E> {
    fn kind(&self) -> &'static str {
        match self {
            AbbaMessage::PreVote(_) => "pre_vote",
            AbbaMessage::MainVote(_) => "main_vote",
            AbbaMessage::Coin { .. } => "coin",
            AbbaMessage::Decided { .. } => "decided",
        }
    }
}

#[derive(Debug)]
struct RoundState<E> {
    // Pre-vote bookkeeping (first pre-vote per party). Justifications
    // are checked on arrival; the votes' own signature shares are
    // batch-verified only once a candidate core quorum exists, so
    // `prevote_parties` counts structurally accepted votes.
    prevote_parties: PartySet,
    prevote_by_value: [PartySet; 2],
    prevotes: [BatchedShares<PreVote<E>>; 2],
    // Main-vote bookkeeping (same lazy-share discipline).
    mainvote_parties: PartySet,
    mainvote_by_value: [PartySet; 3],
    mainvotes: [BatchedShares<SignatureShare>; 3],
    /// First valid bit main-vote's justification (pre-vote tsig), reused
    /// as the hard justification for the next round. The tsig itself is
    /// verified on arrival, so it stays usable even if its sender's own
    /// vote share is later culled.
    value_just: Option<(bool, ThresholdSignature)>,
    // Coin bookkeeping (one share per party; proofs batch-verified once
    // a qualified holder set exists).
    coin: BatchedShares<CoinShare>,
    coin_value: Option<CoinValue>,
    coin_share_sent: bool,
    // Phase flags.
    my_mainvote_sent: bool,
    main_quorum_done: bool,
    /// Set when the all-abstain quorum fired but the coin is not yet
    /// known; carries the abstain tsig for the coin justification.
    awaiting_coin: Option<ThresholdSignature>,
    /// Messages whose coin-justification cannot be checked yet. Bounded
    /// to [`PENDING_JUST_CAP`] entries per party.
    pending_coin_just: Vec<(PartyId, AbbaMessage<E>)>,
}

/// Per-party cap on deferred coin-justified messages per round. A party
/// legitimately defers at most one pre-vote per value plus one main-vote
/// whose justification embeds deferred pre-votes; anything beyond that
/// is a flooding attempt and is dropped.
const PENDING_JUST_CAP: usize = 4;

// Batch kinds for verify-pool verdict keys: which of a round's share
// trackers a pooled verification job settles.
const BATCH_PRE0: u8 = 0;
const BATCH_PRE1: u8 = 1;
const BATCH_MAIN0: u8 = 2;
const BATCH_MAIN2: u8 = 4;
const BATCH_COIN: u8 = 5;

impl<E> Default for RoundState<E> {
    fn default() -> Self {
        RoundState {
            prevote_parties: PartySet::new(),
            prevote_by_value: [PartySet::new(), PartySet::new()],
            prevotes: [BatchedShares::new(), BatchedShares::new()],
            mainvote_parties: PartySet::new(),
            mainvote_by_value: [PartySet::new(), PartySet::new(), PartySet::new()],
            mainvotes: [
                BatchedShares::new(),
                BatchedShares::new(),
                BatchedShares::new(),
            ],
            value_just: None,
            coin: BatchedShares::new(),
            coin_value: None,
            coin_share_sent: false,
            my_mainvote_sent: false,
            main_quorum_done: false,
            awaiting_coin: None,
            pending_coin_just: Vec::new(),
        }
    }
}

impl<E> RoundState<E> {
    /// A fresh round whose share trackers inherit the instance-wide
    /// culprit set, so a sender attributed in an earlier round is
    /// rejected on arrival instead of re-verified.
    fn with_bans(banned: PartySet) -> Self {
        RoundState {
            prevotes: [
                BatchedShares::with_bans(banned),
                BatchedShares::with_bans(banned),
            ],
            mainvotes: [
                BatchedShares::with_bans(banned),
                BatchedShares::with_bans(banned),
                BatchedShares::with_bans(banned),
            ],
            coin: BatchedShares::with_bans(banned),
            ..Self::default()
        }
    }
}

/// Pluggable evidence validator for biased instances.
pub type EvidenceCheck<E> = Arc<dyn Fn(&E) -> bool + Send + Sync>;

/// One binary-agreement instance at one party.
///
/// Drive with [`propose`](Abba::propose) and
/// [`on_message`](Abba::on_message); the decided bit is returned once.
/// The type parameter `E` is the evidence attached to round-1 pre-votes
/// for 1 in biased mode; plain instances use `E = ()`.
pub struct Abba<E = ()> {
    tag: Tag,
    me: PartyId,
    n: usize,
    public: Arc<PublicParameters>,
    bundle: Arc<ServerKeyBundle>,
    /// `Some(check)` = biased mode.
    one_evidence: Option<EvidenceCheck<E>>,
    round: u64,
    started: bool,
    decided: Option<bool>,
    decision_sent: bool,
    rounds: BTreeMap<u64, RoundState<E>>,
    /// Optional off-thread verification pool (`None` = verify inline at
    /// quorum time, the pre-pool behavior).
    pool: Option<Arc<VerifyPool>>,
    /// Ordered verdict stream for pooled verification jobs.
    verdicts: VerdictChannel<(u64, u8)>,
    /// Batches currently in flight on the pool, keyed `(round, kind)`.
    awaiting: BTreeSet<(u64, u8)>,
    /// Instance-wide culprit cache: every party attributed by any batch
    /// settlement in any round. New rounds seed their trackers from this
    /// set, so a spamming Byzantine sender costs O(1) rejection per
    /// later share instead of a per-round full re-verify.
    instance_banned: PartySet,
}

impl<E> core::fmt::Debug for Abba<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Abba")
            .field("tag", &self.tag)
            .field("me", &self.me)
            .field("round", &self.round)
            .field("decided", &self.decided)
            .field("biased", &self.one_evidence.is_some())
            .finish()
    }
}

impl<E: Clone + core::fmt::Debug> Abba<E> {
    /// Number of parties in the group.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Creates an unbiased instance under `tag` (round-1 pre-votes carry
    /// no evidence).
    pub fn new(tag: Tag, public: Arc<PublicParameters>, bundle: Arc<ServerKeyBundle>) -> Self {
        Self::build(tag, public, bundle, None)
    }

    /// Creates a *biased* instance: round-1 pre-votes for 1 must carry
    /// evidence accepted by `check`.
    pub fn new_biased(
        tag: Tag,
        public: Arc<PublicParameters>,
        bundle: Arc<ServerKeyBundle>,
        check: EvidenceCheck<E>,
    ) -> Self {
        Self::build(tag, public, bundle, Some(check))
    }

    fn build(
        tag: Tag,
        public: Arc<PublicParameters>,
        bundle: Arc<ServerKeyBundle>,
        one_evidence: Option<EvidenceCheck<E>>,
    ) -> Self {
        Abba {
            tag,
            me: bundle.party(),
            n: public.n(),
            public,
            bundle,
            one_evidence,
            round: 0,
            started: false,
            decided: None,
            decision_sent: false,
            rounds: BTreeMap::new(),
            pool: None,
            verdicts: VerdictChannel::new(),
            awaiting: BTreeSet::new(),
            instance_banned: PartySet::new(),
        }
    }

    /// The decided value, if any.
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }

    /// The current round (0 before [`propose`](Self::propose); rounds are
    /// 1-based). Exposed for the round-count experiments.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Parties attributed as culprits by any quorum-time batch
    /// settlement so far — a share of theirs (pre-vote, main-vote, or
    /// coin) failed cryptographic verification during the per-share
    /// fallback. Exposed so fault-injection campaigns can assert that
    /// attribution blames only corrupted parties.
    pub fn banned_parties(&self) -> PartySet {
        let mut banned = self.instance_banned;
        for rs in self.rounds.values() {
            for tracker in &rs.prevotes {
                banned = banned.union(tracker.banned());
            }
            for tracker in &rs.mainvotes {
                banned = banned.union(tracker.banned());
            }
            banned = banned.union(rs.coin.banned());
        }
        banned
    }

    fn pre_msg(&self, round: u64, value: bool) -> Vec<u8> {
        self.tag
            .message(&[b"pre", &round.to_be_bytes(), &[value as u8]])
    }

    fn main_msg(&self, round: u64, vote: MainVoteValue) -> Vec<u8> {
        self.tag
            .message(&[b"main", &round.to_be_bytes(), &[vote.code()]])
    }

    fn coin_name(&self, round: u64) -> Vec<u8> {
        self.tag.message(&[b"coin", &round.to_be_bytes()])
    }

    /// Starts the instance with the party's input bit (no evidence;
    /// biased instances reject a 1-input this way).
    ///
    /// # Panics
    ///
    /// Panics on double-propose, or when proposing 1 without evidence in
    /// a biased instance.
    pub fn propose(
        &mut self,
        value: bool,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        assert!(
            !(value && self.one_evidence.is_some()),
            "biased instances require propose_with_evidence for a 1-input"
        );
        self.propose_inner(value, None, rng, out)
    }

    /// Starts a biased instance with input 1 and its evidence.
    ///
    /// # Panics
    ///
    /// Panics on double-propose or when the instance is not biased.
    pub fn propose_with_evidence(
        &mut self,
        evidence: E,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        assert!(
            self.one_evidence.is_some(),
            "evidence only applies to biased instances"
        );
        self.propose_inner(true, Some(evidence), rng, out)
    }

    fn propose_inner(
        &mut self,
        value: bool,
        evidence: Option<E>,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        assert!(!self.started, "propose may be called only once");
        self.started = true;
        self.round = 1;
        self.send_prevote(1, value, PreVoteJust::FirstRound(evidence), rng, out);
        // Messages received before the local input may already form
        // quorums (the network is asynchronous).
        self.progress(rng, out)
    }

    fn send_prevote(
        &mut self,
        round: u64,
        value: bool,
        just: PreVoteJust<E>,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) {
        let to_sign = self.pre_msg(round, value);
        let share = self.bundle.signing_key().sign_share(&to_sign, rng);
        let pv = PreVote {
            round,
            value,
            just,
            share,
        };
        out.broadcast(AbbaMessage::PreVote(pv));
    }

    /// Fully validates a pre-vote (signature share + justification).
    /// Returns `Ok(true)` if valid, `Ok(false)` if invalid, `Err(())` if
    /// the coin needed to check a coin justification is not yet known.
    /// Used for pre-votes embedded in abstain justifications (their
    /// senders are not accountable through the batch path) and by
    /// external callers; top-level arrivals go through
    /// [`validate_prevote_lazy`](Self::validate_prevote_lazy).
    fn validate_prevote(&self, from: PartyId, pv: &PreVote<E>) -> Result<bool, ()> {
        if pv.share.party() != from || pv.round == 0 {
            return Ok(false);
        }
        let to_sign = self.pre_msg(pv.round, pv.value);
        if !self.public.signing().verify_share(&to_sign, &pv.share) {
            return Ok(false);
        }
        self.validate_prevote_just(pv)
    }

    /// Validates everything about a pre-vote *except* its own signature
    /// share, which is deferred to quorum-time batch verification. The
    /// justification stays eager: it is what makes the vote admissible,
    /// and a bogus justification must not occupy the sender's vote slot.
    fn validate_prevote_lazy(&self, from: PartyId, pv: &PreVote<E>) -> Result<bool, ()> {
        if pv.share.party() != from || pv.round == 0 {
            return Ok(false);
        }
        self.validate_prevote_just(pv)
    }

    fn validate_prevote_just(&self, pv: &PreVote<E>) -> Result<bool, ()> {
        match &pv.just {
            PreVoteJust::FirstRound(evidence) => {
                if pv.round != 1 {
                    return Ok(false);
                }
                match (&self.one_evidence, pv.value, evidence) {
                    // Unbiased: no evidence may be attached.
                    (None, _, None) => Ok(true),
                    (None, _, Some(_)) => Ok(false),
                    // Biased: 1 requires valid evidence, 0 forbids it.
                    (Some(check), true, Some(e)) => Ok(check(e)),
                    (Some(_), false, None) => Ok(true),
                    (Some(_), _, _) => Ok(false),
                }
            }
            PreVoteJust::Hard(sig) => {
                if pv.round < 2 {
                    return Ok(false);
                }
                let prev = self.pre_msg(pv.round - 1, pv.value);
                Ok(self.public.signing().verify(&prev, sig, QuorumRule::Core))
            }
            PreVoteJust::Coin(sig) => {
                if pv.round < 2 {
                    return Ok(false);
                }
                let prev = self.main_msg(pv.round - 1, MainVoteValue::Abstain);
                if !self.public.signing().verify(&prev, sig, QuorumRule::Core) {
                    return Ok(false);
                }
                match self
                    .rounds
                    .get(&(pv.round - 1))
                    .and_then(|rs| rs.coin_value)
                {
                    Some(c) => Ok(c.bit() == pv.value),
                    None => Err(()), // defer until the coin is known
                }
            }
        }
    }

    /// Validates everything about a main-vote *except* its own signature
    /// share (deferred to quorum-time batching). Pre-votes embedded in
    /// an abstain justification are still *fully* verified — they come
    /// from third parties the batch path cannot hold accountable.
    fn validate_mainvote_lazy(&self, from: PartyId, mv: &MainVote<E>) -> Result<bool, ()> {
        if mv.share.party() != from || mv.round == 0 {
            return Ok(false);
        }
        match (&mv.vote, &mv.just) {
            (MainVoteValue::Abstain, MainVoteJust::Abstain(pv0, pv1)) => {
                if pv0.round != mv.round || pv1.round != mv.round {
                    return Ok(false);
                }
                if pv0.value || !pv1.value {
                    return Ok(false);
                }
                let v0 = self.validate_prevote(pv0.share.party(), pv0)?;
                let v1 = self.validate_prevote(pv1.share.party(), pv1)?;
                Ok(v0 && v1)
            }
            (MainVoteValue::Zero | MainVoteValue::One, MainVoteJust::Value(sig)) => {
                let bit = mv.vote == MainVoteValue::One;
                let pre = self.pre_msg(mv.round, bit);
                Ok(self.public.signing().verify(&pre, sig, QuorumRule::Core))
            }
            _ => Ok(false),
        }
    }

    /// Handles a message; returns the decided bit when the decision
    /// fires at this party.
    pub fn on_message(
        &mut self,
        from: PartyId,
        msg: AbbaMessage<E>,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        // Verdicts may have landed since the last tick; apply them first
        // so a batch completed between ticks never stalls the round until
        // the next timer fires.
        if let Some(d) = self.drain_verifications(rng, out) {
            return Some(d);
        }
        if self.decided.is_some() {
            // Halted; decision proof was already broadcast.
            return None;
        }
        if from >= self.n {
            return None; // out-of-range sender
        }
        match msg {
            AbbaMessage::PreVote(pv) => match self.validate_prevote_lazy(from, &pv) {
                Ok(true) => {
                    self.record_prevote(from, pv);
                    self.progress(rng, out)
                }
                Ok(false) => None,
                Err(()) => {
                    self.defer_coin_just(from, pv.round, AbbaMessage::PreVote(pv));
                    None
                }
            },
            AbbaMessage::MainVote(mv) => match self.validate_mainvote_lazy(from, &mv) {
                Ok(true) => {
                    self.record_mainvote(from, mv);
                    self.progress(rng, out)
                }
                Ok(false) => None,
                Err(()) => {
                    self.defer_coin_just(from, mv.round, AbbaMessage::MainVote(mv));
                    None
                }
            },
            AbbaMessage::Coin { round, share } => {
                if share.party() != from || round == 0 {
                    return None;
                }
                let rs = self.round_state(round);
                if rs.coin_value.is_some() || !rs.coin.insert(from, share) {
                    return None; // coin known, duplicate, or banned party
                }
                self.try_coin(round, rng, out)
            }
            AbbaMessage::Decided {
                round,
                value,
                proof,
            } => {
                let main = self.main_msg(round, MainVoteValue::of_bit(value));
                if !self
                    .public
                    .signing()
                    .verify(&main, &proof, QuorumRule::Core)
                {
                    return None;
                }
                self.decide(round, value, proof, out)
            }
        }
    }

    /// Buffers a message whose coin justification cannot be checked
    /// until round `round - 1`'s coin is known, with a per-party cap so
    /// a Byzantine party cannot grow the buffer without bound.
    fn defer_coin_just(&mut self, from: PartyId, round: u64, msg: AbbaMessage<E>) {
        let rs = self.round_state(round - 1);
        let held = rs
            .pending_coin_just
            .iter()
            .filter(|(p, _)| *p == from)
            .count();
        if held < PENDING_JUST_CAP {
            rs.pending_coin_just.push((from, msg));
        }
    }

    /// Once a qualified holder set exists, batch-verifies the pending
    /// coin shares and combines the survivors (proofs are *not*
    /// re-checked by the combine — they settled in the batch).
    fn try_coin(
        &mut self,
        round: u64,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        let structure = self.public.structure().clone();
        let name = self.coin_name(round);
        let public = Arc::clone(&self.public);
        let rs = self.round_state(round);
        if rs.coin_value.is_some() || !structure.is_qualified(&rs.coin.holders()) {
            return None;
        }
        if self.pool.is_some() {
            // Ship the pending proofs off-thread and park; the combine
            // re-fires from `drain_verifications` once the verdict lands.
            self.submit_coin_batch(round, rng);
            if self.awaiting.contains(&(round, BATCH_COIN)) {
                return None;
            }
        }
        let rs = self.round_state(round);
        let caught = rs
            .coin
            .settle(|batch| public.coin().verify_shares(&name, batch, rng));
        for culprit in caught {
            self.ban_party(culprit);
        }
        let rs = self.round_state(round);
        let shares: Vec<CoinShare> = rs.coin.verified().values().cloned().collect();
        let value = self.public.coin().combine_preverified(&name, &shares)?;
        let rs = self.round_state(round);
        rs.coin_value = Some(value);
        // Re-inject deferred messages that waited on this coin.
        let pending = core::mem::take(&mut rs.pending_coin_just);
        for (p_from, p_msg) in pending {
            if let Some(d) = self.on_message(p_from, p_msg, rng, out) {
                return Some(d);
            }
        }
        self.progress(rng, out)
    }

    fn record_prevote(&mut self, from: PartyId, pv: PreVote<E>) {
        let rs = self.round_state(pv.round);
        if rs.prevote_parties.contains(from)
            || rs.prevotes.iter().any(|t| t.banned().contains(from))
        {
            return; // first pre-vote per party counts; culprits are out
        }
        let idx = pv.value as usize;
        if rs.prevotes[idx].insert(from, pv) {
            rs.prevote_parties.insert(from);
            rs.prevote_by_value[idx].insert(from);
        }
    }

    fn record_mainvote(&mut self, from: PartyId, mv: MainVote<E>) {
        let rs = self.round_state(mv.round);
        if rs.mainvote_parties.contains(from)
            || rs.mainvotes.iter().any(|t| t.banned().contains(from))
        {
            return;
        }
        let idx = mv.vote.code() as usize;
        if !rs.mainvotes[idx].insert(from, mv.share) {
            return;
        }
        rs.mainvote_parties.insert(from);
        rs.mainvote_by_value[idx].insert(from);
        if rs.value_just.is_none() {
            if let (MainVoteValue::Zero | MainVoteValue::One, MainVoteJust::Value(sig)) =
                (&mv.vote, &mv.just)
            {
                rs.value_just = Some((mv.vote == MainVoteValue::One, sig.clone()));
            }
        }
    }

    /// Runs all quorum checks for the current round until nothing fires.
    fn progress(&mut self, rng: &mut SeededRng, out: &mut Outbox<AbbaMessage<E>>) -> Option<bool> {
        loop {
            if !self.started || self.decided.is_some() {
                return None;
            }
            let round = self.round;
            if let Some(d) = self.try_mainvote_phase(round, rng, out) {
                return Some(d);
            }
            if let Some(d) = self.try_decision_phase(round, rng, out) {
                return Some(d);
            }
            if self.round == round {
                return None; // no transition fired
            }
        }
    }

    /// Pre-vote quorum → settle the batch → send main-vote + coin share.
    fn try_mainvote_phase(
        &mut self,
        round: u64,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        let structure = self.public.structure().clone();
        {
            let rs = self.round_state(round);
            if rs.my_mainvote_sent || !structure.is_core(&rs.prevote_parties) {
                return None;
            }
        }
        // A candidate core quorum exists: batch-verify the deferred
        // signature shares (one multi-exp per value class), cull any
        // culprits, and only proceed if the survivors still form a core.
        let msgs = [self.pre_msg(round, false), self.pre_msg(round, true)];
        if self.pool.is_some() {
            // Ship each value class off-thread and park; the quorum
            // re-fires from `drain_verifications` once verdicts land.
            for (idx, msg) in msgs.iter().enumerate() {
                let snapshot: Vec<(PartyId, SignatureShare)> = self.rounds[&round].prevotes[idx]
                    .pending_snapshot()
                    .into_iter()
                    .map(|(p, pv)| (p, pv.share))
                    .collect();
                self.submit_sig_batch((round, BATCH_PRE0 + idx as u8), msg.clone(), snapshot, rng);
            }
            if self.awaiting.contains(&(round, BATCH_PRE0))
                || self.awaiting.contains(&(round, BATCH_PRE1))
            {
                return None;
            }
        }
        let public = Arc::clone(&self.public);
        let rs = self.rounds.get_mut(&round).unwrap();
        let mut caught = Vec::new();
        for (idx, msg) in msgs.iter().enumerate() {
            let culprits = rs.prevotes[idx].settle(|batch| {
                let shares: Vec<SignatureShare> = batch.iter().map(|pv| pv.share).collect();
                public.signing().verify_shares(msg, &shares, rng)
            });
            for culprit in culprits {
                rs.prevote_parties.remove(culprit);
                rs.prevote_by_value[idx].remove(culprit);
                caught.push(culprit);
            }
        }
        for culprit in caught {
            self.ban_party(culprit);
        }
        let rs = self.rounds.get_mut(&round).unwrap();
        if !structure.is_core(&rs.prevote_parties) {
            return None; // culling broke the quorum; wait for more votes
        }
        rs.my_mainvote_sent = true;
        let zeros = rs.prevote_by_value[0];
        let ones = rs.prevote_by_value[1];
        let (vote, just) = if ones == rs.prevote_parties || zeros == rs.prevote_parties {
            let bit = ones == rs.prevote_parties;
            let shares: Vec<SignatureShare> = rs.prevotes[bit as usize]
                .verified()
                .values()
                .map(|pv| pv.share)
                .collect();
            let sig = public
                .signing()
                .combine_preverified(&shares, QuorumRule::Core)
                .expect("core quorum of unanimous pre-votes combines");
            (MainVoteValue::of_bit(bit), MainVoteJust::Value(sig))
        } else {
            let pv0 = rs.prevotes[0]
                .verified()
                .values()
                .next()
                .cloned()
                .expect("mixed quorum has a 0");
            let pv1 = rs.prevotes[1]
                .verified()
                .values()
                .next()
                .cloned()
                .expect("mixed quorum has a 1");
            (
                MainVoteValue::Abstain,
                MainVoteJust::Abstain(Box::new(pv0), Box::new(pv1)),
            )
        };
        let to_sign = self.main_msg(round, vote);
        let share = self.bundle.signing_key().sign_share(&to_sign, rng);
        out.broadcast(AbbaMessage::MainVote(MainVote {
            round,
            vote,
            just,
            share,
        }));
        // Release the round's coin share alongside the main-vote.
        let rs = self.round_state(round);
        if !rs.coin_share_sent {
            rs.coin_share_sent = true;
            let name = self.coin_name(round);
            let coin_share = self.bundle.coin_key().share(&name, rng);
            out.broadcast(AbbaMessage::Coin {
                round,
                share: coin_share,
            });
        }
        None
    }

    /// Main-vote quorum → decide / hard pre-vote / coin pre-vote.
    fn try_decision_phase(
        &mut self,
        round: u64,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        let structure = self.public.structure().clone();
        {
            let rs = self.round_state(round);
            if !rs.my_mainvote_sent || !structure.is_core(&rs.mainvote_parties) {
                return None;
            }
        }
        // Case 1: awaiting the coin from a previously fired all-abstain
        // quorum.
        let awaiting = self.rounds[&round].awaiting_coin.clone();
        if let Some(abstain_sig) = awaiting {
            let coin = self.rounds[&round].coin_value;
            if let Some(c) = coin {
                self.rounds.get_mut(&round).unwrap().awaiting_coin = None;
                self.round = round + 1;
                self.send_prevote(round + 1, c.bit(), PreVoteJust::Coin(abstain_sig), rng, out);
            }
            return None;
        }
        if self.rounds[&round].main_quorum_done {
            return None;
        }
        // A candidate core quorum of main-votes exists: settle the
        // deferred signature shares (one batch per vote class) before
        // committing to the quorum.
        let msgs = [
            self.main_msg(round, MainVoteValue::Zero),
            self.main_msg(round, MainVoteValue::One),
            self.main_msg(round, MainVoteValue::Abstain),
        ];
        if self.pool.is_some() {
            for (idx, msg) in msgs.iter().enumerate() {
                let snapshot = self.rounds[&round].mainvotes[idx].pending_snapshot();
                self.submit_sig_batch((round, BATCH_MAIN0 + idx as u8), msg.clone(), snapshot, rng);
            }
            if (0..3).any(|idx| self.awaiting.contains(&(round, BATCH_MAIN0 + idx as u8))) {
                return None;
            }
        }
        let public = Arc::clone(&self.public);
        let rs = self.rounds.get_mut(&round).unwrap();
        let mut caught = Vec::new();
        for (idx, msg) in msgs.iter().enumerate() {
            let culprits =
                rs.mainvotes[idx].settle(|batch| public.signing().verify_shares(msg, batch, rng));
            for culprit in culprits {
                rs.mainvote_parties.remove(culprit);
                rs.mainvote_by_value[idx].remove(culprit);
                caught.push(culprit);
            }
        }
        for culprit in caught {
            self.ban_party(culprit);
        }
        let rs = self.rounds.get_mut(&round).unwrap();
        if !structure.is_core(&rs.mainvote_parties) {
            return None; // culling broke the quorum; wait for more votes
        }
        rs.main_quorum_done = true;

        let all = rs.mainvote_parties;
        let ones = rs.mainvote_by_value[1];
        let zeros = rs.mainvote_by_value[0];
        if ones == all || zeros == all {
            // Unanimous bit quorum: decide.
            let bit = ones == all;
            let shares: Vec<SignatureShare> = rs.mainvotes[bit as usize]
                .verified()
                .values()
                .cloned()
                .collect();
            let proof = public
                .signing()
                .combine_preverified(&shares, QuorumRule::Core)
                .expect("unanimous core main-vote quorum combines");
            return self.decide(round, bit, proof, out);
        }
        if !ones.is_empty() || !zeros.is_empty() {
            // Mixed: carry the seen bit with its hard justification.
            let (bit, sig) = self.rounds[&round]
                .value_just
                .clone()
                .expect("a bit main-vote was recorded with its justification");
            self.round = round + 1;
            self.send_prevote(round + 1, bit, PreVoteJust::Hard(sig), rng, out);
            return None;
        }
        // All abstain: pre-vote the coin.
        let abstain_shares: Vec<SignatureShare> = self.rounds[&round].mainvotes[2]
            .verified()
            .values()
            .cloned()
            .collect();
        let abstain_sig = public
            .signing()
            .combine_preverified(&abstain_shares, QuorumRule::Core)
            .expect("all-abstain core quorum combines");
        let coin = self.rounds[&round].coin_value;
        match coin {
            Some(c) => {
                self.round = round + 1;
                self.send_prevote(round + 1, c.bit(), PreVoteJust::Coin(abstain_sig), rng, out);
            }
            None => {
                self.rounds.get_mut(&round).unwrap().awaiting_coin = Some(abstain_sig);
            }
        }
        None
    }

    /// Attaches a verification pool: quorum-time share batches are then
    /// verified off the protocol thread and their verdicts re-enter
    /// through [`drain_verifications`](Self::drain_verifications), which
    /// runs on every message entry and on the owner's tick.
    pub fn set_verify_pool(&mut self, pool: Arc<VerifyPool>) {
        self.pool = Some(pool);
    }

    /// The round's state, created on first touch with the instance-wide
    /// culprit set pre-seeded into every share tracker.
    fn round_state(&mut self, round: u64) -> &mut RoundState<E> {
        let banned = self.instance_banned;
        self.rounds
            .entry(round)
            .or_insert_with(|| RoundState::with_bans(banned))
    }

    /// Propagates a culprit verdict to every round: the party's pending
    /// shares are dropped (with their aux-set membership) and future
    /// shares are rejected on arrival. Already-verified shares stay —
    /// they passed individually and quorums may have been built on them.
    fn ban_party(&mut self, culprit: PartyId) {
        self.instance_banned.insert(culprit);
        for rs in self.rounds.values_mut() {
            for idx in 0..2 {
                if rs.prevotes[idx].ban(culprit) {
                    rs.prevote_parties.remove(culprit);
                    rs.prevote_by_value[idx].remove(culprit);
                }
            }
            for idx in 0..3 {
                if rs.mainvotes[idx].ban(culprit) {
                    rs.mainvote_parties.remove(culprit);
                    rs.mainvote_by_value[idx].remove(culprit);
                }
            }
            rs.coin.ban(culprit);
        }
    }

    /// Submits the round's pending coin shares to the verify pool
    /// (no-op when the batch is already in flight or nothing is pending).
    fn submit_coin_batch(&mut self, round: u64, rng: &mut SeededRng) {
        let key = (round, BATCH_COIN);
        if self.awaiting.contains(&key) {
            return;
        }
        let Some(pool) = self.pool.clone() else {
            return;
        };
        let Some(rs) = self.rounds.get(&round) else {
            return;
        };
        let snapshot = rs.coin.pending_snapshot();
        if snapshot.is_empty() {
            return;
        }
        let name = self.coin_name(round);
        let parties: Vec<PartyId> = snapshot.iter().map(|(p, _)| *p).collect();
        let shares: Vec<CoinShare> = snapshot.into_iter().map(|(_, s)| s).collect();
        let public = Arc::clone(&self.public);
        let seed = rng.next_u64();
        let sender = self.verdicts.sender();
        self.awaiting.insert(key);
        pool.submit(Box::new(move || {
            let culprits = public
                .coin()
                .verify_shares(&name, &shares, &mut SeededRng::new(seed))
                .err()
                .unwrap_or_default();
            sender.send(Verdict {
                key,
                parties,
                culprits,
            });
        }));
    }

    /// Submits one vote class's pending signature shares to the verify
    /// pool (no-op when in flight or empty).
    fn submit_sig_batch(
        &mut self,
        key: (u64, u8),
        msg: Vec<u8>,
        snapshot: Vec<(PartyId, SignatureShare)>,
        rng: &mut SeededRng,
    ) {
        if snapshot.is_empty() || self.awaiting.contains(&key) {
            return;
        }
        let Some(pool) = self.pool.clone() else {
            return;
        };
        let parties: Vec<PartyId> = snapshot.iter().map(|(p, _)| *p).collect();
        let shares: Vec<SignatureShare> = snapshot.into_iter().map(|(_, s)| s).collect();
        let public = Arc::clone(&self.public);
        let seed = rng.next_u64();
        let sender = self.verdicts.sender();
        self.awaiting.insert(key);
        pool.submit(Box::new(move || {
            let culprits = public
                .signing()
                .verify_shares(&msg, &shares, &mut SeededRng::new(seed))
                .err()
                .unwrap_or_default();
            sender.send(Verdict {
                key,
                parties,
                culprits,
            });
        }));
    }

    /// Applies any verdicts delivered by the pool and resumes the quorum
    /// transitions that parked on them. Returns the decision if one
    /// fires. Safe to call at any time; cheap when nothing is in flight.
    pub fn drain_verifications(
        &mut self,
        rng: &mut SeededRng,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        let verdicts = self.verdicts.drain();
        if verdicts.is_empty() {
            return None;
        }
        let mut caught = Vec::new();
        let mut coin_rounds = Vec::new();
        for v in verdicts {
            let (round, kind) = v.key;
            self.awaiting.remove(&v.key);
            caught.extend_from_slice(&v.culprits);
            let Some(rs) = self.rounds.get_mut(&round) else {
                continue;
            };
            match kind {
                BATCH_PRE0 | BATCH_PRE1 => {
                    let idx = (kind - BATCH_PRE0) as usize;
                    rs.prevotes[idx].apply_verdict(&v.parties, &v.culprits);
                    for &c in &v.culprits {
                        rs.prevote_parties.remove(c);
                        rs.prevote_by_value[idx].remove(c);
                    }
                }
                BATCH_MAIN0..=BATCH_MAIN2 => {
                    let idx = (kind - BATCH_MAIN0) as usize;
                    rs.mainvotes[idx].apply_verdict(&v.parties, &v.culprits);
                    for &c in &v.culprits {
                        rs.mainvote_parties.remove(c);
                        rs.mainvote_by_value[idx].remove(c);
                    }
                }
                _ => {
                    rs.coin.apply_verdict(&v.parties, &v.culprits);
                    coin_rounds.push(round);
                }
            }
        }
        for culprit in caught {
            self.ban_party(culprit);
        }
        if !self.started || self.decided.is_some() {
            return None;
        }
        for round in coin_rounds {
            if let Some(d) = self.try_coin(round, rng, out) {
                return Some(d);
            }
        }
        self.progress(rng, out)
    }

    fn decide(
        &mut self,
        round: u64,
        value: bool,
        proof: ThresholdSignature,
        out: &mut Outbox<AbbaMessage<E>>,
    ) -> Option<bool> {
        if self.decided.is_some() {
            return None;
        }
        self.decided = Some(value);
        if !self.decision_sent {
            self.decision_sent = true;
            out.broadcast(AbbaMessage::Decided {
                round,
                value,
                proof,
            });
        }
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::contexts;
    use sintra_adversary::structure::TrustStructure;
    use sintra_crypto::dealer::Dealer;
    use sintra_net::protocol::{Effects, Protocol};
    use sintra_net::sim::{Behavior, LifoScheduler, RandomScheduler, Simulation};

    type Msg = AbbaMessage<()>;

    #[derive(Debug)]
    pub struct AbbaNode {
        abba: Abba<()>,
        rng: SeededRng,
    }

    impl Protocol for AbbaNode {
        type Message = Msg;
        type Input = bool;
        type Output = bool;

        fn on_input(&mut self, input: bool, fx: &mut Effects<Msg, bool>) {
            let mut out = Outbox::new(self.abba.n());
            if let Some(d) = self.abba.propose(input, &mut self.rng, &mut out) {
                fx.output(d);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }

        fn on_message(&mut self, from: PartyId, msg: Msg, fx: &mut Effects<Msg, bool>) {
            let mut out = Outbox::new(self.abba.n());
            if let Some(d) = self.abba.on_message(from, msg, &mut self.rng, &mut out) {
                fx.output(d);
            }
            for (to, m) in out {
                fx.send(to, m);
            }
        }
    }

    pub fn nodes(n: usize, t: usize, seed: u64) -> Vec<AbbaNode> {
        let ts = TrustStructure::threshold(n, t).unwrap();
        let mut rng = SeededRng::new(seed);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        contexts(public, bundles, seed)
            .into_iter()
            .map(|c| AbbaNode {
                abba: Abba::new(
                    Tag::root("abba-test"),
                    Arc::new(c.public().clone()),
                    Arc::new(c.bundle().clone()),
                ),
                rng: c.rng.clone(),
            })
            .collect()
    }

    fn check_agreement(
        sim: &Simulation<AbbaNode, impl sintra_net::sim::Scheduler<Msg>>,
        honest: &[usize],
    ) -> bool {
        let decisions: Vec<bool> = honest
            .iter()
            .filter_map(|p| sim.outputs(*p).first().copied())
            .collect();
        assert_eq!(
            decisions.len(),
            honest.len(),
            "every honest party must decide"
        );
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "agreement violated: {decisions:?}"
        );
        decisions[0]
    }

    #[test]
    fn unanimous_one_decides_one_fast() {
        let mut sim = Simulation::builder(nodes(4, 1, 1), RandomScheduler)
            .seed(2)
            .build();
        for p in 0..4 {
            sim.input(p, true);
        }
        sim.run_until_quiet(1_000_000);
        assert!(
            check_agreement(&sim, &[0, 1, 2, 3]),
            "validity: all-1 input decides 1"
        );
        // Fast path: decision in round 1.
        for p in 0..4 {
            assert!(sim.node(p).is_none_or(|n| n.abba.round() <= 2));
        }
    }

    #[test]
    fn unanimous_zero_decides_zero() {
        let mut sim = Simulation::builder(nodes(4, 1, 3), RandomScheduler)
            .seed(4)
            .build();
        for p in 0..4 {
            sim.input(p, false);
        }
        sim.run_until_quiet(1_000_000);
        assert!(!check_agreement(&sim, &[0, 1, 2, 3]));
    }

    #[test]
    fn mixed_inputs_agree() {
        for seed in 0..10u64 {
            let mut sim = Simulation::builder(nodes(4, 1, seed), RandomScheduler)
                .seed(1000 + seed)
                .build();
            sim.input(0, false);
            sim.input(1, true);
            sim.input(2, false);
            sim.input(3, true);
            sim.run_until_quiet(1_000_000);
            check_agreement(&sim, &[0, 1, 2, 3]);
        }
    }

    #[test]
    fn mixed_inputs_agree_under_lifo() {
        for seed in 0..5u64 {
            let mut sim = Simulation::builder(nodes(4, 1, 50 + seed), LifoScheduler)
                .seed(2000 + seed)
                .build();
            sim.input(0, true);
            sim.input(1, false);
            sim.input(2, true);
            sim.input(3, false);
            sim.run_until_quiet(1_000_000);
            check_agreement(&sim, &[0, 1, 2, 3]);
        }
    }

    #[test]
    fn tolerates_crash_fault() {
        for seed in 0..5u64 {
            let mut sim = Simulation::builder(nodes(4, 1, 90 + seed), RandomScheduler)
                .seed(3000 + seed)
                .build();
            sim.corrupt(3, Behavior::Crash);
            sim.input(0, true);
            sim.input(1, false);
            sim.input(2, true);
            sim.run_until_quiet(1_000_000);
            check_agreement(&sim, &[0, 1, 2]);
        }
    }

    #[test]
    fn larger_system_with_crashes() {
        let mut sim = Simulation::builder(nodes(7, 2, 7), RandomScheduler)
            .seed(8)
            .build();
        sim.corrupt(5, Behavior::Crash);
        sim.corrupt(6, Behavior::Crash);
        for p in 0..5 {
            sim.input(p, p % 2 == 0);
        }
        sim.run_until_quiet(5_000_000);
        check_agreement(&sim, &[0, 1, 2, 3, 4]);
    }

    /// Regression test for the verify-pool stall: with threaded workers
    /// attached, a quorum must complete from message deliveries alone.
    /// Verdicts are drained at `on_message` entry, so no tick is ever
    /// required. Before that entry drain existed, parked share batches
    /// only resumed on the owner's tick, and this hand-driven
    /// (tick-free) exchange never decided.
    #[test]
    fn pooled_quorum_completes_without_ticks() {
        let mut nodes = nodes(4, 1, 77);
        let pool = VerifyPool::new(2);
        for node in &mut nodes {
            node.abba.set_verify_pool(Arc::clone(&pool));
        }
        let mut inboxes: Vec<Vec<(PartyId, Msg)>> = vec![Vec::new(); 4];
        let mut decisions: Vec<Option<bool>> = vec![None; 4];
        // Mixed inputs force at least one coin flip, i.e. at least one
        // pooled batch parks every node.
        for (p, node) in nodes.iter_mut().enumerate() {
            let mut out = Outbox::new(4);
            if let Some(d) = node.abba.propose(p % 2 == 0, &mut node.rng, &mut out) {
                decisions[p] = Some(d);
            }
            for (to, m) in out {
                inboxes[to].push((p, m));
            }
        }
        // A replayable duplicate per node: re-delivering it is a no-op
        // for the protocol state machine, but it still enters
        // `on_message`, which is where parked verdicts must be drained.
        let mut replay: Vec<Option<(PartyId, Msg)>> = vec![None; 4];
        let deliver = |nodes: &mut Vec<AbbaNode>,
                       inboxes: &mut Vec<Vec<(PartyId, Msg)>>,
                       decisions: &mut Vec<Option<bool>>,
                       p: usize,
                       from: PartyId,
                       m: Msg| {
            let mut out = Outbox::new(4);
            let node = &mut nodes[p];
            if let Some(d) = node.abba.on_message(from, m, &mut node.rng, &mut out) {
                decisions[p].get_or_insert(d);
            }
            for (to, m) in out {
                inboxes[to].push((p, m));
            }
        };
        for _ in 0..20_000 {
            if decisions.iter().all(|d| d.is_some()) {
                break;
            }
            let mut delivered = false;
            for p in 0..4 {
                for (from, m) in std::mem::take(&mut inboxes[p]) {
                    delivered = true;
                    replay[p] = Some((from, m.clone()));
                    deliver(&mut nodes, &mut inboxes, &mut decisions, p, from, m);
                }
            }
            if !delivered {
                // Quiescent while verdicts are in flight: give the
                // workers a moment, then poke each undecided node with
                // a duplicate so its entry drain runs.
                std::thread::sleep(std::time::Duration::from_millis(1));
                for p in 0..4 {
                    if decisions[p].is_some() {
                        continue;
                    }
                    if let Some((from, m)) = replay[p].clone() {
                        deliver(&mut nodes, &mut inboxes, &mut decisions, p, from, m);
                    }
                }
            }
        }
        let values: Vec<bool> = decisions
            .iter()
            .map(|d| d.expect("every node must decide without a single tick"))
            .collect();
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "agreement: {values:?}"
        );
    }

    #[test]
    fn byzantine_spam_does_not_break_agreement() {
        // A corrupted party replays garbage versions of whatever it
        // receives.
        for seed in 0..5u64 {
            let mut sim = Simulation::builder(nodes(4, 1, 200 + seed), RandomScheduler)
                .seed(4000 + seed)
                .build();
            sim.corrupt(
                2,
                Behavior::Custom(Box::new(move |_from, msg: Msg, _| {
                    let mut sends: Vec<(PartyId, Msg)> = (0..4).map(|p| (p, msg.clone())).collect();
                    if let AbbaMessage::Decided { proof, .. } = &msg {
                        sends.push((
                            0,
                            AbbaMessage::Decided {
                                round: 1,
                                value: true,
                                proof: proof.clone(),
                            },
                        ));
                    }
                    sends
                })),
            );
            sim.input(0, false);
            sim.input(1, false);
            sim.input(3, false);
            sim.run_until_quiet(1_000_000);
            let v = check_agreement(&sim, &[0, 1, 3]);
            assert!(!v, "validity: unanimous honest 0-input must decide 0");
        }
    }

    #[test]
    fn biased_mode_decides_zero_without_evidence() {
        // Biased instances where nobody can produce evidence must decide
        // 0 even when corrupted parties scream 1.
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(30);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let check: EvidenceCheck<u64> = Arc::new(|e: &u64| *e == 42);
        #[derive(Debug)]
        struct Node {
            abba: Abba<u64>,
            rng: SeededRng,
        }
        impl Protocol for Node {
            type Message = AbbaMessage<u64>;
            type Input = bool;
            type Output = bool;
            fn on_input(&mut self, input: bool, fx: &mut Effects<AbbaMessage<u64>, bool>) {
                let mut out = Outbox::new(self.abba.n());
                if let Some(d) = self.abba.propose(input, &mut self.rng, &mut out) {
                    fx.output(d);
                }
                for (to, m) in out {
                    fx.send(to, m);
                }
            }
            fn on_message(
                &mut self,
                from: PartyId,
                msg: AbbaMessage<u64>,
                fx: &mut Effects<AbbaMessage<u64>, bool>,
            ) {
                let mut out = Outbox::new(self.abba.n());
                if let Some(d) = self.abba.on_message(from, msg, &mut self.rng, &mut out) {
                    fx.output(d);
                }
                for (to, m) in out {
                    fx.send(to, m);
                }
            }
        }
        let nodes: Vec<Node> = bundles
            .iter()
            .map(|b| Node {
                abba: Abba::new_biased(
                    Tag::root("biased"),
                    Arc::clone(&public),
                    Arc::new(b.clone()),
                    Arc::clone(&check),
                ),
                rng: SeededRng::new(31 + b.party() as u64),
            })
            .collect();
        let mut sim = Simulation::builder(nodes, RandomScheduler).seed(32).build();
        // Corrupted party 3 sends round-1 pre-votes for 1 with bogus
        // evidence to everyone.
        let bad_share = bundles[3].signing_key().sign_share(
            &Tag::root("biased").message(&[b"pre", &1u64.to_be_bytes(), &[1]]),
            &mut rng,
        );
        let bogus = AbbaMessage::PreVote(PreVote {
            round: 1,
            value: true,
            just: PreVoteJust::FirstRound(Some(7u64)), // fails the check
            share: bad_share,
        });
        sim.corrupt(
            3,
            Behavior::Custom(Box::new(move |_from, _msg, _| {
                (0..3).map(|p| (p, bogus.clone())).collect()
            })),
        );
        for p in 0..3 {
            sim.input(p, false);
        }
        sim.run_until_quiet(1_000_000);
        for p in 0..3 {
            assert_eq!(sim.outputs(p), &[false], "party {p} must decide 0");
        }
    }

    #[test]
    fn biased_mode_accepts_valid_evidence() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(40);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let public = Arc::new(public);
        let check: EvidenceCheck<u64> = Arc::new(|e: &u64| *e == 42);
        let mut abba: Abba<u64> = Abba::new_biased(
            Tag::root("b2"),
            Arc::clone(&public),
            Arc::new(bundles[0].clone()),
            Arc::clone(&check),
        );
        let mut out = Outbox::new(abba.n());
        abba.propose_with_evidence(42, &mut rng, &mut out);
        // The emitted pre-vote is self-validating.
        let pv = out
            .iter()
            .find_map(|(_, m)| match m {
                AbbaMessage::PreVote(pv) => Some(pv.clone()),
                _ => None,
            })
            .unwrap();
        let verifier: Abba<u64> = Abba::new_biased(
            Tag::root("b2"),
            Arc::clone(&public),
            Arc::new(bundles[1].clone()),
            check,
        );
        assert_eq!(verifier.validate_prevote(0, &pv), Ok(true));
        // Tampered evidence fails.
        let mut bad = pv;
        bad.just = PreVoteJust::FirstRound(Some(41));
        assert_eq!(verifier.validate_prevote(0, &bad), Ok(false));
    }

    #[test]
    #[should_panic(expected = "only once")]
    fn double_propose_panics() {
        let mut ns = nodes(4, 1, 13);
        let mut out = Outbox::new(ns[0].abba.n());
        let mut rng = SeededRng::new(1);
        ns[0].abba.propose(true, &mut rng, &mut out);
        ns[0].abba.propose(false, &mut rng, &mut out);
    }

    #[test]
    #[should_panic(expected = "propose_with_evidence")]
    fn biased_one_without_evidence_panics() {
        let ts = TrustStructure::threshold(4, 1).unwrap();
        let mut rng = SeededRng::new(50);
        let (public, bundles) = Dealer::deal(&ts, &mut rng);
        let check: EvidenceCheck<u64> = Arc::new(|_| true);
        let mut abba: Abba<u64> = Abba::new_biased(
            Tag::root("b3"),
            Arc::new(public),
            Arc::new(bundles[0].clone()),
            check,
        );
        abba.propose(true, &mut rng, &mut Outbox::new(abba.n()));
    }
}
