//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive`, and `boxed`; [`arbitrary::any`] for primitives,
//! arrays, and [`sample::Index`]; [`collection::vec`]; and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros. Cases are
//! generated from a deterministic per-test seed (test path + case
//! index), so failures are replayable. There is no shrinking — a
//! failing case reports its raw inputs via panic message only.

pub mod test_runner {
    use std::fmt;

    /// Deterministic generator used to produce test cases. Seeded from
    /// the test's module path and case index so runs are replayable.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for `case` of the named test.
        pub fn for_case(test_path: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed.
        Fail(String),
        /// A `prop_assume!` precondition did not hold; the case is
        /// skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Value` from a seeded RNG.
    ///
    /// Unlike real proptest there is no shrinking; `generate` is the
    /// whole contract.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves and `f`
        /// wraps an inner strategy into a branch, nested up to `depth`
        /// levels. The `_desired_size`/`_expected_branch` hints are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                current = BoxedStrategy::union(self.clone().boxed(), deeper);
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// Type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> BoxedStrategy<T> {
        /// Picks `base` or `deeper` at even odds each generation.
        fn union(base: BoxedStrategy<T>, deeper: BoxedStrategy<T>) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.next_u64() & 1 == 0 {
                    base.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for ::std::ops::RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Uniform over start..=MAX via rejection; cheap for
                    // the small `start` values used in practice.
                    loop {
                        let v = (rng.next_u64() as $t) & <$t>::MAX;
                        if v >= self.start {
                            return v;
                        }
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical random generator.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy generating values via [`Arbitrary`].
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A position into a collection of yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Maps this index into `0..len` (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn` runs `config.cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(e) if e.is_reject() => {}
                    ::core::result::Result::Err(e) => panic!(
                        "proptest {} failed at case {}: {}",
                        stringify!($name),
                        case,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("r", 0);
        for _ in 0..100 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::TestRng::for_case("v", 0);
        for _ in 0..50 {
            let v = crate::collection::vec(any::<u8>(), 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(a in 0u32..10, b in any::<u8>()) {
            prop_assume!(a != 9);
            prop_assert!(a < 9);
            prop_assert_eq!(a + b as u32 - b as u32, a);
            prop_assert_ne!(a, 100);
        }
    }
}
