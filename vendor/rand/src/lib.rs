//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! the [`RngCore`] trait (implemented by `sintra_crypto::rng::SeededRng`)
//! and the [`Rng`] extension trait with `gen_range` over half-open
//! integer ranges.

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (never produced by this
/// workspace's generators).
pub struct Error;

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl std::error::Error for Error {}

/// Core random-number-generator interface (rand 0.8 shape).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn from_u64(v: u64) -> Self;
    fn to_u64(self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "cannot sample from empty range");
        let span = hi - lo;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return T::from_u64(lo + v % span);
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
