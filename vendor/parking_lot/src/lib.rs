//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! API-compatible for the subset this workspace uses: `Mutex::lock()`
//! and `RwLock::{read, write}()` return guards directly (no poisoning —
//! a poisoned std lock is recovered transparently, matching
//! parking_lot's panic-free semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
