//! No-op `Serialize`/`Deserialize` derives for the offline serde
//! stand-in. The marker traits in the stub `serde` crate carry blanket
//! implementations, so the derives legitimately have nothing to emit.
//! No `#[serde(...)]` attributes exist in this workspace, so silently
//! accepting the input is safe.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
