//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::unbounded` MPMC channels with clonable senders *and*
//! receivers, `send`, `recv`, `try_recv`, and `recv_timeout`.
//!
//! Implemented over `Mutex<VecDeque>` + `Condvar`; adequate for the
//! message volumes of the threaded test runtime, not tuned for
//! throughput.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver has been
        /// dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive; returns `Err` once the channel is empty and
        /// all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _res) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn try_recv_empty_then_value() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1u8).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn disconnect_observed_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(3u8).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1u8).unwrap();
            tx.send(2u8).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = [a, b];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }
    }
}
