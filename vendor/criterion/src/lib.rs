//! Offline stand-in for `criterion`.
//!
//! Provides the API subset used by this workspace's benches
//! (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`). Instead of
//! statistical sampling it runs each routine a handful of times and
//! prints the mean wall-clock duration — enough to spot gross
//! regressions offline. Swap in the real crate for publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording total wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup to fault in caches/allocations.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iterations {
            let _ = routine();
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations > 0 {
        b.elapsed / b.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<48} {per_iter:>12.2?}/iter ({} iters)",
        b.iterations
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` may execute harness-free bench binaries with
        // `--test`; keep runs short there.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iterations: if test_mode { 1 } else { 3 },
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iterations, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is
    /// fixed and deliberately small.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.criterion.iterations, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, self.criterion.iterations, &mut wrapped);
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
