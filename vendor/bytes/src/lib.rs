//! Offline stand-in for the `bytes` crate.
//!
//! The workspace declares a dependency on `bytes` for future wire-format
//! work, but no APIs are exercised yet. This vendored stub keeps the
//! dependency graph resolvable without network access; replace it with
//! the real crate when a registry is available.
