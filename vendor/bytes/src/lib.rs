//! Offline implementation of the `bytes` crate's core types.
//!
//! Originally a six-line stub that only kept the dependency graph
//! resolvable; the reactor runtime (`sintra-net::reactor`) made it
//! load-bearing, so it now provides real reference-counted buffers:
//!
//! * [`Bytes`] — an immutable, cheaply cloneable view into shared
//!   storage. `clone()` bumps a refcount, [`Bytes::slice`] narrows the
//!   view without copying, and the backing allocation is freed (or
//!   returned to its pool) when the last view drops.
//! * [`BytesMut`] — a unique, growable buffer that [`BytesMut::freeze`]s
//!   into `Bytes` without copying. This is what a socket reader fills:
//!   one `read(2)` lands in a `BytesMut`, `freeze` makes the chunk
//!   shareable, and every frame inside it becomes a zero-copy slice.
//! * [`BufPool`] — a bounded recycle pool. Buffers drawn with
//!   [`BufPool::get`] find their way back automatically when the last
//!   reference drops, so a steady-state reader allocates nothing.
//!
//! The subset implemented here is what the workspace uses; semantics
//! match the real crate where they overlap (value equality, cheap
//! clones, slice panics on out-of-range). No `unsafe` is used — storage
//! is a plain `Vec<u8>` behind an `Arc`, and slicing is offset
//! arithmetic.

use std::ops::{Deref, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

// ---------------------------------------------------------------------
// Shared storage
// ---------------------------------------------------------------------

/// The allocation one or more [`Bytes`] views share. When the last
/// `Arc<Storage>` drops, the buffer either frees normally or returns to
/// the pool it was drawn from.
#[derive(Debug)]
struct Storage {
    buf: Vec<u8>,
    pool: Option<Weak<PoolInner>>,
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.as_ref().and_then(Weak::upgrade) {
            pool.put(std::mem::take(&mut self.buf));
        }
    }
}

// ---------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------

/// An immutable, reference-counted view into shared byte storage.
///
/// Cloning is O(1) (an `Arc` clone); [`Bytes::slice`] produces a
/// narrower view of the same storage without copying. Equality and
/// ordering compare the viewed bytes, not the storage identity.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Storage>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty view (no allocation).
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copies `data` into fresh storage.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of this view. O(1); shares storage. Accepts any range
    /// kind (`a..b`, `a..`, `..b`, `..`).
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside `0..=len` or is inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range for Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// How many `Bytes` views currently share this storage — test and
    /// gauge support, not part of the real crate's API.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Bytes {
        let len = buf.len();
        Bytes {
            data: Arc::new(Storage { buf, pool: None }),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data.buf[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

// ---------------------------------------------------------------------
// BytesMut
// ---------------------------------------------------------------------

/// A unique, growable byte buffer that freezes into [`Bytes`] without
/// copying.
///
/// Unlike `Bytes`, a `BytesMut` has exactly one owner, so mutation
/// needs no synchronization. Dropping an unfrozen `BytesMut` returns a
/// pooled buffer to its pool.
#[derive(Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    pool: Option<Weak<PoolInner>>,
}

impl BytesMut {
    /// An empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
            pool: None,
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Grows (zero-filling) or shrinks to exactly `len` bytes.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.buf.resize(len, fill);
    }

    /// Drops all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shortens to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Converts into an immutable, shareable [`Bytes`] — O(1), no copy.
    /// The storage keeps its pool affiliation: when the last `Bytes`
    /// view drops, the buffer returns to the pool.
    pub fn freeze(self) -> Bytes {
        // Move the fields out without running BytesMut::drop (which
        // would return the buffer to the pool while views still exist).
        let mut this = std::mem::ManuallyDrop::new(self);
        let buf = std::mem::take(&mut this.buf);
        let pool = this.pool.take();
        let len = buf.len();
        Bytes {
            data: Arc::new(Storage { buf, pool }),
            off: 0,
            len,
        }
    }
}

impl Drop for BytesMut {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.as_ref().and_then(Weak::upgrade) {
            pool.put(std::mem::take(&mut self.buf));
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

// ---------------------------------------------------------------------
// BufPool
// ---------------------------------------------------------------------

/// Book-keeping shared by a pool and the buffers drawn from it.
#[derive(Debug)]
struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    buf_capacity: usize,
    max_pooled: usize,
    recycled: AtomicU64,
    allocated: AtomicU64,
    outstanding: AtomicU64,
}

impl PoolInner {
    /// Accepts a buffer back (from a dropped `Storage` or `BytesMut`),
    /// discarding it if the shelf is full or the buffer was never
    /// actually allocated.
    fn put(&self, mut buf: Vec<u8>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < self.max_pooled {
            buf.clear();
            free.push(buf);
        }
    }
}

/// A bounded pool of reusable byte buffers.
///
/// [`BufPool::get`] hands out a [`BytesMut`] with `buf_capacity` bytes
/// of capacity, recycling a previously returned buffer when one is on
/// the shelf. Return is automatic: when the buffer (or every [`Bytes`]
/// view frozen from it) drops, the allocation comes back — up to
/// `max_pooled` buffers are kept, the rest free normally, so the pool's
/// memory is bounded by `max_pooled × buf_capacity`.
#[derive(Clone, Debug)]
pub struct BufPool {
    inner: Arc<PoolInner>,
}

impl BufPool {
    /// A pool handing out buffers of `buf_capacity` bytes, shelving at
    /// most `max_pooled` returned buffers.
    pub fn new(buf_capacity: usize, max_pooled: usize) -> BufPool {
        BufPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                buf_capacity: buf_capacity.max(1),
                max_pooled,
                recycled: AtomicU64::new(0),
                allocated: AtomicU64::new(0),
                outstanding: AtomicU64::new(0),
            }),
        }
    }

    /// Draws an empty buffer: recycled if available, freshly allocated
    /// otherwise.
    pub fn get(&self) -> BytesMut {
        let recycled = {
            let mut free = self.inner.free.lock().unwrap_or_else(|e| e.into_inner());
            free.pop()
        };
        let buf = match recycled {
            Some(buf) => {
                self.inner.recycled.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.allocated.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.inner.buf_capacity)
            }
        };
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        BytesMut {
            buf,
            pool: Some(Arc::downgrade(&self.inner)),
        }
    }

    /// Buffers currently on the shelf, ready for reuse.
    pub fn pooled(&self) -> usize {
        self.inner
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Buffers drawn and not yet returned (live `BytesMut`s plus
    /// storage still referenced by `Bytes` views).
    pub fn outstanding(&self) -> u64 {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// Total fresh allocations made (a flat value under steady load is
    /// the pool doing its job).
    pub fn allocations(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Total buffers served from the shelf instead of the allocator.
    pub fn recycles(&self) -> u64 {
        self.inner.recycled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_storage_without_copying() {
        let b = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let head = b.slice(..8);
        let mid = b.slice(8..24);
        let tail = b.slice(24..);
        assert_eq!(&head[..], &(0u8..8).collect::<Vec<u8>>()[..]);
        assert_eq!(&mid[..], &(8u8..24).collect::<Vec<u8>>()[..]);
        assert_eq!(&tail[..], &(24u8..32).collect::<Vec<u8>>()[..]);
        // Four views (b, head, mid, tail) of one allocation.
        assert_eq!(b.ref_count(), 4);
        let sub = mid.slice(4..8);
        assert_eq!(&sub[..], &[12, 13, 14, 15]);
        assert_eq!(b.ref_count(), 5, "slicing a slice still shares");
    }

    #[test]
    fn clone_bumps_and_drop_releases_refcounts() {
        let b = Bytes::copy_from_slice(b"shared");
        assert_eq!(b.ref_count(), 1);
        let c = b.clone();
        assert_eq!(b.ref_count(), 2);
        assert_eq!(b, c, "views compare by content");
        drop(c);
        assert_eq!(b.ref_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_past_the_end_panics() {
        let b = Bytes::copy_from_slice(b"abc");
        let _ = b.slice(1..5);
    }

    #[test]
    fn bytes_mut_freeze_is_zero_copy_and_equal() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"hello ");
        m.extend_from_slice(b"world");
        assert_eq!(m.len(), 11);
        let b = m.freeze();
        assert_eq!(b, b"hello world"[..]);
        assert_eq!(b.slice(6..), b"world"[..]);
    }

    #[test]
    fn bytes_mut_resize_truncate_roundtrip() {
        let mut m = BytesMut::with_capacity(4);
        m.resize(8, 0xAB);
        assert_eq!(&m[..], &[0xAB; 8]);
        m[0] = 1;
        m.truncate(2);
        assert_eq!(&m[..], &[1, 0xAB]);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn pool_recycles_buffers_after_last_view_drops() {
        let pool = BufPool::new(1024, 4);
        assert_eq!(pool.pooled(), 0);
        let mut m = pool.get();
        assert_eq!(pool.allocations(), 1);
        assert_eq!(pool.outstanding(), 1);
        m.extend_from_slice(b"frame-one");
        let b = m.freeze();
        let view = b.slice(0..5);
        drop(b);
        // A live slice still pins the storage out of the pool.
        assert_eq!(pool.pooled(), 0);
        assert_eq!(pool.outstanding(), 1);
        drop(view);
        assert_eq!(pool.pooled(), 1, "last view returned the buffer");
        assert_eq!(pool.outstanding(), 0);
        // The next draw reuses it — no new allocation.
        let m2 = pool.get();
        assert_eq!(pool.allocations(), 1);
        assert_eq!(pool.recycles(), 1);
        assert!(m2.is_empty(), "recycled buffer comes back cleared");
        assert!(m2.capacity() >= 1024);
    }

    #[test]
    fn pool_shelf_is_bounded() {
        let pool = BufPool::new(64, 2);
        let bufs: Vec<BytesMut> = (0..5).map(|_| pool.get()).collect();
        assert_eq!(pool.allocations(), 5);
        drop(bufs);
        assert_eq!(pool.pooled(), 2, "only max_pooled buffers shelved");
    }

    #[test]
    fn dropped_unfrozen_bytes_mut_returns_to_pool() {
        let pool = BufPool::new(128, 4);
        let m = pool.get();
        drop(m);
        assert_eq!(pool.pooled(), 1);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn pool_outlives_buffers_gracefully() {
        // Buffers returned after the pool itself is gone must not
        // panic — the Weak upgrade fails and the memory frees normally.
        let pool = BufPool::new(64, 4);
        let m = pool.get();
        let b = m.freeze();
        drop(pool);
        drop(b); // no pool to return to; plain free
    }

    #[test]
    fn non_pooled_bytes_never_touch_a_pool() {
        let pool = BufPool::new(64, 4);
        let b = Bytes::copy_from_slice(b"independent");
        drop(b);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(pool.outstanding(), 0);
    }
}
