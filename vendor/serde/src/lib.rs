//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on message types in
//! anticipation of a real wire format but never *calls* any
//! serialization API, so marker traits with blanket implementations
//! (plus no-op derives) satisfy every use site. Swap in the real crate
//! when a registry is reachable; the derive attributes in the codebase
//! are already the real crate's syntax.

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::DeserializeOwned;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
